#!/usr/bin/env python3
"""Markdown link checker for the docs CI job (stdlib only, offline).

Checks every ``[text](target)`` link in the given Markdown files:

* relative file targets must exist on disk (resolved against the
  containing file's directory);
* ``#fragment`` anchors — standalone or attached to a Markdown target —
  must match a heading in the target file, using GitHub's slug rules
  (lowercase, punctuation stripped, spaces to hyphens);
* absolute ``http(s)://`` / ``mailto:`` targets are skipped (the job
  must not depend on the network).

Fenced code blocks are ignored, so shell snippets and JSON examples
cannot produce false positives.

Usage::

    python tools/check_markdown_links.py README.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    content = FENCE.sub("", path.read_text(encoding="utf-8"))
    return {slugify(match.group(1)) for match in HEADING.finditer(content)}


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    content = FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in LINK.finditer(content):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        raw, _, fragment = target.partition("#")
        if raw:
            resolved = (path.parent / raw).resolve()
            if not resolved.exists():
                errors.append(f"{path}: broken link -> {target} "
                              f"({resolved} does not exist)")
                continue
        else:
            resolved = path.resolve()
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                errors.append(f"{path}: broken anchor -> {target} "
                              f"(no heading slug {fragment!r} in {resolved.name})")
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_markdown_links.py FILE.md [FILE.md ...]",
              file=sys.stderr)
        return 2
    errors: list[str] = []
    for name in argv:
        path = Path(name)
        if not path.is_file():
            errors.append(f"{name}: file not found")
            continue
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    checked = len(argv)
    if errors:
        print(f"{len(errors)} broken link(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"all links ok across {checked} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
