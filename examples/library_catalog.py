"""View selection on a Barton-like library catalog at realistic scale.

Generates the synthetic library catalog (same schema shape as the
paper's Barton dataset: 39 classes, 61 properties, 106 RDFS statements),
derives a satisfiable workload, compares the search strategies, and
demonstrates the speedup of answering from views instead of the triple
table.

Run with: python examples/library_catalog.py
"""

import time

from repro.datagen import BartonConfig, generate_barton
from repro.query.evaluation import evaluate, evaluate_nested_loop
from repro.selection.costs import CostModel, calibrate_maintenance_weight
from repro.selection.materialize import answer_query, extent_size, materialize_views
from repro.selection.search import (
    SearchBudget,
    descent_search,
    dfs_search,
    greedy_stratified_search,
)
from repro.selection.state import ViewNamer, initial_state
from repro.selection.statistics import StoreStatistics
from repro.selection.transitions import TransitionEnumerator
from repro.workload import QueryShape, SatisfiableWorkloadGenerator, WorkloadSpec


def main() -> None:
    print("generating the library catalog ...")
    store, schema = generate_barton(
        BartonConfig(num_triples=25_000, num_entities=4_000, seed=11)
    )
    print(f"  {len(store)} triples, schema: {len(schema)} RDFS statements, "
          f"{len(schema.classes)} classes, {len(schema.properties)} properties\n")

    generator = SatisfiableWorkloadGenerator(store, seed=17)
    workload = generator.generate(
        WorkloadSpec(8, 8, QueryShape.MIXED, "high", constant_probability=0.4)
    )
    print("workload (satisfiable on the catalog):")
    for query in workload:
        print(f"  {query.name}: {len(query)} atoms, "
              f"{len(evaluate(query, store))} answers")
    print()

    statistics = StoreStatistics(store)
    weights = calibrate_maintenance_weight(initial_state(workload), statistics, ratio=2.0)

    strategies = {
        "DFS-AVF-STV": dfs_search,
        "GSTR-AVF-STV": greedy_stratified_search,
        "descent (scaling mode)": descent_search,
    }
    best = None
    for name, search in strategies.items():
        namer = ViewNamer()
        enumerator = TransitionEnumerator(namer)
        state = initial_state(workload, namer)
        model = CostModel(statistics, weights)
        result = search(state, model, enumerator, SearchBudget(time_limit=4.0))
        print(f"{name:<24} rcr={result.rcr:.3f} "
              f"views={len(result.best_state.views)} "
              f"avg atoms/view={result.average_view_atoms():.1f} "
              f"states created={result.stats.created}")
        if best is None or result.best_cost < best.best_cost:
            best = result
    print()

    print("materializing the best state's views ...")
    extents = materialize_views(best.best_state, store)
    print(f"  total view storage: {extent_size(extents)} tuples "
          f"({extent_size(extents) / len(store):.1%} of the database)\n")

    print("query evaluation: triple-table scan vs recommended views")
    for query in workload[:4]:
        start = time.perf_counter()
        scan_answers = evaluate_nested_loop(query, store)
        scan_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        view_answers = answer_query(best.best_state, query.name, extents)
        view_ms = (time.perf_counter() - start) * 1000
        assert view_answers == scan_answers
        speedup = scan_ms / view_ms if view_ms > 0 else float("inf")
        print(f"  {query.name}: scan {scan_ms:8.1f} ms   views {view_ms:6.2f} ms "
              f"  ({speedup:,.0f}x)")


if __name__ == "__main__":
    main()
