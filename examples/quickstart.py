"""Quickstart: select materialized views for a tiny RDF workload.

Builds a small painter dataset, asks the selector for a view set that
answers two queries, materializes the views, and answers the queries
without touching the store again — the paper's three-tier deployment
story in miniature.

Run with: python examples/quickstart.py
"""

from repro import (
    SearchBudget,
    Triple,
    TripleStore,
    URI,
    ViewSelector,
    parse_query,
)

NS = "http://museum.example/"


def uri(name: str) -> URI:
    return URI(NS + name)


def build_store() -> TripleStore:
    store = TripleStore()
    facts = [
        ("vanGogh", "hasPainted", "starryNight"),
        ("vanGogh", "hasPainted", "sunflowers"),
        ("vermeer", "hasPainted", "girlWithPearl"),
        ("vanGogh", "bornIn", "zundert"),
        ("vermeer", "bornIn", "delft"),
        ("starryNight", "exhibitedIn", "moma"),
        ("sunflowers", "exhibitedIn", "nationalGallery"),
        ("girlWithPearl", "exhibitedIn", "mauritshuis"),
    ]
    for subject, prop, obj in facts:
        store.add(Triple(uri(subject), uri(prop), uri(obj)))
    return store


def main() -> None:
    store = build_store()
    workload = [
        parse_query(
            "q1(Painter, Museum) :- t(Painter, hasPainted, W), "
            "t(W, exhibitedIn, Museum)",
            namespace=NS,
        ),
        parse_query(
            "q2(Painter) :- t(Painter, hasPainted, W), "
            "t(Painter, bornIn, zundert)",
            namespace=NS,
        ),
    ]

    selector = ViewSelector(store, strategy="dfs", budget=SearchBudget(time_limit=5.0))
    recommendation = selector.recommend(workload)

    print("Recommended views:")
    for view in recommendation.views:
        print(f"  {view}")
    print()
    print(f"initial cost = {recommendation.result.initial_cost:.1f}")
    print(f"best cost    = {recommendation.result.best_cost:.1f}")
    print(f"cost reduction (rcr) = {recommendation.result.rcr:.2%}")
    print()

    # Materialize once; afterwards the store is no longer needed.
    extents = recommendation.materialize()
    for query in workload:
        answers = recommendation.answer(query.name, extents)
        print(f"{query.name} answers, straight from the views:")
        for row in sorted(answers, key=str):
            print("  " + ", ".join(str(term) for term in row))


if __name__ == "__main__":
    main()
