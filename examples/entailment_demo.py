"""RDF entailment deep-dive: saturation vs reformulation.

Walks through the machinery of Section 4 on the synthetic library
catalog: what saturation adds, what Algorithm 1 produces for queries of
increasing generality, the Theorem 4.2 equivalence, and why
post-reformulation keeps the view-selection search space small
(Table 3 / Figure 7 in miniature).

Run with: python examples/entailment_demo.py
"""

from repro.datagen import BartonConfig, generate_barton
from repro.datagen.barton import BARTON_NS
from repro.query.evaluation import evaluate, evaluate_union
from repro.query.parser import parse_query
from repro.rdf.entailment import saturate
from repro.reformulation.reformulate import reformulate, reformulation_bound
from repro.reformulation.workflows import reformulate_workload
from repro.selection.state import initial_state
from repro.reformulation.workflows import pre_reformulation_initial_state
from repro.workload import QueryShape, SatisfiableWorkloadGenerator, WorkloadSpec


def main() -> None:
    store, schema = generate_barton(
        BartonConfig(num_triples=15_000, num_entities=2_500, seed=23)
    )
    saturated = saturate(store, schema)
    print(f"explicit triples : {len(store)}")
    print(f"saturated triples: {len(saturated)} "
          f"(+{len(saturated) - len(store)} implicit)\n")

    queries = [
        parse_query(
            f"q1(X) :- t(X, rdf:type, <{BARTON_NS}Text>)"
        ).with_name("typed"),
        parse_query(
            "q2(X, C) :- t(X, rdf:type, C)", namespace=BARTON_NS
        ).with_name("class-variable"),
        parse_query(
            "q3(X, P, Y) :- t(X, P, Y)", namespace=BARTON_NS
        ).with_name("property-variable"),
    ]
    print("reformulation growth (Algorithm 1 / Theorem 4.1):")
    for query in queries:
        union = reformulate(query, schema)
        bound = reformulation_bound(schema, query)
        print(f"  {query.name:<18} |ucq|={len(union):>5}   bound={bound:.1e}")
    print()

    print("Theorem 4.2 check — evaluate(q, saturate(D,S)) == evaluate(ucq, D):")
    for query in queries[:2]:
        on_saturated = evaluate(query, saturated)
        on_plain = evaluate_union(reformulate(query, schema), store)
        verdict = "EQUAL" if on_plain == on_saturated else "DIFFERENT"
        print(f"  {query.name:<18} {len(on_saturated):>6} answers  [{verdict}]")
    print()

    # The Table 3 effect: pre-reformulation blows up the initial state.
    generator = SatisfiableWorkloadGenerator(store, seed=29)
    workload = generator.generate(
        WorkloadSpec(5, 5, QueryShape.MIXED, "high", constant_probability=0.4)
    )
    unions = reformulate_workload(workload, schema)
    plain_state = initial_state(workload)
    pre_state = pre_reformulation_initial_state(workload, schema)
    atoms = sum(len(q) for q in workload)
    reformulated_atoms = sum(u.total_atoms() for u in unions)
    print("pre- vs post-reformulation search inputs (Table 3 in miniature):")
    print(f"  original workload : {len(workload):>4} queries, {atoms:>5} atoms "
          f"-> initial state with {len(plain_state.views)} views")
    print(f"  reformulated      : {sum(len(u) for u in unions):>4} queries, "
          f"{reformulated_atoms:>5} atoms -> initial state with "
          f"{len(pre_state.views)} views")
    print()
    print("post-reformulation searches the small initial state and only")
    print("reformulates the handful of recommended views afterwards.")


if __name__ == "__main__":
    main()
