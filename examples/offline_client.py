"""The three-tier deployment story, with persistence and live updates.

Server side: select views for the workload, materialize them, and ship a
single JSON document to the client. Client side: restore the document and
answer every query with *no* database connection. Back on the server,
incremental view maintenance keeps the extents current as triples arrive
and retire, ready for the next sync.

Run with: python examples/offline_client.py
"""

import tempfile
from pathlib import Path

from repro import (
    SearchBudget,
    Triple,
    TripleStore,
    URI,
    ViewSelector,
    parse_query,
)
from repro.selection import MaterializedViewSet, persist
from repro.selection.materialize import answer_query

NS = "http://gallery.example/"


def uri(name: str) -> URI:
    return URI(NS + name)


def server_database() -> TripleStore:
    store = TripleStore()
    facts = [
        ("rembrandt", "hasPainted", "nightWatch"),
        ("rembrandt", "hasPainted", "stormGalilee"),
        ("vermeer", "hasPainted", "milkmaid"),
        ("nightWatch", "exhibitedIn", "rijksmuseum"),
        ("milkmaid", "exhibitedIn", "rijksmuseum"),
        ("stormGalilee", "exhibitedIn", "gardnerMuseum"),
        ("rembrandt", "livedIn", "amsterdam"),
        ("vermeer", "livedIn", "delft"),
    ]
    for s, p, o in facts:
        store.add(Triple(uri(s), uri(p), uri(o)))
    return store


def main() -> None:
    store = server_database()
    workload = [
        parse_query(
            "exhibits(P, M) :- t(P, hasPainted, W), t(W, exhibitedIn, M)",
            namespace=NS,
        ),
        parse_query(
            "locals(P, C) :- t(P, hasPainted, W), t(P, livedIn, C)",
            namespace=NS,
        ),
    ]

    # --- server: select, materialize, export ---------------------------
    selector = ViewSelector(store, strategy="dfs", budget=SearchBudget(time_limit=3.0))
    recommendation = selector.recommend(workload)
    extents = recommendation.materialize()
    export = Path(tempfile.mkstemp(suffix=".json")[1])
    persist.save(export, recommendation.state, extents, indent=2)
    print(f"server: exported {len(recommendation.views)} views "
          f"({sum(len(rows) for rows in extents.values())} tuples) "
          f"to {export.name}")

    # --- client: restore and answer offline ----------------------------
    client_state, client_extents = persist.load(export)
    print("client (no database connection):")
    for query in workload:
        answers = answer_query(client_state, query.name, client_extents)
        print(f"  {query.name}:")
        for row in sorted(answers, key=str):
            print("    " + ", ".join(t.value.removeprefix(NS) for t in row))

    # --- server: the database moves on; views follow incrementally -----
    maintained = MaterializedViewSet(recommendation.state, store)
    print("\nserver: new acquisition arrives ...")
    maintained.insert(Triple(uri("vermeer"), uri("hasPainted"), uri("pearlEarring")))
    maintained.insert(Triple(uri("pearlEarring"), uri("exhibitedIn"), uri("mauritshuis")))
    print("server: a loan ends ...")
    maintained.remove(Triple(uri("stormGalilee"), uri("exhibitedIn"), uri("gardnerMuseum")))

    print("server: refreshed answers after incremental maintenance:")
    for row in sorted(maintained.answer("exhibits"), key=str):
        print("    " + ", ".join(t.value.removeprefix(NS) for t in row))
    export.unlink()


if __name__ == "__main__":
    main()
