"""Build once, save, reopen in a second process — store persistence.

Server side: load the gallery database, run view selection for the
workload, and persist the whole store as a single snapshot file
(``TripleStore.save``). Client side — a genuinely separate Python
process — reopens the snapshot with the disk-backed SQLite backend
(``TripleStore.open``: the file is served in place, nothing is loaded
into Python memory) and answers every query with no server connection.
Back on the server, incremental view maintenance keeps the extents
current as triples arrive and retire, ready for the next snapshot.

Run with: python examples/offline_client.py
"""

import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro import (
    SearchBudget,
    Triple,
    TripleStore,
    URI,
    ViewSelector,
    evaluate,
    parse_query,
)
from repro.selection import MaterializedViewSet

NS = "http://gallery.example/"


def uri(name: str) -> URI:
    return URI(NS + name)


def workload():
    return [
        parse_query(
            "exhibits(P, M) :- t(P, hasPainted, W), t(W, exhibitedIn, M)",
            namespace=NS,
        ),
        parse_query(
            "locals(P, C) :- t(P, hasPainted, W), t(P, livedIn, C)",
            namespace=NS,
        ),
    ]


def server_database() -> TripleStore:
    store = TripleStore()
    facts = [
        ("rembrandt", "hasPainted", "nightWatch"),
        ("rembrandt", "hasPainted", "stormGalilee"),
        ("vermeer", "hasPainted", "milkmaid"),
        ("nightWatch", "exhibitedIn", "rijksmuseum"),
        ("milkmaid", "exhibitedIn", "rijksmuseum"),
        ("stormGalilee", "exhibitedIn", "gardnerMuseum"),
        ("rembrandt", "livedIn", "amsterdam"),
        ("vermeer", "livedIn", "delft"),
    ]
    for s, p, o in facts:
        store.add(Triple(uri(s), uri(p), uri(o)))
    return store


def client(snapshot: str) -> None:
    """The second process: reopen the snapshot, answer, no server."""
    store = TripleStore.open(snapshot, backend="sqlite")
    print(f"client (pid {os.getpid()}, no server connection): "
          f"attached to {len(store)} triples on disk")
    for query in workload():
        answers = evaluate(query, store, engine="auto")
        print(f"  {query.name}:")
        for row in sorted(answers, key=str):
            print("    " + ", ".join(t.value.removeprefix(NS) for t in row))
    store.close()


def main() -> None:
    # --- server: build once, select views, save ------------------------
    store = server_database()
    selector = ViewSelector(store, strategy="dfs", budget=SearchBudget(time_limit=3.0))
    recommendation = selector.recommend(workload())
    snapshot = Path(tempfile.mkstemp(suffix=".db")[1])
    store.save(snapshot)
    size = snapshot.stat().st_size
    print(f"server: recommended {len(recommendation.views)} views; "
          f"saved {len(store)} triples to {snapshot.name} ({size} bytes)")

    # --- client: a *second process* reopens the snapshot ---------------
    subprocess.run(
        [sys.executable, __file__, "--client", str(snapshot)], check=True
    )

    # --- server: the database moves on; views follow incrementally -----
    maintained = MaterializedViewSet(recommendation.state, store)
    print("\nserver: new acquisition arrives ...")
    maintained.insert(Triple(uri("vermeer"), uri("hasPainted"), uri("pearlEarring")))
    maintained.insert(Triple(uri("pearlEarring"), uri("exhibitedIn"), uri("mauritshuis")))
    print("server: a loan ends ...")
    maintained.remove(Triple(uri("stormGalilee"), uri("exhibitedIn"), uri("gardnerMuseum")))

    print("server: refreshed answers after incremental maintenance:")
    for row in sorted(maintained.answer("exhibits"), key=str):
        print("    " + ", ".join(t.value.removeprefix(NS) for t in row))

    # The moved-on database snapshots again for the next sync.
    store.save(snapshot)
    reopened = TripleStore.open(snapshot, backend="memory")
    print(f"server: re-snapshot holds {len(reopened)} triples "
          f"(was {len(server_database())})")
    snapshot.unlink()


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--client":
        client(sys.argv[2])
    else:
        main()
