"""The paper's running example, end to end, with RDF entailment.

A museum portal stores explicit facts (who painted what, where works
hang) plus an RDF Schema (paintings are pictures, "exposed in" is a kind
of "located in", painting something makes you a painter). Queries over
the general vocabulary (pictures, locations) must see the *implicit*
triples. The example contrasts the three Section-4.3 routes:

* saturation — materialize all implicit triples, search on top;
* pre-reformulation — reformulate the workload first (search space grows);
* post-reformulation — search the original workload with entailment-aware
  statistics and reformulate only the few recommended views.

Run with: python examples/museum_portal.py
"""

from repro import (
    RDFSchema,
    SearchBudget,
    Triple,
    TripleStore,
    URI,
    ViewSelector,
    evaluate,
    parse_query,
    reformulate,
    saturate,
)

NS = "http://example.org/"


def uri(name: str) -> URI:
    return URI(NS + name)


def build_store() -> TripleStore:
    store = TripleStore()
    rdf_type = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
    facts = [
        ("vanGogh", "hasPainted", "starryNight"),
        ("vanGogh", "isParentOf", "vincentW"),
        ("vincentW", "hasPainted", "orchardSketch"),
        ("bruegelSr", "hasPainted", "babel"),
        ("bruegelSr", "isParentOf", "bruegelJr"),
        ("bruegelJr", "hasPainted", "birdTrap"),
        ("starryNight", rdf_type, "painting"),
        ("babel", rdf_type, "painting"),
        ("birdTrap", rdf_type, "painting"),
        ("orchardSketch", rdf_type, "sketch"),
        ("starryNight", "isLocatedIn", "moma"),
        ("babel", "isLocatedIn", "vienna"),
        ("birdTrap", "isExposedIn", "brussels"),
        ("orchardSketch", "isExposedIn", "amsterdam"),
    ]
    for subject, prop, obj in facts:
        p = URI(prop) if prop.startswith("http") else uri(prop)
        store.add(Triple(uri(subject), p, uri(obj)))
    return store


def build_schema() -> RDFSchema:
    schema = RDFSchema()
    schema.add_subclass(uri("painting"), uri("picture"))
    schema.add_subclass(uri("sketch"), uri("picture"))
    schema.add_subproperty(uri("isExposedIn"), uri("isLocatedIn"))
    schema.add_domain(uri("hasPainted"), uri("painter"))
    schema.add_range(uri("hasPainted"), uri("picture"))
    return schema


def main() -> None:
    store = build_store()
    schema = build_schema()
    workload = [
        # Section 3.3's example: pictures and where they are located.
        parse_query("q1(X, Where) :- t(X, rdf:type, picture), t(X, isLocatedIn, Where)"),
        # The running example q1 of Section 2.
        parse_query(
            "q2(X, Z) :- t(X, hasPainted, starryNight), t(X, isParentOf, Y), "
            "t(Y, hasPainted, Z)"
        ),
        # Painters are implicit: nobody is typed 'painter' explicitly.
        parse_query("q3(P) :- t(P, rdf:type, painter)"),
    ]

    print("explicit triples:", len(store))
    saturated = saturate(store, schema)
    print("after saturation:", len(saturated), "(implicit triples included)\n")

    print("reformulation of q1 (Algorithm 1):")
    for disjunct in reformulate(workload[0], schema):
        print(f"  {disjunct}")
    print()

    for mode in ("saturation", "pre_reformulation", "post_reformulation"):
        selector = ViewSelector(
            store,
            schema=schema,
            entailment=mode,
            strategy="dfs",
            budget=SearchBudget(time_limit=5.0),
        )
        recommendation = selector.recommend(workload)
        extents = recommendation.materialize()
        print(f"--- {mode} ---")
        print(f"  views: {len(recommendation.views)}, "
              f"initial cost {recommendation.result.initial_cost:.0f}, "
              f"best cost {recommendation.result.best_cost:.0f}")
        for query in workload:
            answers = recommendation.answer(query.name, extents)
            reference = evaluate(query, saturated)
            status = "OK" if answers == reference else "MISMATCH"
            print(f"  {query.name}: {len(answers)} answers [{status}]")
        print()

    print("note: q3 finds painters although no rdf:type painter triple")
    print("exists — the domain rule of the schema entails them.")


if __name__ == "__main__":
    main()
