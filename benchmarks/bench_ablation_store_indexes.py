"""Ablation — what the exhaustive triple indexing buys.

The paper's layout indexes the encoded triple table "on s, p, o, and all
two- and three-column combinations" and the statistics collection relies
on exact pattern counts. This ablation compares the index-backed
evaluator against the scan-based nested-loop evaluator on the workload
queries, and pattern counting against linear counting — justifying the
storage substrate that everything above it assumes.
"""

from __future__ import annotations

import pytest

from benchmarks.support import barton, report, satisfiable_workload
from repro.query.evaluation import evaluate, evaluate_nested_loop
from repro.workload import QueryShape

EXPERIMENT = "Ablation: store indexing (index-backed vs scan-based)"


@pytest.fixture(scope="module")
def setup():
    store, _ = barton()
    queries = satisfiable_workload(3, 4, QueryShape.CHAIN, "low", seed=14)
    return store, queries


def test_ablation_indexed_evaluation(benchmark, setup):
    store, queries = setup

    def run():
        return [evaluate(query, store) for query in queries]

    answers = benchmark(run)
    assert all(answers)
    report(EXPERIMENT, f"index-backed evaluation of {len(queries)} queries: see timings")


def test_ablation_scan_evaluation(benchmark, setup):
    store, queries = setup

    def run():
        return [evaluate_nested_loop(query, store) for query in queries]

    answers = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(answers)
    report(EXPERIMENT, f"scan-based evaluation of {len(queries)} queries: see timings")


def test_ablation_pattern_count_index_vs_scan(benchmark, setup):
    store, queries = setup
    properties = sorted(
        {atom.p for query in queries for atom in query.atoms if hasattr(atom.p, "n3")},
        key=lambda term: term.n3(),
    )

    def indexed_counts():
        return [store.count(p=prop) for prop in properties]

    counts = benchmark(indexed_counts)
    scanned = [sum(1 for t in store if t.p == prop) for prop in properties]
    assert counts == scanned
    report(
        EXPERIMENT,
        f"pattern counts over {len(properties)} properties agree between "
        "index and scan; see timings for the gap",
    )
