"""Prints each experiment's paper-shaped rows in the terminal summary."""

from benchmarks.support import RESULTS


def pytest_terminal_summary(terminalreporter):
    if not RESULTS:
        return
    terminalreporter.write_sep("=", "paper reproduction results")
    for experiment in sorted(RESULTS):
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {experiment} ---")
        for line in RESULTS[experiment]:
            terminalreporter.write_line(line)
