"""Table 3 — workloads used for the reformulation experiments.

Paper setup: two satisfiable workloads on Barton, Q1 (5 queries) and Q2
(10 queries, a superset of Q1), characterized by the number of queries
|Q|, atoms #a(Q) and constants #c(Q), before and after reformulation
(Qr). The paper reports Q1: 5/33/35 → 20/143/157 and Q2: 10/76/77 →
231/1436/1651.

Expected shape: reformulation multiplies queries, atoms and constants,
and the blow-up grows sharply with the workload (|Qr|/|Q| much larger
for Q2 than for Q1).
"""

from __future__ import annotations

import pytest

from benchmarks.support import barton, report, satisfiable_workload
from repro.reformulation.workflows import reformulate_workload
from repro.workload import QueryShape

EXPERIMENT = "Table 3: workloads used for reformulation experiments"


def reformulation_workloads():
    """Q1 (5 queries) and Q2 (10 queries, superset of Q1), as in §6.5."""
    q2 = satisfiable_workload(10, 7, QueryShape.MIXED, "high", seed=65)
    q1 = q2[:5]
    return {"Q1": q1, "Q2": q2}


@pytest.mark.parametrize("name", ["Q1", "Q2"])
def test_table3_workload_statistics(benchmark, name):
    _, schema = barton()
    queries = reformulation_workloads()[name]

    def run():
        return reformulate_workload(queries, schema)

    unions = benchmark.pedantic(run, rounds=1, iterations=1)
    atoms = sum(len(q) for q in queries)
    constants = sum(len(q.constant_occurrences()) for q in queries)
    reformulated_count = sum(len(u) for u in unions)
    reformulated_atoms = sum(u.total_atoms() for u in unions)
    reformulated_constants = sum(u.total_constants() for u in unions)
    report(
        EXPERIMENT,
        f"{name}: |Q|={len(queries):>3} #a(Q)={atoms:>4} #c(Q)={constants:>4}"
        f"   |Qr|={reformulated_count:>4} #a(Qr)={reformulated_atoms:>5} "
        f"#c(Qr)={reformulated_constants:>5}",
    )
