"""Figure 8 — execution times for queries with RDFS entailment.

Paper setup: the five queries of workload Q1, answered several ways —

* **saturated triple table**: scan-based evaluation on the saturated
  store (the role of the plain PostgreSQL triple-table plan);
* **restricted triple table**: the same, on a table restricted to the
  triples relevant to the workload;
* **pre-reform. views**: rewritings over views selected from the
  pre-reformulated workload;
* **post-reform. views**: rewritings over reformulated views;
* **seed-greedy**: the seed's greedy index-nested-loop evaluator
  (re-counts every remaining atom per recursion step) — the baseline
  the engine must beat;
* **engine-***: the unified physical-operator engine on the saturated
  store, one series per join strategy (the RDF-3X role), executing
  batch-at-a-time (the default since the batched-engine PR); with
  ``--backend sqlite`` the ``engine-auto`` series takes the whole-plan
  SQL pushdown route (one statement per query inside the backend) while
  the fixed-engine series stay interpreted;
* **engine-auto-tuple**: the same auto-selected plans executed through
  the historical tuple-at-a-time path (``batch_size=None``) — the
  baseline the batched engine is measured against;
* **engine-auto-row**: the same auto-selected plans executed batched
  but through the row-batch layout (``layout="row"``) — the baseline
  the columnar layout (the default) is measured against;
* **union-shared / union-independent**: each query's reformulation
  union evaluated on the *plain* (non-saturated) store, through the
  multi-query optimizer (shared subplans execute once; on ``--backend
  sqlite`` the whole union runs as one ``SELECT ... UNION`` statement)
  versus fully independent per-disjunct evaluation — the MQO ablation
  behind the ``mqo_speedup`` figure;
* **initial state**: the workload queries themselves materialized.

Timings depend on PYTHONHASHSEED (the synthetic Barton generator walks
hash-ordered dicts), so cross-process comparisons must pin it — the
committed JSONs use ``PYTHONHASHSEED=0`` (see ``docs/benchmarks.md``).

Expected shape: views beat the triple-table plans by one or more orders
of magnitude and land in the same range as the native engine; the
initial state (a plain view scan) is the fastest; pre- and post-
reformulation views answer identically; every engine strategy beats or
matches the seed evaluator.

Standalone smoke mode (used by CI to catch evaluation-speed
regressions per PR, and handy for comparing strategies by hand)::

    PYTHONPATH=src python -m benchmarks.bench_fig8_query_evaluation \
        --smoke --engine all
"""

from __future__ import annotations

import time

ENGINE_SERIES = ("auto", "index-nested-loop", "hash", "merge")

try:
    import pytest
except ImportError:  # pragma: no cover - smoke mode without pytest
    pytest = None

from benchmarks.bench_table3_reformulation_workloads import reformulation_workloads
from benchmarks.support import barton, budget, full_scale, report
from repro.engine import choose_engine
from repro.obs import metrics
from repro.obs.analyze import analyze_query
from repro.query.evaluation import (
    evaluate,
    evaluate_greedy,
    evaluate_nested_loop,
    evaluate_union,
)
from repro.rdf.entailment import saturate
from repro.rdf.store import TripleStore
from repro.reformulation.reformulate import reformulate
from repro.reformulation.workflows import pre_reformulation_initial_state
from repro.selection.costs import CostModel, calibrate_maintenance_weight
from repro.selection.materialize import answer_query, extent_size, materialize_views
from repro.selection.search import dfs_search
from repro.selection.state import ViewNamer, initial_state
from repro.selection.statistics import ReformulationAwareStatistics, StoreStatistics
from repro.selection.transitions import TransitionEnumerator
from repro.storage import BACKENDS

EXPERIMENT = "Figure 8: execution times for queries with RDFS (ms per query)"

# Disabled-instrumentation guards a single engine query crosses on its
# hot path (run_query wrapper, plan-cache lookup + insert + size gauge,
# route counter, slow-query check, pushdown compile + execute on SQL
# backends) — counted generously so the smoke gate overestimates the
# projected disabled overhead rather than undercounting it.
OBS_TOUCHPOINTS_PER_QUERY = 16


def _recommend(initial_builder, statistics):
    namer = ViewNamer()
    enumerator = TransitionEnumerator(namer)
    state = initial_builder(namer)
    weights = calibrate_maintenance_weight(state, statistics, ratio=2.0)
    model = CostModel(statistics, weights)
    return dfs_search(state, model, enumerator, budget(3.0)).best_state


def _restricted_store(store: TripleStore, schema, queries) -> TripleStore:
    """Only the triples matching some reformulated workload atom."""
    from repro.query.cq import Variable

    restricted = TripleStore()
    for query in queries:
        for disjunct in reformulate(query, schema):
            for atom in disjunct.atoms:
                pattern = [
                    None if isinstance(term, Variable) else term for term in atom
                ]
                restricted.add_all(store.match(*pattern))
    return restricted


def _time_ms(callable_, repeats: int = 3) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        elapsed = (time.perf_counter() - start) * 1000.0
        best = elapsed if best is None else min(best, elapsed)
    return best


def _setup():
    store, schema = barton()
    queries = reformulation_workloads()["Q1"]
    saturated = saturate(store, schema)
    restricted = _restricted_store(saturated, schema, queries)
    # Post-reformulation: search the plain workload, materialize
    # reformulated views on the plain store.
    post_state = _recommend(
        lambda namer: initial_state(queries, namer),
        ReformulationAwareStatistics(store, schema),
    )
    post_extents = materialize_views(post_state, store, schema)
    # Pre-reformulation: search the reformulated workload.
    pre_state = _recommend(
        lambda namer: pre_reformulation_initial_state(queries, schema, namer),
        StoreStatistics(store),
    )
    pre_extents = materialize_views(pre_state, store)
    # Initial state: the workload queries themselves, materialized.
    initial = initial_state(queries)
    initial_extents = materialize_views(initial, saturated)
    return {
        "queries": queries,
        # The plain (non-saturated) store and the schema: the
        # reformulation-union series evaluates Reformulate(q, S) here
        # (Theorem 4.2's route), shared vs independent.
        "plain": store,
        "schema": schema,
        "saturated": saturated,
        "restricted": restricted,
        "post": (post_state, post_extents),
        "pre": (pre_state, pre_extents),
        "initial": (initial, initial_extents),
    }


if pytest is not None:

    @pytest.fixture(scope="module", name="setup")
    def setup_fixture():
        return _setup()


def _measure(setup, repeats: int = 3, workers: int = 1):
    queries = setup["queries"]
    post_state, post_extents = setup["post"]
    pre_state, pre_extents = setup["pre"]
    initial, initial_extents = setup["initial"]
    saturated = setup["saturated"]
    plain, schema = setup["plain"], setup["schema"]

    rows = []
    for query in queries:
        expected = evaluate_greedy(query, saturated)
        union = reformulate(query, schema)
        times = {
            "saturated-tt": _time_ms(
                lambda: evaluate_nested_loop(query, saturated)
            ),
            "restricted-tt": _time_ms(
                lambda: evaluate_nested_loop(query, setup["restricted"])
            ),
            "pre-reform": _time_ms(
                lambda: answer_query(pre_state, query.name, pre_extents), repeats
            ),
            "post-reform": _time_ms(
                lambda: answer_query(post_state, query.name, post_extents), repeats
            ),
            "seed-greedy": _time_ms(
                lambda: evaluate_greedy(query, saturated), repeats
            ),
            "initial-state": _time_ms(
                lambda: answer_query(initial, query.name, initial_extents), repeats
            ),
        }
        for engine in ENGINE_SERIES:
            times[f"engine-{engine}"] = _time_ms(
                lambda: evaluate(query, saturated, engine=engine, workers=workers),
                repeats,
            )
        # The batched engine's baseline: same auto-selected plan, the
        # historical tuple-at-a-time execution path.
        times["engine-auto-tuple"] = _time_ms(
            lambda: evaluate(query, saturated, engine="auto", batch_size=None),
            repeats,
        )
        # The columnar layout's baseline: same auto-selected plans,
        # batched, but executed through the row-batch layout.
        times["engine-auto-row"] = _time_ms(
            lambda: evaluate(query, saturated, engine="auto", layout="row"),
            repeats,
        )
        # The reformulation union on the plain store: through the
        # multi-query optimizer vs fully independent per-disjunct
        # evaluation (the MQO ablation pair).
        times["union-shared"] = _time_ms(
            lambda: evaluate_union(union, plain, workers=workers), repeats
        )
        times["union-independent"] = _time_ms(
            lambda: evaluate_union(union, plain, workers=workers, shared=False),
            repeats,
        )
        # Correctness: every route returns the complete
        # (entailment-aware) answers.
        for engine in ENGINE_SERIES:
            assert evaluate(query, saturated, engine=engine, workers=workers) == expected
        assert evaluate(query, saturated, engine="auto", batch_size=None) == expected
        assert evaluate(query, saturated, engine="auto", layout="row") == expected
        # Shared and independent union evaluation must agree exactly
        # (and both equal the saturated-store answers — Theorem 4.2).
        shared_answers = evaluate_union(union, plain, workers=workers)
        assert shared_answers == evaluate_union(
            union, plain, workers=workers, shared=False
        )
        assert shared_answers == expected
        assert answer_query(post_state, query.name, post_extents) == expected
        assert answer_query(pre_state, query.name, pre_extents) == expected
        assert answer_query(initial, query.name, initial_extents) == expected
        rows.append((query.name, times))
    return rows


def _report_rows(setup, rows, emit=report, engine_key="engine-auto"):
    for name, times in rows:
        rendered = "  ".join(f"{key}={value:8.2f}" for key, value in times.items())
        emit(EXPERIMENT, f"{name}: {rendered}")
    _, post_extents = setup["post"]
    _, pre_extents = setup["pre"]
    total_seed = sum(times["seed-greedy"] for _, times in rows)
    total_engine = sum(times[engine_key] for _, times in rows)
    speedup = total_seed / total_engine if total_engine else float("inf")
    emit(
        EXPERIMENT,
        f"{engine_key} total {total_engine:.2f} ms vs seed-greedy "
        f"{total_seed:.2f} ms ({speedup:.1f}x)",
    )
    total_tuple = sum(times.get("engine-auto-tuple", 0.0) for _, times in rows)
    total_batched = sum(times.get("engine-auto", 0.0) for _, times in rows)
    if total_tuple and total_batched:
        emit(
            EXPERIMENT,
            f"batched engine-auto total {total_batched:.2f} ms vs "
            f"tuple-at-a-time {total_tuple:.2f} ms "
            f"({total_tuple / total_batched:.2f}x)",
        )
    total_row_layout = sum(times.get("engine-auto-row", 0.0) for _, times in rows)
    if total_row_layout and total_batched:
        emit(
            EXPERIMENT,
            f"columnar engine-auto total {total_batched:.2f} ms vs "
            f"row layout {total_row_layout:.2f} ms "
            f"({total_row_layout / total_batched:.2f}x)",
        )
    total_shared = sum(times.get("union-shared", 0.0) for _, times in rows)
    total_indep = sum(times.get("union-independent", 0.0) for _, times in rows)
    if total_shared and total_indep:
        emit(
            EXPERIMENT,
            f"mqo union-shared total {total_shared:.2f} ms vs "
            f"independent {total_indep:.2f} ms "
            f"({total_indep / total_shared:.2f}x)",
        )
    emit(
        EXPERIMENT,
        f"view storage: post-reform={extent_size(post_extents)} tuples, "
        f"pre-reform={extent_size(pre_extents)} tuples, "
        f"database={len(setup['saturated'])} triples",
    )


def test_fig8_execution_times(benchmark, setup):
    rows = benchmark.pedantic(lambda: _measure(setup), rounds=1, iterations=1)
    _report_rows(setup, rows)


def _observability_payload(setup, workers: int = 1):
    """One instrumented workload pass, rendered for ``BENCH_fig8.json``.

    Runs every query (engine-auto on the saturated store) and its
    reformulation union (MQO route on the plain store) once under
    ``metrics.enabled_registry()`` and embeds the registry snapshot —
    plan-cache behaviour, route counters, query-latency histograms —
    next to the timings they explain, plus the measured cost of one
    *disabled* touchpoint (the figure the smoke overhead gate projects
    from). See ``docs/observability.md`` for the metric catalog.
    """
    queries = setup["queries"]
    saturated = setup["saturated"]
    plain, schema = setup["plain"], setup["schema"]
    metrics.reset()
    with metrics.enabled_registry():
        for query in queries:
            evaluate(query, saturated, engine="auto", workers=workers)
            evaluate_union(reformulate(query, schema), plain, workers=workers)
    registry = metrics.snapshot()
    metrics.reset()
    return {
        "disabled_overhead_ns_per_touchpoint": round(
            metrics.disabled_overhead_ns(), 1
        ),
        "workload_pass": registry,
    }


def _json_payload(setup, rows, workers: int = 1):
    """Machine-readable Figure 8 results (written to ``BENCH_fig8.json``).

    Per query: every measured series in milliseconds plus the engine the
    cost-based ``auto`` selection picked on the saturated store. Per
    series: the workload total, plus the batched-over-tuple speedup of
    the auto engine (the batched-engine acceptance figure). Consumed
    across PRs to track the evaluation-performance trajectory.
    """
    from repro.engine import DEFAULT_BATCH_SIZE

    saturated = setup["saturated"]
    by_name = {query.name: query for query in setup["queries"]}
    totals: dict[str, float] = {}
    for _, times in rows:
        for series, value in times.items():
            totals[series] = totals.get(series, 0.0) + value
    tuple_total = totals.get("engine-auto-tuple", 0.0)
    batched_total = totals.get("engine-auto", 0.0)
    row_layout_total = totals.get("engine-auto-row", 0.0)
    shared_total = totals.get("union-shared", 0.0)
    independent_total = totals.get("union-independent", 0.0)
    return {
        "experiment": "fig8_query_evaluation",
        "scale": "full" if full_scale() else "quick",
        "database_triples": len(saturated),
        "batch_size": DEFAULT_BATCH_SIZE,
        "workers": workers,
        "batched_speedup_vs_tuple": (
            round(tuple_total / batched_total, 2) if batched_total else None
        ),
        # The layout ablation: the same auto plans, batched, columnar
        # (the default engine-auto series) vs the row-batch layout.
        "columnar_speedup_vs_row": (
            round(row_layout_total / batched_total, 2) if batched_total else None
        ),
        # The MQO ablation: the workload's reformulation unions on the
        # plain store, shared (one DAG / one UNION statement) vs fully
        # independent per-disjunct evaluation.
        "union_shared_ms": round(shared_total, 4),
        "union_independent_ms": round(independent_total, 4),
        "mqo_speedup": (
            round(independent_total / shared_total, 2) if shared_total else None
        ),
        "queries": [
            {
                "name": name,
                "chosen_engine": choose_engine(by_name[name], saturated),
                "timings_ms": {series: round(value, 4) for series, value in times.items()},
            }
            for name, times in rows
        ],
        "totals_ms": {series: round(value, 4) for series, value in totals.items()},
        # The registry snapshot of one instrumented workload pass plus
        # the measured disabled-touchpoint cost (observability PR).
        "observability": _observability_payload(setup, workers=workers),
    }


def _storage_payload(setup, repeats: int = 3):
    """Machine-readable storage-backend comparison (``BENCH_storage.json``).

    Per backend: bulk-load time of the saturated store, snapshot save
    time and file size, snapshot reopen time, and per-query engine-auto
    latency — the numbers that justify (or veto) running a workload
    from disk. On SQL-capable backends the auto route is whole-plan SQL
    pushdown, so each query is additionally measured on the interpreted
    operator tree (``pushdown=False``) — the per-query ablation behind
    the ``pushdown_speedup`` figure — and the payload carries the
    memory-vs-sqlite latency ratio the pushdown PR is gated on. Answer
    parity across backends and routes is asserted on the way.
    """
    import os
    import tempfile

    saturated = setup["saturated"]
    queries = setup["queries"]
    expected = {
        query.name: evaluate(query, saturated, engine="auto")
        for query in queries
    }
    backends = {}
    for name in BACKENDS:
        start = time.perf_counter()
        converted = saturated.copy(backend=name)
        load_ms = (time.perf_counter() - start) * 1000.0

        handle, path = tempfile.mkstemp(suffix=f".{name}.db")
        os.close(handle)
        start = time.perf_counter()
        converted.save(path)
        save_ms = (time.perf_counter() - start) * 1000.0
        file_size = os.path.getsize(path)

        start = time.perf_counter()
        reopened = TripleStore.open(path, backend=name)
        open_ms = (time.perf_counter() - start) * 1000.0

        # Latency is measured on the *reopened* store — for sqlite that
        # is the snapshot file served in place, the deployment scenario
        # these figures characterize (not an anonymous warm copy).
        query_ms = {}
        interpreted_ms = {}
        pushdown_capable = reopened.backend.supports_sql_plans
        for query in queries:
            assert evaluate(query, reopened, engine="auto") == expected[query.name]
            query_ms[query.name] = round(
                _time_ms(lambda: evaluate(query, reopened, engine="auto"), repeats),
                4,
            )
            if pushdown_capable:
                # The ablation baseline: same store, same auto plan
                # selection, interpreted operator tree.
                assert (
                    evaluate(query, reopened, engine="auto", pushdown=False)
                    == expected[query.name]
                )
                interpreted_ms[query.name] = round(
                    _time_ms(
                        lambda: evaluate(
                            query, reopened, engine="auto", pushdown=False
                        ),
                        repeats,
                    ),
                    4,
                )
        reopened.close()
        converted.close()
        os.unlink(path)
        backends[name] = {
            "load_ms": round(load_ms, 2),
            "save_ms": round(save_ms, 2),
            "snapshot_bytes": file_size,
            "open_ms": round(open_ms, 2),
            "query_ms": query_ms,
            "total_query_ms": round(sum(query_ms.values()), 4),
        }
        if pushdown_capable:
            pushdown_total = sum(query_ms.values())
            interpreted_total = sum(interpreted_ms.values())
            backends[name]["query_interpreted_ms"] = interpreted_ms
            backends[name]["total_query_interpreted_ms"] = round(
                interpreted_total, 4
            )
            backends[name]["pushdown_speedup"] = (
                round(interpreted_total / pushdown_total, 2)
                if pushdown_total
                else None
            )
    payload = {
        "experiment": "storage_backends",
        "scale": "full" if full_scale() else "quick",
        "database_triples": len(saturated),
        "backends": backends,
    }
    memory_total = backends.get("memory", {}).get("total_query_ms")
    sqlite_total = backends.get("sqlite", {}).get("total_query_ms")
    if memory_total and sqlite_total:
        payload["memory_vs_sqlite_ratio"] = round(sqlite_total / memory_total, 2)
    return payload


def main(argv=None) -> int:
    """Standalone entry point: compare engines without pytest-benchmark.

    ``--smoke`` is the CI regression gate: it runs the quick-scale
    setup, checks answer parity across all engines, and fails when the
    engine falls behind the seed evaluator.
    """
    import argparse

    parser = argparse.ArgumentParser(
        description="Figure 8 query-evaluation benchmark (standalone mode)."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="quick parity + regression gate for CI")
    parser.add_argument("--engine", choices=ENGINE_SERIES + ("all",), default="all",
                        help="engine strategy to report (default: all)")
    parser.add_argument("--backend", choices=BACKENDS, default="memory",
                        help="storage backend serving the triple-table "
                        "series (default: memory); the gate then compares "
                        "engine vs seed on that backend")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for the engine series "
                        "(default 1 = serial; the planner only partitions "
                        "joins above its cardinality threshold)")
    parser.add_argument("--json", metavar="PATH", default="BENCH_fig8.json",
                        help="write machine-readable results (per-engine "
                        "timings + chosen engine per query) to PATH; pass "
                        "an empty string to skip (default: BENCH_fig8.json)")
    parser.add_argument("--storage-json", metavar="PATH",
                        default="BENCH_storage.json",
                        help="write the per-backend storage comparison "
                        "(load/save/open times, snapshot size, per-query "
                        "latency) to PATH; empty string to skip "
                        "(default: BENCH_storage.json)")
    args = parser.parse_args(argv)

    setup = _setup()
    storage_payload = None
    if args.storage_json:
        import json
        from pathlib import Path

        storage_payload = _storage_payload(setup)
        Path(args.storage_json).write_text(
            json.dumps(storage_payload, indent=2)
        )
        print(f"wrote {args.storage_json}")
    if args.backend != "memory":
        # Serve the triple-table series (and the gate) from the chosen
        # backend; view extents are backend-independent. The plain
        # store converts too so the union series exercises the
        # backend's route (on sqlite: the single UNION statement).
        setup["saturated"] = setup["saturated"].copy(backend=args.backend)
        setup["restricted"] = setup["restricted"].copy(backend=args.backend)
        setup["plain"] = setup["plain"].copy(backend=args.backend)
    # Smoke mode gates on sub-millisecond timings; best-of-9 keeps one
    # noisy repeat on a shared CI runner from tripping the gate.
    rows = _measure(setup, repeats=9 if args.smoke else 3, workers=args.workers)
    if args.json:
        import json
        from pathlib import Path

        Path(args.json).write_text(
            json.dumps(_json_payload(setup, rows, workers=args.workers), indent=2)
        )
        print(f"wrote {args.json}")
    engine_key = "engine-auto" if args.engine == "all" else f"engine-{args.engine}"
    if args.engine != "all":
        keep = {"saturated-tt", "restricted-tt", "pre-reform", "post-reform",
                "seed-greedy", "initial-state", "engine-auto-tuple",
                "engine-auto-row", "union-shared", "union-independent",
                engine_key}
        rows = [
            (name, {k: v for k, v in times.items() if k in keep})
            for name, times in rows
        ]

    def emit(_experiment, line):
        print(line)

    print(EXPERIMENT)
    _report_rows(setup, rows, emit=emit, engine_key=engine_key)

    if args.smoke:
        total_seed = sum(times["seed-greedy"] for _, times in rows)
        total_engine = sum(times[engine_key] for _, times in rows)
        # Regression gate: the engine must not fall behind the seed
        # evaluator. The 1.75x guard absorbs shared-runner timer noise
        # on sub-millisecond totals while still catching real
        # regressions (losing the plan cache alone costs ~2x).
        if total_engine > total_seed * 1.75:
            print(
                f"SMOKE FAIL: {engine_key} ({total_engine:.2f} ms) slower than "
                f"seed-greedy ({total_seed:.2f} ms)"
            )
            return 1
        print(f"SMOKE OK: {engine_key} {total_engine:.2f} ms <= "
              f"seed-greedy {total_seed:.2f} ms * 1.75")
        # Layout gate: the columnar default must not fall behind the
        # row-batch layout on the same auto plans (answer parity between
        # the two layouts is asserted in _measure). The 1.25x margin
        # absorbs timer noise on sub-millisecond totals; on SQL-pushdown
        # backends both series take the pushdown route and the ratio
        # sits near 1.
        total_columnar = sum(times.get("engine-auto", 0.0) for _, times in rows)
        total_row_layout = sum(
            times.get("engine-auto-row", 0.0) for _, times in rows
        )
        if total_row_layout and total_columnar:
            if total_columnar > total_row_layout * 1.25:
                print(
                    f"SMOKE FAIL: columnar engine-auto "
                    f"({total_columnar:.2f} ms) slower than row layout "
                    f"({total_row_layout:.2f} ms)"
                )
                return 1
            print(f"SMOKE OK: columnar engine-auto {total_columnar:.2f} ms <= "
                  f"row layout {total_row_layout:.2f} ms * 1.25")
        # MQO gate: the workload's reformulation unions through the
        # multi-query optimizer must not fall behind fully independent
        # per-disjunct evaluation (answer parity between the two routes
        # — and against the saturated store — is asserted in _measure;
        # with --backend sqlite the shared route is the single
        # SELECT ... UNION statement). The 1.25x margin absorbs timer
        # noise on sub-millisecond union totals.
        total_shared = sum(times["union-shared"] for _, times in rows)
        total_indep = sum(times["union-independent"] for _, times in rows)
        if total_shared > total_indep * 1.25:
            print(
                f"SMOKE FAIL: mqo union-shared ({total_shared:.2f} ms) "
                f"slower than independent ({total_indep:.2f} ms)"
            )
            return 1
        print(f"SMOKE OK: mqo union-shared {total_shared:.2f} ms <= "
              f"independent {total_indep:.2f} ms * 1.25")
        if storage_payload is not None:
            # Pushdown gate: on the SQLite backend, the pushed-down auto
            # route must not fall behind its own interpreted operator
            # tree (answer parity is asserted inside _storage_payload).
            # The 1.25x margin absorbs timer noise on sub-millisecond
            # per-query latencies.
            sqlite_series = storage_payload["backends"].get("sqlite", {})
            pushdown_total = sqlite_series.get("total_query_ms")
            interpreted_total = sqlite_series.get("total_query_interpreted_ms")
            if pushdown_total and interpreted_total:
                if pushdown_total > interpreted_total * 1.25:
                    print(
                        f"SMOKE FAIL: sqlite pushdown ({pushdown_total:.2f} ms) "
                        f"slower than interpreted ({interpreted_total:.2f} ms)"
                    )
                    return 1
                print(
                    f"SMOKE OK: sqlite pushdown {pushdown_total:.2f} ms <= "
                    f"interpreted {interpreted_total:.2f} ms * 1.25"
                )
        # Observability overhead gate: disabled instrumentation is a
        # module attribute load plus a branch per touchpoint, far below
        # wall-clock A/B resolution on this workload — so measure one
        # touchpoint directly, project it across the (generous)
        # per-query touchpoint count, and fail when the projection
        # exceeds 5% of the measured per-query engine time.
        overhead_ns = metrics.disabled_overhead_ns()
        per_query_ms = total_engine / max(len(rows), 1)
        projected_ms = overhead_ns * OBS_TOUCHPOINTS_PER_QUERY / 1e6
        if projected_ms > per_query_ms * 0.05:
            print(
                f"SMOKE FAIL: disabled instrumentation projects to "
                f"{projected_ms * 1000:.2f} us/query ({overhead_ns:.0f} ns "
                f"x {OBS_TOUCHPOINTS_PER_QUERY} touchpoints), more than "
                f"5% of per-query engine time ({per_query_ms:.3f} ms)"
            )
            return 1
        print(
            f"SMOKE OK: disabled instrumentation {projected_ms * 1000:.2f} "
            f"us/query ({overhead_ns:.0f} ns x {OBS_TOUCHPOINTS_PER_QUERY} "
            f"touchpoints) <= 5% of {per_query_ms:.3f} ms/query"
        )
        # EXPLAIN ANALYZE gate: run every query once instrumented (the
        # pushdown route on SQL backends, interpreted elsewhere) and
        # check the analyzed actuals against the reference evaluator —
        # the probed answer count must equal the real one, the distinct
        # encoded images must equal the decoded answers 1:1, and the
        # probed root cannot report fewer rows than the answers it
        # produced.
        analyzed_rows = 0
        for query in setup["queries"]:
            expected = evaluate(query, setup["saturated"], engine="auto")
            analysis = analyze_query(
                query, setup["saturated"], engine="auto", workers=args.workers
            )
            if analysis.answers != expected:
                print(
                    f"SMOKE FAIL: EXPLAIN ANALYZE answers for {query.name} "
                    f"({analysis.answer_count}) disagree with the engine "
                    f"({len(expected)})"
                )
                return 1
            if analysis.distinct_images != analysis.answer_count:
                print(
                    f"SMOKE FAIL: {query.name} recorded "
                    f"{analysis.distinct_images} distinct images for "
                    f"{analysis.answer_count} answers"
                )
                return 1
            if analysis.root_rows < analysis.answer_count:
                print(
                    f"SMOKE FAIL: {query.name}'s probed root reported "
                    f"{analysis.root_rows} rows for "
                    f"{analysis.answer_count} answers"
                )
                return 1
            analyzed_rows += sum(
                stats.rows_out for _, stats in analysis.operators
            )
        print(
            f"SMOKE OK: EXPLAIN ANALYZE matches the engine on "
            f"{len(setup['queries'])} queries "
            f"({analyzed_rows} operator rows recorded)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
