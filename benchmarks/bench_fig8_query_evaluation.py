"""Figure 8 — execution times for queries with RDFS entailment.

Paper setup: the five queries of workload Q1, answered six ways —

* **saturated triple table**: scan-based evaluation on the saturated
  store (the role of the plain PostgreSQL triple-table plan);
* **restricted triple table**: the same, on a table restricted to the
  triples relevant to the workload;
* **pre-reform. views**: rewritings over views selected from the
  pre-reformulated workload;
* **post-reform. views**: rewritings over reformulated views;
* **RDF-3X-like**: the index-backed, selectivity-ordered evaluator on
  the saturated store (the role RDF-3X plays as a native reference);
* **initial state**: the workload queries themselves materialized.

Expected shape: views beat the triple-table plans by one or more orders
of magnitude and land in the same range as the native engine; the
initial state (a plain view scan) is the fastest; pre- and post-
reformulation views answer identically.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.bench_table3_reformulation_workloads import reformulation_workloads
from benchmarks.support import barton, budget, report
from repro.query.evaluation import evaluate, evaluate_nested_loop
from repro.rdf.entailment import saturate
from repro.rdf.store import TripleStore
from repro.reformulation.reformulate import reformulate
from repro.reformulation.workflows import pre_reformulation_initial_state
from repro.selection.costs import CostModel, calibrate_maintenance_weight
from repro.selection.materialize import answer_query, extent_size, materialize_views
from repro.selection.search import dfs_search
from repro.selection.state import ViewNamer, initial_state
from repro.selection.statistics import ReformulationAwareStatistics, StoreStatistics
from repro.selection.transitions import TransitionEnumerator

EXPERIMENT = "Figure 8: execution times for queries with RDFS (ms per query)"


def _recommend(initial_builder, statistics):
    namer = ViewNamer()
    enumerator = TransitionEnumerator(namer)
    state = initial_builder(namer)
    weights = calibrate_maintenance_weight(state, statistics, ratio=2.0)
    model = CostModel(statistics, weights)
    return dfs_search(state, model, enumerator, budget(3.0)).best_state


def _restricted_store(store: TripleStore, schema, queries) -> TripleStore:
    """Only the triples matching some reformulated workload atom."""
    from repro.query.cq import Variable

    restricted = TripleStore()
    for query in queries:
        for disjunct in reformulate(query, schema):
            for atom in disjunct.atoms:
                pattern = [
                    None if isinstance(term, Variable) else term for term in atom
                ]
                restricted.add_all(store.match(*pattern))
    return restricted


def _time_ms(callable_, repeats: int = 3) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        elapsed = (time.perf_counter() - start) * 1000.0
        best = elapsed if best is None else min(best, elapsed)
    return best


@pytest.fixture(scope="module")
def setup():
    store, schema = barton()
    queries = reformulation_workloads()["Q1"]
    saturated = saturate(store, schema)
    restricted = _restricted_store(saturated, schema, queries)
    # Post-reformulation: search the plain workload, materialize
    # reformulated views on the plain store.
    post_state = _recommend(
        lambda namer: initial_state(queries, namer),
        ReformulationAwareStatistics(store, schema),
    )
    post_extents = materialize_views(post_state, store, schema)
    # Pre-reformulation: search the reformulated workload.
    pre_state = _recommend(
        lambda namer: pre_reformulation_initial_state(queries, schema, namer),
        StoreStatistics(store),
    )
    pre_extents = materialize_views(pre_state, store)
    # Initial state: the workload queries themselves, materialized.
    initial = initial_state(queries)
    initial_extents = materialize_views(initial, saturated)
    return {
        "queries": queries,
        "saturated": saturated,
        "restricted": restricted,
        "post": (post_state, post_extents),
        "pre": (pre_state, pre_extents),
        "initial": (initial, initial_extents),
    }


def test_fig8_execution_times(benchmark, setup):
    queries = setup["queries"]
    post_state, post_extents = setup["post"]
    pre_state, pre_extents = setup["pre"]
    initial, initial_extents = setup["initial"]

    def measure():
        rows = []
        for query in queries:
            expected = evaluate(query, setup["saturated"])
            times = {
                "saturated-tt": _time_ms(
                    lambda: evaluate_nested_loop(query, setup["saturated"])
                ),
                "restricted-tt": _time_ms(
                    lambda: evaluate_nested_loop(query, setup["restricted"])
                ),
                "pre-reform": _time_ms(
                    lambda: answer_query(pre_state, query.name, pre_extents)
                ),
                "post-reform": _time_ms(
                    lambda: answer_query(post_state, query.name, post_extents)
                ),
                "rdf3x-like": _time_ms(
                    lambda: evaluate(query, setup["saturated"])
                ),
                "initial-state": _time_ms(
                    lambda: answer_query(initial, query.name, initial_extents)
                ),
            }
            # Correctness: every view-based route returns the complete
            # (entailment-aware) answers.
            assert answer_query(post_state, query.name, post_extents) == expected
            assert answer_query(pre_state, query.name, pre_extents) == expected
            assert answer_query(initial, query.name, initial_extents) == expected
            rows.append((query.name, times))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    for name, times in rows:
        rendered = "  ".join(f"{key}={value:8.2f}" for key, value in times.items())
        report(EXPERIMENT, f"{name}: {rendered}")
    report(
        EXPERIMENT,
        f"view storage: post-reform={extent_size(post_extents)} tuples, "
        f"pre-reform={extent_size(pre_extents)} tuples, "
        f"database={len(setup['saturated'])} triples",
    )
