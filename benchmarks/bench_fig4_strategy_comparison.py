"""Figure 4 — strategy comparison on small workloads.

Paper setup: workloads of 5 queries with 5 or 10 atoms each, star and
chain shapes, high and low commonality; the three relational strategies
of [21] (Greedy, Heuristic, Pruning) against DFS-AVF-STV and
GSTR-AVF-STV under a stoptime condition.

Expected shape (Section 6.2): on the 5-atom workloads all strategies
produce solutions, with DFS-AVF-STV and GSTR-AVF-STV the best; on the
10-atom workloads the relational strategies exhaust memory before
producing any full candidate view set ("OOM"), while DFS and GSTR keep
running and achieve interesting cost reductions.
"""

from __future__ import annotations

import pytest

from benchmarks.support import (
    barton_statistics,
    budget,
    report,
    satisfiable_workload,
    search_setup,
)
from repro.selection.competitors import (
    MemoryBudgetExceeded,
    greedy_relational_search,
    heuristic_relational_search,
    pruning_relational_search,
)
from repro.selection.costs import CostModel, calibrate_maintenance_weight
from repro.selection.search import dfs_search, greedy_stratified_search
from repro.selection.state import initial_state
from repro.workload import QueryShape

WORKLOAD_KINDS = [
    ("star-high", QueryShape.STAR, "high"),
    ("star-low", QueryShape.STAR, "low"),
    ("chain-high", QueryShape.CHAIN, "high"),
    ("chain-low", QueryShape.CHAIN, "low"),
]

#: Models [21]'s memory limit (Section 6.2's out-of-memory failures).
COMPETITOR_STATE_CAP = 40_000


def _run_ours(search, queries):
    state, model, enumerator = search_setup(queries)
    return search(state, model, enumerator, budget(1.5)).rcr


def _run_competitor(search, queries):
    statistics = barton_statistics()
    weights = calibrate_maintenance_weight(
        initial_state(queries), statistics, ratio=2.0
    )
    model = CostModel(statistics, weights)
    try:
        result = search(
            queries, model, budget=budget(3.0, max_states=COMPETITOR_STATE_CAP)
        )
        return result.rcr
    except MemoryBudgetExceeded:
        return None  # "fails to produce a solution"


STRATEGIES = {
    "Greedy[21]": lambda queries: _run_competitor(greedy_relational_search, queries),
    "Heuristic[21]": lambda queries: _run_competitor(heuristic_relational_search, queries),
    "Pruning[21]": lambda queries: _run_competitor(pruning_relational_search, queries),
    "DFS-AVF-STV": lambda queries: _run_ours(dfs_search, queries),
    "GSTR-AVF-STV": lambda queries: _run_ours(greedy_stratified_search, queries),
}


@pytest.mark.parametrize("atoms", [5, 10])
@pytest.mark.parametrize("strategy", list(STRATEGIES))
def test_fig4_strategy_rcr(benchmark, strategy, atoms):
    runner = STRATEGIES[strategy]
    workloads = {
        label: satisfiable_workload(5, atoms, shape, commonality, seed=4)
        for label, shape, commonality in WORKLOAD_KINDS
    }

    def run_all():
        return {label: runner(queries) for label, queries in workloads.items()}

    rcrs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for label, _, _ in WORKLOAD_KINDS:
        value = rcrs[label]
        rendered = f"{value:.3f}" if value is not None else "OOM (no solution)"
        report(
            "Figure 4: strategy comparison on small workloads "
            "(relative cost reduction; OOM = memory budget exhausted)",
            f"{atoms:>2} atoms/query  {label:<11} {strategy:<13} rcr={rendered}",
        )
