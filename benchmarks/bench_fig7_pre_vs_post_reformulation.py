"""Figure 7 — view-set search under pre- vs post-reformulation.

Paper setup: the Q1 and Q2 workloads of Table 3 on the Barton dataset;
DFS-AVF-STV searches either the pre-reformulated workload (one view per
reformulated disjunct, statistics from the plain store) or the original
workload with reformulation-aware statistics (post-reformulation); the
evolution of the best cost over time is plotted.

Expected shape: the pre-reformulation initial state costs more than the
post-reformulation one; the post-reformulation best cost drops faster
and ends lower — with the gap widening on the larger workload Q2 (the
paper reports final-cost ratios of 2.7x on Q1 and 22x on Q2).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.bench_table3_reformulation_workloads import reformulation_workloads
from benchmarks.support import barton, budget, report
from repro.query.evaluation import evaluate_union
from repro.reformulation.reformulate import reformulate
from repro.reformulation.workflows import pre_reformulation_initial_state
from repro.selection.costs import CostModel, calibrate_maintenance_weight
from repro.selection.search import dfs_search
from repro.selection.state import ViewNamer, initial_state
from repro.selection.statistics import ReformulationAwareStatistics, StoreStatistics
from repro.selection.transitions import TransitionEnumerator

EXPERIMENT = (
    "Figure 7: best cost over time, pre- vs post-reformulation (DFS-AVF-STV)"
)


def _search(initial_builder, statistics):
    namer = ViewNamer()
    enumerator = TransitionEnumerator(namer)
    state = initial_builder(namer)
    weights = calibrate_maintenance_weight(state, statistics, ratio=2.0)
    model = CostModel(statistics, weights)
    return dfs_search(state, model, enumerator, budget(4.0))


@pytest.mark.parametrize("name", ["Q1", "Q2"])
@pytest.mark.parametrize("mode", ["pre-reform", "post-reform"])
def test_fig7_cost_over_time(benchmark, name, mode):
    store, schema = barton()
    queries = reformulation_workloads()[name]

    if mode == "pre-reform":
        statistics = StoreStatistics(store)

        def run():
            return _search(
                lambda namer: pre_reformulation_initial_state(queries, schema, namer),
                statistics,
            )

    else:
        statistics = ReformulationAwareStatistics(store, schema)

        def run():
            return _search(lambda namer: initial_state(queries, namer), statistics)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    trace = "  ".join(f"{t:.2f}s:{c:.0f}" for t, c in result.cost_history[-6:])
    report(
        EXPERIMENT,
        f"{name} {mode:<11} initial={result.initial_cost:>12.0f} "
        f"best={result.best_cost:>12.0f} views={len(result.best_state.views):>3} "
        f"trace[{trace}]",
    )


@pytest.mark.parametrize("name", ["Q1", "Q2"])
def test_fig7_union_shared_vs_independent(benchmark, name):
    """The evaluation cost the post-reformulation search actually pays:
    ``ReformulationAwareStatistics`` answers every reformulation union
    on the plain store, so the multi-query optimizer's shared execution
    (vs the independent per-disjunct baseline) directly shortens its
    statistics-gathering phase."""
    store, schema = barton()
    queries = reformulation_workloads()[name]
    unions = [reformulate(query, schema) for query in queries]

    def shared_run():
        return [evaluate_union(union, store) for union in unions]

    shared_answers = benchmark.pedantic(shared_run, rounds=1, iterations=1)
    start = time.perf_counter()
    independent = [
        evaluate_union(union, store, shared=False) for union in unions
    ]
    independent_ms = (time.perf_counter() - start) * 1000.0
    assert shared_answers == independent
    start = time.perf_counter()
    shared_run()
    shared_ms = (time.perf_counter() - start) * 1000.0
    disjuncts = sum(len(union.disjuncts) for union in unions)
    ratio = independent_ms / shared_ms if shared_ms else float("inf")
    report(
        EXPERIMENT,
        f"{name} union eval ({disjuncts} disjuncts) "
        f"shared={shared_ms:.2f} ms independent={independent_ms:.2f} ms "
        f"({ratio:.2f}x)",
    )
