"""Ablation — stratified vs naive exhaustive search (Theorem 5.3).

EXSTR restricts every path to the regular language VB* SC* JC* VF*;
Theorem 5.3 states any EXSTR strategy applies at most as many
transitions as any EXNAÏVE one while remaining exhaustive. We run both
on a small workload under an equal state budget and compare transition
and duplicate counts, and the best cost found.
"""

from __future__ import annotations

import pytest

from benchmarks.support import full_scale, report, satisfiable_workload, search_setup
from repro.selection.search import (
    SearchBudget,
    exhaustive_naive_search,
    exhaustive_stratified_search,
)
from repro.workload import QueryShape

EXPERIMENT = "Ablation: stratification (EXNAIVE vs EXSTR, Theorem 5.3)"

STRATEGIES = {
    "EXNAIVE": exhaustive_naive_search,
    "EXSTR": exhaustive_stratified_search,
}


@pytest.mark.parametrize("label", list(STRATEGIES))
def test_ablation_stratification(benchmark, label):
    queries = satisfiable_workload(2, 3, QueryShape.CHAIN, "high", seed=9)
    state_budget = SearchBudget(max_states=60_000 if full_scale() else 15_000)

    def run():
        state, model, enumerator = search_setup(queries, vb_mode="overlapping")
        return STRATEGIES[label](state, model, enumerator, state_budget)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        EXPERIMENT,
        f"{label:<8} transitions={result.stats.transitions:>7} "
        f"duplicates={result.stats.duplicates:>7} "
        f"explored={result.stats.explored:>6} best_cost={result.best_cost:.1f} "
        f"completed={result.completed}",
    )
