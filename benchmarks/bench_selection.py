"""View-selection search benchmark — the search-core companion to the
paper's Figures 5 and 7.

Measures, per strategy, the search throughput (created states per
second), the Figure-5 state accounting (created / duplicates /
discarded / explored) and the Figure-7 cost-over-time trace, plus the
incremental-costing ablation: the same searches driven by a cost model
with the cross-state price memos disabled (``incremental=False`` — the
pre-refactor pricing path that fully re-priced every created state).
Both models must find the *identical* best cost; the incremental one
must not be slower.

Writes ``BENCH_selection.json`` (schema in ``docs/benchmarks.md``).
``--smoke`` is the CI gate: one stratified (EXSTR) and one DFS run on
the quick workload plus the ablation pair, failing on any best-cost
disagreement between the incremental and the full-recompute model, or
on an incremental slowdown beyond the noise guard.

Absolute states/sec across machines or processes is only comparable
under ``PYTHONHASHSEED=0`` (the shared Barton catalog is hash-order
sensitive); the within-run ratios the gate checks are unaffected.
"""

from __future__ import annotations

import gc
import json
import sys
import time
from pathlib import Path

from benchmarks.support import (
    barton_statistics,
    budget,
    full_scale,
    satisfiable_workload,
)
from repro.selection.costs import CostModel, calibrate_maintenance_weight
from repro.selection.search import (
    SearchBudget,
    descent_search,
    dfs_search,
    exhaustive_naive_search,
    exhaustive_stratified_search,
    greedy_stratified_search,
)
from repro.selection.state import ViewNamer, initial_state
from repro.selection.transitions import TransitionEnumerator
from repro.workload import QueryShape

EXPERIMENT = "selection_search"

#: Every run gets the same created-states budget, so states/sec and the
#: Figure-5 counts are compared at equal work.
STATE_BUDGET_QUICK = 4_000
STATE_BUDGET_FULL = 20_000

WORKLOAD = dict(num_queries=3, atoms=4, shape=QueryShape.STAR,
                commonality="high", seed=11)
WORKLOAD_FULL = dict(num_queries=4, atoms=5, shape=QueryShape.STAR,
                     commonality="high", seed=11)

#: The ablation pair the acceptance gate watches.
ABLATION_STRATEGIES = ("exstr", "gstr")

#: Each strategy runs with its historical default heuristics (AVF/STV
#: on for the scalable strategies, off for the exhaustive ones — the
#: paper's configurations), so the series is comparable across PRs.
SEARCHES = {
    "exnaive": exhaustive_naive_search,
    "exstr": exhaustive_stratified_search,
    "dfs": dfs_search,
    "gstr": greedy_stratified_search,
    "descent": descent_search,
}

#: Pre-refactor throughput on this quick workload/budget (the seed
#: search loops at commit 33cc1ef, PYTHONHASHSEED=0, warmed runs,
#: default heuristics, GC-disciplined timing like `_run_strategy`) —
#: the fixed reference the states/sec series is read against. Absolute
#: numbers are machine-specific; the committed JSON and this reference
#: were measured on the same machine.
PRE_REFACTOR_STATES_PER_SEC = {
    "exnaive": 7900.2,
    "exstr": 7920.9,
    "dfs": 5816.9,
    "gstr": 7389.4,
    "descent": 5640.6,
}


def _workload():
    spec = WORKLOAD_FULL if full_scale() else WORKLOAD
    return satisfiable_workload(**spec), spec


def _state_budget(states_only: bool = False) -> SearchBudget:
    """The per-run budget.

    The strategy series keeps a generous stoptime safety net; the
    incremental-costing ablation uses a pure state budget
    (``states_only=True``) so both cost models always explore the exact
    same frontier — a slow CI runner hitting a wall-clock limit in only
    one of the two runs would otherwise make their best costs diverge
    for timing reasons, not costing reasons.
    """
    max_states = STATE_BUDGET_FULL if full_scale() else STATE_BUDGET_QUICK
    if states_only:
        return SearchBudget(max_states=max_states)
    return budget(20.0, max_states=max_states)


def _run_strategy(strategy: str, queries, incremental: bool = True,
                  workers: int = 1, states_only: bool = False):
    """One search run with a fresh enumerator, state and cost model."""
    statistics = barton_statistics()
    namer = ViewNamer()
    enumerator = TransitionEnumerator(namer)
    state = initial_state(queries, namer)
    weights = calibrate_maintenance_weight(state, statistics, ratio=2.0)
    model = CostModel(statistics, weights, incremental=incremental)
    search = SEARCHES[strategy]
    # Time with the cyclic collector off (the search allocates mostly
    # acyclic tuples/dataclasses, reclaimed by refcounting): late in a
    # many-run process, gen-2 collections scan every memo accumulated so
    # far and would charge earlier runs' heap to whichever run triggers
    # them, drowning the ablation signal in GC noise.
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = search(
            state, model, enumerator, _state_budget(states_only), workers=workers
        )
        elapsed = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return result, elapsed, model


def _downsample(history, limit: int = 60):
    """Keep the cost trace readable: at most ``limit`` points, endpoints
    always included."""
    if len(history) <= limit:
        return [[round(t, 4), cost] for t, cost in history]
    step = (len(history) - 1) / (limit - 1)
    indexes = sorted({round(i * step) for i in range(limit)})
    return [[round(history[i][0], 4), history[i][1]] for i in indexes]


def _strategy_payload(result, elapsed: float) -> dict:
    stats = result.stats
    return {
        "states_per_sec": round(stats.created / elapsed, 1) if elapsed else 0.0,
        "created": stats.created,
        "duplicates": stats.duplicates,
        "discarded": stats.discarded,
        "explored": stats.explored,
        "transitions": stats.transitions,
        "initial_cost": round(result.initial_cost, 3),
        "best_cost": round(result.best_cost, 3),
        "rcr": round(result.rcr, 4),
        "completed": result.completed,
        "runtime_sec": round(elapsed, 3),
        "cost_over_time": _downsample(result.cost_history),
    }


def run_benchmark(strategies, workers: int = 1) -> dict:
    queries, spec = _workload()
    payload: dict = {
        "experiment": EXPERIMENT,
        "scale": "full" if full_scale() else "quick",
        "workload": {
            "queries": spec["num_queries"],
            "atoms": spec["atoms"],
            "shape": spec["shape"].value,
            "commonality": spec["commonality"],
            "seed": spec["seed"],
        },
        "state_budget": STATE_BUDGET_FULL if full_scale() else STATE_BUDGET_QUICK,
        "workers": workers,
        "strategies": {},
        "incremental_costing": {},
    }
    if not full_scale():
        # The fixed pre-refactor reference (same machine as the
        # committed JSON) the quick-scale series is read against.
        payload["pre_refactor_reference"] = {
            "commit": "33cc1ef",
            "states_per_sec": dict(PRE_REFACTOR_STATES_PER_SEC),
        }
    for strategy in strategies:
        _run_strategy(strategy, queries, workers=workers)  # warm-up
        result, elapsed, model = _run_strategy(strategy, queries, workers=workers)
        entry = _strategy_payload(result, elapsed)
        entry["price_cache"] = dict(model.counters)
        if not full_scale():
            entry["speedup_vs_pre_refactor"] = round(
                entry["states_per_sec"] / PRE_REFACTOR_STATES_PER_SEC[strategy],
                3,
            )
        payload["strategies"][strategy] = entry

    # Incremental-costing ablation: same searches, memo-less cost model.
    # Pure state budgets on both sides, so the frontiers are identical
    # and a best-cost difference can only mean a costing bug. An
    # untimed warm-up run first: the process-global canonical-form
    # memos are shared by both configurations (state keys need them
    # either way), and whichever timed run goes first would otherwise
    # pay that one-time cost for both.
    for strategy in ABLATION_STRATEGIES:
        _run_strategy(strategy, queries, workers=workers, states_only=True)
        result, elapsed, _ = _run_strategy(
            strategy, queries, workers=workers, states_only=True
        )
        incremental = _strategy_payload(result, elapsed)
        baseline_result, baseline_elapsed, _ = _run_strategy(
            strategy, queries, incremental=False, workers=workers,
            states_only=True,
        )
        baseline = _strategy_payload(baseline_result, baseline_elapsed)
        payload["incremental_costing"][strategy] = {
            "baseline_states_per_sec": baseline["states_per_sec"],
            "incremental_states_per_sec": incremental["states_per_sec"],
            "speedup": round(
                incremental["states_per_sec"]
                / max(baseline["states_per_sec"], 1e-9),
                3,
            ),
            # Raw floats, not the JSON-rounded ones: the gate enforces
            # the memo layers' bitwise-equality contract.
            "best_cost_equal": baseline_result.best_cost == result.best_cost,
        }
    return payload


def _report(payload: dict) -> None:
    print(f"{EXPERIMENT} [{payload['scale']} scale, "
          f"state budget {payload['state_budget']}]")
    for name, entry in payload["strategies"].items():
        reference = entry.get("speedup_vs_pre_refactor")
        suffix = f"  vs-seed={reference:.2f}x" if reference is not None else ""
        print(
            f"  {name:<8} {entry['states_per_sec']:>9.1f} states/s  "
            f"created={entry['created']:>6} dup={entry['duplicates']:>6} "
            f"disc={entry['discarded']:>6} expl={entry['explored']:>6} "
            f"rcr={entry['rcr']:.3f}{suffix}"
        )
    for name, entry in payload["incremental_costing"].items():
        print(
            f"  incremental[{name}]: {entry['baseline_states_per_sec']:.1f} -> "
            f"{entry['incremental_states_per_sec']:.1f} states/s "
            f"(speedup {entry['speedup']:.2f}x, "
            f"best-cost-equal={entry['best_cost_equal']})"
        )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="View-selection search benchmark (standalone mode)."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: EXSTR + DFS on the quick workload "
                        "plus the incremental-costing ablation")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for parallel frontier "
                        "pricing (default 1 = serial)")
    parser.add_argument("--json", metavar="PATH", default="BENCH_selection.json",
                        help="write machine-readable results to PATH; pass "
                        "an empty string to skip "
                        "(default: BENCH_selection.json)")
    args = parser.parse_args(argv)

    strategies = ["exstr", "dfs"] if args.smoke else list(SEARCHES)
    payload = run_benchmark(strategies, workers=args.workers)
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2))
        print(f"wrote {args.json}")
    _report(payload)

    if args.smoke:
        failures = []
        for name, entry in payload["strategies"].items():
            if entry["best_cost"] > entry["initial_cost"]:
                failures.append(f"{name}: best cost above initial cost")
            if entry["created"] == 0:
                failures.append(f"{name}: no states created")
        for name, entry in payload["incremental_costing"].items():
            if not entry["best_cost_equal"]:
                failures.append(
                    f"{name}: incremental and full-recompute models disagree"
                )
            # Noise guard, not a perf target: the memoized model must not
            # be *substantially* slower than full recomputation. Gated
            # on EXSTR only — pricing dominates there, so the signal is
            # robust; GSTR discards ~2/3 of created states as duplicates
            # before pricing, and its ratio swings with scheduler/GC
            # noise on shared runners. (The per-strategy win over the
            # pre-refactor loops is tracked by speedup_vs_pre_refactor;
            # absolute cross-machine gating on it would be meaningless.)
            if name == "exstr" and entry["speedup"] < 0.7:
                failures.append(
                    f"{name}: incremental costing {entry['speedup']:.2f}x "
                    "slower than the full-recompute baseline"
                )
        if failures:
            for failure in failures:
                print(f"SMOKE FAIL: {failure}")
            return 1
        print("SMOKE OK: search gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
