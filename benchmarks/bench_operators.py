"""Operator-level layout microbenchmarks — row vs columnar batches.

The columnar-execution PR added a second batch representation
(``ColumnBatch``: one code sequence per schema column) next to the
row-batch contract, plus morsel-driven parallel scans. This module
measures both at the granularity the engine actually executes:

* **per operator**: every physical operator subtree appearing in the
  Figure 8 workload plans (scans, joins, projections) is drained twice
  — through ``batches()`` (row layout) and ``column_batches()``
  (columnar layout) — and reported as inclusive rows/sec per operator
  class. Inclusive like EXPLAIN ANALYZE: a join's drain includes its
  children, so class totals overlap by construction.
* **per query**: the same workload end-to-end through ``evaluate``
  with ``layout="columnar"`` (the default) vs ``layout="row"`` — the
  ``columnar_speedup_vs_row`` acceptance figure at operator scale.
* **morsel scans**: the workload at ``--workers 2`` twice — morsel
  threshold at ``inf`` (serial scans, but identical plans otherwise)
  vs ``0`` (every base scan fans out to the fork pool) — asserted
  answer-identical to the single-worker reference.

Results land in ``BENCH_operators.json``. ``--smoke`` is the CI gate:
it fails when the columnar layout falls behind the row layout on the
Figure 8 shapes (beyond a timer-noise margin), or when morsel-parallel
execution disagrees with serial answers or collapses outright
(single-core runners measure parity and non-collapse, not speedup).

Standalone::

    PYTHONPATH=src python -m benchmarks.bench_operators --smoke
"""

from __future__ import annotations

import time

try:
    import pytest
except ImportError:  # pragma: no cover - smoke mode without pytest
    pytest = None

from benchmarks.bench_table3_reformulation_workloads import reformulation_workloads
from benchmarks.support import barton, full_scale, report
from repro.engine import DEFAULT_BATCH_SIZE, plan_query
from repro.engine import planner
from repro.query.evaluation import evaluate
from repro.rdf.entailment import saturate

EXPERIMENT = "Operator layout microbenchmark: row vs columnar (ms, rows/sec)"


def _time_ms(callable_, repeats: int = 3) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        elapsed = (time.perf_counter() - start) * 1000.0
        best = elapsed if best is None else min(best, elapsed)
    return best


def _setup():
    store, schema = barton()
    queries = reformulation_workloads()["Q1"]
    saturated = saturate(store, schema)
    return {"queries": queries, "saturated": saturated}


if pytest is not None:

    @pytest.fixture(scope="module", name="setup")
    def setup_fixture():
        return _setup()


def _drain_rows(operator, size: int) -> int:
    total = 0
    for batch in operator.batches(size):
        total += len(batch)
    return total


def _drain_columns(operator, size: int) -> int:
    total = 0
    for batch in operator.column_batches(size):
        total += len(batch)
    return total


def _walk(operator):
    yield operator
    for child in operator._children():
        yield from _walk(child)


def _operator_payload(setup, repeats: int = 3, size: int = DEFAULT_BATCH_SIZE):
    """Inclusive per-operator-class drain timings across the workload.

    Each subtree is drained through both layouts; the two row counts
    must agree (same multiset by the columnar contract, so same
    cardinality). Timings aggregate per operator class name.
    """
    saturated = setup["saturated"]
    classes: dict[str, dict[str, float]] = {}
    for query in setup["queries"]:
        root = plan_query(query, saturated)
        for operator in _walk(root):
            name = type(operator).__name__
            rows = _drain_rows(operator, size)
            columnar_rows = _drain_columns(operator, size)
            assert columnar_rows == rows, (
                f"{name} produced {columnar_rows} columnar rows "
                f"vs {rows} row-layout rows"
            )
            row_ms = _time_ms(lambda: _drain_rows(operator, size), repeats)
            col_ms = _time_ms(lambda: _drain_columns(operator, size), repeats)
            entry = classes.setdefault(
                name, {"operators": 0, "rows": 0, "row_ms": 0.0, "columnar_ms": 0.0}
            )
            entry["operators"] += 1
            entry["rows"] += rows
            entry["row_ms"] += row_ms
            entry["columnar_ms"] += col_ms
    for entry in classes.values():
        row_s, col_s = entry["row_ms"] / 1000.0, entry["columnar_ms"] / 1000.0
        entry["row_rows_per_s"] = round(entry["rows"] / row_s) if row_s else None
        entry["columnar_rows_per_s"] = (
            round(entry["rows"] / col_s) if col_s else None
        )
        entry["columnar_speedup"] = (
            round(entry["row_ms"] / entry["columnar_ms"], 2)
            if entry["columnar_ms"]
            else None
        )
        entry["row_ms"] = round(entry["row_ms"], 4)
        entry["columnar_ms"] = round(entry["columnar_ms"], 4)
    return classes


def _query_payload(setup, repeats: int = 3):
    """End-to-end layout ablation: evaluate() columnar vs row."""
    saturated = setup["saturated"]
    queries = {}
    for query in setup["queries"]:
        columnar = evaluate(query, saturated, layout="columnar")
        assert columnar == evaluate(query, saturated, layout="row")
        queries[query.name] = {
            "answers": len(columnar),
            "columnar_ms": round(
                _time_ms(
                    lambda: evaluate(query, saturated, layout="columnar"), repeats
                ),
                4,
            ),
            "row_ms": round(
                _time_ms(
                    lambda: evaluate(query, saturated, layout="row"), repeats
                ),
                4,
            ),
        }
    return queries


def _morsel_payload(setup, workers: int = 2, repeats: int = 3):
    """Morsel-driven scans isolated from every other parallel knob.

    Both timed series run at the *same* worker count, so partitioned
    joins and plan shapes are identical; only the morsel eligibility
    threshold differs — ``inf`` (serial scans) vs ``0`` (every base
    scan fans out to the pool). The plan cache is flushed between the
    two so the threshold actually recompiles the plans. Answers are
    asserted identical to the single-worker reference throughout.
    """
    saturated = setup["saturated"]
    queries = setup["queries"]

    def run(n_workers=workers):
        return [
            evaluate(query, saturated, engine="hash", workers=n_workers,
                     pushdown=False)
            for query in queries
        ]

    def flush():
        saturated._engine_plan_cache = None

    reference = run(1)
    saved = planner.MORSEL_PARALLEL_THRESHOLD
    planner.MORSEL_PARALLEL_THRESHOLD = float("inf")
    try:
        flush()
        serial_scans = run()
        serial_ms = _time_ms(run, repeats)
        planner.MORSEL_PARALLEL_THRESHOLD = 0
        flush()
        morsel_scans = run()
        morsel_ms = _time_ms(run, repeats)
    finally:
        planner.MORSEL_PARALLEL_THRESHOLD = saved
        flush()
    return {
        "workers": workers,
        "parity": reference == serial_scans == morsel_scans,
        "serial_ms": round(serial_ms, 4),
        "morsel_ms": round(morsel_ms, 4),
        "speedup": round(serial_ms / morsel_ms, 2) if morsel_ms else None,
    }


def _json_payload(setup, operators, queries, morsel):
    columnar_total = sum(entry["columnar_ms"] for entry in queries.values())
    row_total = sum(entry["row_ms"] for entry in queries.values())
    return {
        "experiment": "operator_microbench",
        "scale": "full" if full_scale() else "quick",
        "database_triples": len(setup["saturated"]),
        "batch_size": DEFAULT_BATCH_SIZE,
        "operators": operators,
        "queries": queries,
        "columnar_ms": round(columnar_total, 4),
        "row_ms": round(row_total, 4),
        "columnar_speedup_vs_row": (
            round(row_total / columnar_total, 2) if columnar_total else None
        ),
        "morsel": morsel,
    }


def _report_payload(payload, emit=report):
    for name, entry in sorted(payload["operators"].items()):
        emit(
            EXPERIMENT,
            f"{name}: {entry['rows']} rows  "
            f"row={entry['row_ms']:8.2f} ms ({entry['row_rows_per_s']}/s)  "
            f"columnar={entry['columnar_ms']:8.2f} ms "
            f"({entry['columnar_rows_per_s']}/s)  "
            f"speedup={entry['columnar_speedup']}x",
        )
    emit(
        EXPERIMENT,
        f"workload: columnar {payload['columnar_ms']:.2f} ms vs "
        f"row {payload['row_ms']:.2f} ms "
        f"({payload['columnar_speedup_vs_row']}x)",
    )
    morsel = payload["morsel"]
    emit(
        EXPERIMENT,
        f"morsel scans ({morsel['workers']} workers): "
        f"{morsel['morsel_ms']:.2f} ms vs serial scans "
        f"{morsel['serial_ms']:.2f} ms "
        f"({morsel['speedup']}x, parity={morsel['parity']})",
    )


def test_operator_layouts(benchmark, setup):
    payload = benchmark.pedantic(
        lambda: _json_payload(
            setup,
            _operator_payload(setup),
            _query_payload(setup),
            _morsel_payload(setup),
        ),
        rounds=1,
        iterations=1,
    )
    _report_payload(payload)
    assert payload["morsel"]["parity"]


def main(argv=None) -> int:
    """Standalone entry point; ``--smoke`` is the CI layout gate."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Operator-level row-vs-columnar microbenchmark."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="layout parity + regression gate for CI")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="worker processes for the morsel series "
                        "(default 2)")
    parser.add_argument("--json", metavar="PATH", default="BENCH_operators.json",
                        help="write machine-readable results to PATH; pass "
                        "an empty string to skip "
                        "(default: BENCH_operators.json)")
    args = parser.parse_args(argv)

    setup = _setup()
    # Smoke mode gates on sub-millisecond timings; best-of-9 keeps one
    # noisy repeat on a shared CI runner from tripping the gate.
    repeats = 9 if args.smoke else 3
    payload = _json_payload(
        setup,
        _operator_payload(setup, repeats=repeats),
        _query_payload(setup, repeats=repeats),
        _morsel_payload(setup, workers=args.workers, repeats=repeats),
    )
    if args.json:
        import json
        from pathlib import Path

        Path(args.json).write_text(json.dumps(payload, indent=2))
        print(f"wrote {args.json}")

    def emit(_experiment, line):
        print(line)

    print(EXPERIMENT)
    _report_payload(payload, emit=emit)

    if args.smoke:
        # Layout gate: the columnar default must not fall behind the
        # row layout on the Figure 8 shapes. The 1.25x margin absorbs
        # timer noise on sub-millisecond per-query totals while still
        # catching a real layout regression.
        if payload["columnar_ms"] > payload["row_ms"] * 1.25:
            print(
                f"SMOKE FAIL: columnar layout ({payload['columnar_ms']:.2f} ms) "
                f"slower than row layout ({payload['row_ms']:.2f} ms)"
            )
            return 1
        print(
            f"SMOKE OK: columnar {payload['columnar_ms']:.2f} ms <= "
            f"row {payload['row_ms']:.2f} ms * 1.25"
        )
        morsel = payload["morsel"]
        # Morsel gate: answers must be identical, and morsel-parallel
        # execution must not collapse. Single-core CI runners cannot
        # show a speedup (fork-pool scans compete for one core), so the
        # gate bounds the overhead instead of demanding a win; the
        # committed full-scale JSON records the measured speedup.
        if not morsel["parity"]:
            print("SMOKE FAIL: morsel-parallel answers diverge from serial")
            return 1
        if morsel["morsel_ms"] > morsel["serial_ms"] * 10.0:
            print(
                f"SMOKE FAIL: morsel scans ({morsel['morsel_ms']:.2f} ms) "
                f"collapsed vs serial ({morsel['serial_ms']:.2f} ms)"
            )
            return 1
        print(
            f"SMOKE OK: morsel scans {morsel['morsel_ms']:.2f} ms "
            f"(serial {morsel['serial_ms']:.2f} ms, parity)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
