"""Ablation — reformulation output growth (Theorem 4.1).

Theorem 4.1 bounds |Reformulate(q, S)| by an expression polynomial in
the schema size and exponential in the number of query atoms. This
ablation measures the actual growth on the Barton schema as the query
acquires more entailment-sensitive atoms, and checks the bound.
"""

from __future__ import annotations

import pytest

from benchmarks.support import barton, report
from repro.datagen.barton import BARTON_NS
from repro.query.cq import Atom, ConjunctiveQuery, Variable
from repro.rdf.terms import URI
from repro.rdf.vocabulary import RDF_TYPE
from repro.reformulation.reformulate import reformulate, reformulation_bound

EXPERIMENT = "Ablation: reformulation growth in query size (Theorem 4.1)"


def chain_query(atoms: int) -> ConjunctiveQuery:
    """A chain alternating a subproperty-rich property and rdf:type."""
    body = []
    for index in range(atoms):
        subject = Variable(f"X{index}")
        if index % 2 == 0:
            body.append(Atom(subject, URI(BARTON_NS + "relatedTo"), Variable(f"X{index+1}")))
        else:
            body.append(Atom(subject, RDF_TYPE, Variable(f"X{index+1}")))
    return ConjunctiveQuery((Variable("X0"),), tuple(body), name="growth")


@pytest.mark.parametrize("atoms", [1, 2, 3])
def test_ablation_reformulation_growth(benchmark, atoms):
    _, schema = barton()
    query = chain_query(atoms)

    def run():
        return reformulate(query, schema)

    union = benchmark.pedantic(run, rounds=1, iterations=1)
    bound = reformulation_bound(schema, query)
    assert len(union) <= bound
    report(
        EXPERIMENT,
        f"m={atoms} atoms: |Reformulate(q,S)|={len(union):>6}  bound={bound:.2e}",
    )
