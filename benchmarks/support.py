"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation section. Paper-shaped result rows are registered through
:func:`report`; ``benchmarks/conftest.py`` prints them in the terminal
summary so they appear alongside pytest-benchmark's timing table.

Scale knob: set ``REPRO_BENCH_SCALE=full`` for the paper's full grids
(slow); the default ``quick`` grids preserve every series' shape at a
fraction of the runtime.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.datagen import BartonConfig, generate_barton
from repro.selection.costs import CostModel, calibrate_maintenance_weight
from repro.selection.search import SearchBudget
from repro.selection.state import ViewNamer, initial_state
from repro.selection.statistics import ZipfStatistics
from repro.selection.transitions import TransitionEnumerator
from repro.workload import (
    QueryShape,
    SatisfiableWorkloadGenerator,
    WorkloadGenerator,
    WorkloadSpec,
)

#: Paper-shaped output rows, keyed by experiment id.
RESULTS: dict[str, list[str]] = {}


def report(experiment: str, line: str) -> None:
    """Register one output row for the terminal summary."""
    RESULTS.setdefault(experiment, []).append(line)


def full_scale() -> bool:
    """True when the full (slow) experiment grids were requested."""
    return os.environ.get("REPRO_BENCH_SCALE", "quick") == "full"


@lru_cache(maxsize=1)
def barton():
    """The shared synthetic Barton catalog (store, schema)."""
    config = BartonConfig(
        num_triples=40_000 if full_scale() else 12_000,
        num_entities=6_000 if full_scale() else 2_000,
        seed=42,
    )
    return generate_barton(config)


def synthetic_workload(
    num_queries: int,
    atoms: int,
    shape: QueryShape,
    commonality: str,
    seed: int = 0,
):
    """A generator-produced workload (Sections 6.2 and 6.4)."""
    spec = WorkloadSpec(num_queries, atoms, shape, commonality)
    return WorkloadGenerator(seed=seed).generate(spec)


def satisfiable_workload(
    num_queries: int,
    atoms: int,
    shape: QueryShape,
    commonality: str,
    seed: int = 0,
):
    """A workload satisfiable on the shared Barton catalog (Section 6.5)."""
    store, _ = barton()
    spec = WorkloadSpec(num_queries, atoms, shape, commonality, constant_probability=0.4)
    return SatisfiableWorkloadGenerator(store, seed=seed).generate(spec)


def bench_statistics():
    """The default dataset-free statistics: skewed, deterministic."""
    return ZipfStatistics(seed=7)


def barton_statistics():
    """Exact statistics of the shared Barton catalog."""
    from repro.selection.statistics import StoreStatistics

    store, _ = barton()
    return StoreStatistics(store)


def search_setup(queries, statistics=None, vb_mode: str = "disjoint"):
    """(initial state, cost model, enumerator) ready for a strategy.

    cs=cr=1 and f=2 as in Section 6; cm is calibrated per workload so
    that cm·VMC(S0) stays comparable to the other cost components, which
    is the paper's stated methodology ("we set the value of cm taking
    into account the database size and the average number of atoms").
    """
    namer = ViewNamer()
    enumerator = TransitionEnumerator(namer, vb_mode=vb_mode)
    statistics = statistics or barton_statistics()
    state = initial_state(queries, namer)
    weights = calibrate_maintenance_weight(state, statistics, ratio=2.0)
    model = CostModel(statistics, weights)
    return state, model, enumerator


def budget(seconds: float, max_states: int | None = None) -> SearchBudget:
    """A stoptime budget, scaled up under REPRO_BENCH_SCALE=full."""
    factor = 4.0 if full_scale() else 1.0
    return SearchBudget(time_limit=seconds * factor, max_states=max_states)
