"""Ablation — sensitivity of the recommended state to the cost weights.

Section 3.3 makes the weights user-facing knobs: "if storage space is
cheap cs can be set very low, if the triple table is rarely updated cm
can be reduced etc." This ablation runs the same workload under four
weightings and reports how the recommended view set changes:

* balanced (the Section 6 defaults, cm calibrated),
* storage-dominated (cs high): fewer/more selective views,
* maintenance-dominated (cm high): many small views (low f^len),
* evaluation-dominated (cr high): views close to the queries themselves.
"""

from __future__ import annotations

import pytest

from benchmarks.support import (
    barton_statistics,
    budget,
    report,
    satisfiable_workload,
)
from repro.selection.costs import CostModel, CostWeights, calibrate_maintenance_weight
from repro.selection.search import dfs_search
from repro.selection.state import ViewNamer, initial_state
from repro.selection.transitions import TransitionEnumerator
from repro.workload import QueryShape

EXPERIMENT = "Ablation: cost-weight sensitivity (DFS-AVF-STV, same workload)"


def weightings(statistics, initial):
    balanced = calibrate_maintenance_weight(initial, statistics, ratio=2.0)
    return {
        "balanced": balanced,
        "storage-heavy": CostWeights(cs=100.0, cr=1.0, cm=balanced.cm),
        "maintenance-heavy": CostWeights(cs=1.0, cr=1.0, cm=balanced.cm * 100.0),
        "evaluation-heavy": CostWeights(cs=0.01, cr=100.0, cm=balanced.cm * 0.01),
    }


@pytest.mark.parametrize(
    "label", ["balanced", "storage-heavy", "maintenance-heavy", "evaluation-heavy"]
)
def test_ablation_cost_weights(benchmark, label):
    queries = satisfiable_workload(4, 6, QueryShape.STAR, "high", seed=12)
    statistics = barton_statistics()
    weights = weightings(statistics, initial_state(queries))[label]

    def run():
        namer = ViewNamer()
        enumerator = TransitionEnumerator(namer)
        state = initial_state(queries, namer)
        model = CostModel(statistics, weights)
        return dfs_search(state, model, enumerator, budget(2.0))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        EXPERIMENT,
        f"{label:<18} rcr={result.rcr:.3f} views={len(result.best_state.views):>2} "
        f"avg_atoms/view={result.average_view_atoms():.1f} "
        f"total_atoms={result.best_state.total_atoms():>3}",
    )
