"""Figure 5 — impact of the AVF and STV heuristics on the search space.

Paper setup: a tiny workload of 2 star queries with 4 atoms each, low
commonality, DFS strategy, with heuristics NONE / AVF / STV / AVF-STV.
Reported: created, duplicate, discarded and explored state counts.

Expected shape: duplicates are a large fraction of created states; AVF
lowers the duplicate count (states with identical views are fused away
immediately); STV discards a significant number of states; AVF-STV
combines both. All configurations reach the same best state.

The paper ran each configuration to completion (~9M created states on a
cluster); the full space does not complete at Python speed, so every
configuration gets the same created-states budget and the counts are
compared at equal budget — the relative shape is preserved.
"""

from __future__ import annotations

import pytest

from benchmarks.support import full_scale, report, satisfiable_workload, search_setup
from repro.selection.search import SearchBudget, dfs_search
from repro.workload import QueryShape

CONFIGURATIONS = {
    "NONE": dict(use_avf=False, use_stopvar=False),
    "AVF": dict(use_avf=True, use_stopvar=False),
    "STV": dict(use_avf=False, use_stopvar=True),
    "AVF-STV": dict(use_avf=True, use_stopvar=True),
}

EXPERIMENT = (
    "Figure 5: impact of heuristics on the search "
    "(2 star queries x 4 atoms, low commonality, DFS)"
)


@pytest.fixture(scope="module")
def workload():
    return satisfiable_workload(2, 4, QueryShape.STAR, "low", seed=5)


@pytest.mark.parametrize("label", list(CONFIGURATIONS))
def test_fig5_heuristic_state_counts(benchmark, label, workload):
    flags = CONFIGURATIONS[label]
    state_budget = SearchBudget(
        max_states=120_000 if full_scale() else 25_000
    )

    def run():
        state, model, enumerator = search_setup(workload, vb_mode="overlapping")
        return dfs_search(state, model, enumerator, state_budget, **flags)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result.stats
    report(
        EXPERIMENT,
        f"{label:<8} created={stats.created:>7} duplicates={stats.duplicates:>7} "
        f"discarded={stats.discarded:>7} explored={stats.explored:>7} "
        f"best_cost={result.best_cost:.1f}",
    )
