"""Figure 6 — relative cost reduction on large workloads.

Paper setup: workloads of 5/10/20/50/100/200 queries with 10 atoms each;
shapes chain, random-sparse, random-dense, star, mixed; high and low
commonality; DFS-AVF-STV and GSTR-AVF-STV under a stoptime condition.
Also reports the average atoms per recommended view (Section 6.4 quotes
~3.2 for DFS and ~6.5 for GSTR).

Expected shape: DFS reaches high rcr overall; GSTR's rcr is generally
smaller; "easier" shapes (chains, sparse graphs) get higher rcr than
stars and dense graphs; high commonality beats low commonality.

The paper's runs had a 3-hour stoptime each; at Python speed the eager
searches cannot even expand the 200-query initial state, so both
strategies run in their work-queue scaling mode: DFS as the
first-improvement descent (``descent_search``), GSTR as the same descent
constrained to one stratum at a time (VB*, then SC*, then JC*, fusions
folded in) — keeping GSTR's defining trait of carrying a single state
between strata. Time budgets scale mildly with the workload.
"""

from __future__ import annotations

import pytest

from benchmarks.support import (
    bench_statistics,
    budget,
    full_scale,
    report,
    search_setup,
    synthetic_workload,
)
from repro.selection.search import descent_search
from repro.selection.transitions import TransitionKind
from repro.workload import QueryShape


def _dfs_descent(state, model, enumerator, run_budget):
    return descent_search(state, model, enumerator, run_budget)


def _gstr_descent(state, model, enumerator, run_budget):
    """Stratified greedy: one stratum at a time, single carried state."""
    from repro.selection.search import SearchBudget

    remaining = run_budget.time_limit or 0.0
    result = None
    for kind in (TransitionKind.VB, TransitionKind.SC, TransitionKind.JC):
        slice_budget = SearchBudget(time_limit=max(remaining / 3.0, 0.1))
        step = descent_search(
            state, model, enumerator, slice_budget, kinds=(kind,)
        )
        state = step.best_state
        if result is None:
            result = step
        else:
            result.best_state = step.best_state
            result.best_cost = min(result.best_cost, step.best_cost)
            result.stats.created += step.stats.created
            result.stats.explored += step.stats.explored
    return result


STRATEGIES = {
    "DFS-AVF-STV": _dfs_descent,
    "GSTR-AVF-STV": _gstr_descent,
}

SHAPES = [
    ("chain", QueryShape.CHAIN),
    ("random-sparse", QueryShape.RANDOM_SPARSE),
    ("random-dense", QueryShape.RANDOM_DENSE),
    ("star", QueryShape.STAR),
    ("mixed", QueryShape.MIXED),
]

EXPERIMENT = (
    "Figure 6: relative cost reduction on large workloads "
    "(10 atoms/query, stoptime search)"
)


def workload_sizes():
    return (5, 10, 20, 50, 100, 200) if full_scale() else (5, 20, 50, 200)


@pytest.mark.parametrize("commonality", ["high", "low"])
@pytest.mark.parametrize("strategy", list(STRATEGIES))
def test_fig6_rcr(benchmark, strategy, commonality):
    search = STRATEGIES[strategy]

    def run():
        rows = []
        for label, shape in SHAPES:
            for size in workload_sizes():
                queries = synthetic_workload(size, 10, shape, commonality, seed=6)
                # Dataset-free workloads are priced with the skewed
                # synthetic statistics (their vocabulary is not Barton's).
                state, model, enumerator = search_setup(
                    queries, statistics=bench_statistics()
                )
                result = search(
                    state, model, enumerator, budget(0.5 + 0.04 * size)
                )
                rows.append((label, size, result.rcr, result.average_view_atoms()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, size, rcr, atoms in rows:
        report(
            EXPERIMENT,
            f"{strategy:<13} {commonality:<4} {label:<14} |Q|={size:>3} "
            f"rcr={rcr:.3f} avg_atoms/view={atoms:.1f}",
        )
