"""Served QPS — server mode under concurrent client load.

Serves the shared synthetic Barton catalog as a read-only snapshot and
replays the Q1 reformulation workload (each query repeated, shuffled)
through concurrent client connections, at 1, 2 and 4 worker processes.
Reported per series: sustained queries/second and client-observed
p50/p95/p99 latency. Every served answer is verified against
single-process ``run_query`` evaluation **during** the measurement —
a QPS figure is only ever recorded for correct answers — and the
server's merged metrics must reconcile: the queries the server counted
equal the queries its workers counted.

On a single-core runner the worker series measure dispatch overhead
rather than speed-up; the shape to expect there is flat-ish QPS with
no errors. With real cores, QPS should rise with workers until the
snapshot's page cache and the dispatcher saturate.

Standalone smoke mode (the CI gate)::

    PYTHONPATH=src python -m benchmarks.bench_serve --smoke

fails on any error or answer mismatch, on a metrics reconciliation
gap, or on sustained QPS below the floor (conservative: CI runners
share cores).
"""

from __future__ import annotations

import os
import tempfile

try:
    import pytest
except ImportError:  # pragma: no cover - smoke mode without pytest
    pytest = None

from benchmarks.bench_table3_reformulation_workloads import (
    reformulation_workloads,
)
from benchmarks.support import barton, full_scale, report
from repro.engine import run_query
from repro.rdf.store import TripleStore
from repro.server import Server, ServerConfig, replay
from repro.workload.generator import replay_schedule

EXPERIMENT = "Served QPS: concurrent clients over one snapshot"

WORKER_SERIES = (1, 2, 4)

#: Sustained-QPS floor of the CI smoke gate. Deliberately conservative:
#: CI runners can be single-core and shared, and the gate's job is to
#: catch the server collapsing (serialization, hangs, respawn storms),
#: not to benchmark the runner.
SMOKE_QPS_FLOOR = 25.0


def _setup():
    """(snapshot path, distinct query texts, serial reference answers)."""
    store, _schema = barton()
    queries = reformulation_workloads()["Q1"]
    texts = [str(query) for query in queries]
    directory = tempfile.mkdtemp(prefix="repro-bench-serve-")
    path = os.path.join(directory, "barton.snapshot")
    store.save(path)
    reference_store = TripleStore.open(path, backend="sqlite", read_only=True)
    try:
        reference = {
            text: frozenset(run_query(query, reference_store))
            for text, query in zip(texts, queries)
        }
    finally:
        reference_store.close()
    return path, texts, reference


def _series(path, texts, reference, workers, *, clients, repeat, seed=0):
    """One measured point: serve at ``workers`` workers, replay, verify."""
    schedule = replay_schedule(texts, repeats=repeat, seed=seed)
    config = ServerConfig(workers=workers, window_ms=2.0)
    with Server(path, config) as server:
        outcome = replay(
            server.address, server.authkey, schedule,
            clients=clients, reference=reference,
        )
        counters = server.metrics_snapshot()["counters"]
    summary = outcome.summary()
    summary["workers"] = workers
    summary["reconciliation"] = {
        "server_queries": counters.get("server.queries", 0),
        "worker_queries": counters.get("serve.worker.queries", 0),
        "worker_crashes": counters.get("server.worker_crashes", 0),
    }
    return summary


def _measure(repeat=None, clients=4):
    path, texts, reference = _setup()
    if repeat is None:
        repeat = 40 if full_scale() else 8
    rows = [
        _series(path, texts, reference, workers,
                clients=clients, repeat=repeat)
        for workers in WORKER_SERIES
    ]
    return path, texts, rows


def _json_payload(texts, rows, *, clients):
    """Machine-readable results (written to ``BENCH_serve.json``)."""
    store, _ = barton()
    return {
        "experiment": "serve",
        "scale": "full" if full_scale() else "quick",
        "snapshot_triples": len(store),
        "distinct_queries": len(texts),
        "clients": clients,
        "window_ms": 2.0,
        "verified_against_serial": True,
        "series": rows,
    }


def _report_rows(rows, emit=report):
    for row in rows:
        latency = row["latency_ms"]
        emit(
            EXPERIMENT,
            f"workers={row['workers']}: {row['qps']:>8.1f} qps   "
            f"p50={latency['p50']:.2f}ms p95={latency['p95']:.2f}ms "
            f"p99={latency['p99']:.2f}ms   errors={row['errors']} "
            f"mismatches={row['mismatches']}",
        )


if pytest is not None:

    def test_serve_qps(benchmark):
        _path, texts, rows = benchmark.pedantic(
            _measure, rounds=1, iterations=1
        )
        _report_rows(rows)
        for row in rows:
            assert row["errors"] == 0
            assert row["mismatches"] == 0
            reconciliation = row["reconciliation"]
            assert (
                reconciliation["server_queries"]
                == reconciliation["worker_queries"]
            )


def main(argv=None) -> int:
    """Standalone entry point; ``--smoke`` is the CI serve gate."""
    import argparse
    import json
    from pathlib import Path

    parser = argparse.ArgumentParser(
        description="Served-QPS benchmark (standalone mode)."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: fail on any error/mismatch, "
                        "reconciliation gap, or QPS below the floor")
    parser.add_argument("--clients", type=int, default=4, metavar="N",
                        help="concurrent client connections (default 4)")
    parser.add_argument("--repeat", type=int, default=None, metavar="N",
                        help="times each query appears in the schedule "
                        "(default: 8 quick / 40 full)")
    parser.add_argument("--qps-floor", type=float, default=SMOKE_QPS_FLOOR,
                        help="smoke gate's sustained-QPS floor "
                        f"(default {SMOKE_QPS_FLOOR})")
    parser.add_argument("--json", metavar="PATH", default="BENCH_serve.json",
                        help="write machine-readable results to PATH; "
                        "empty string to skip (default: BENCH_serve.json)")
    args = parser.parse_args(argv)

    _path, texts, rows = _measure(repeat=args.repeat, clients=args.clients)
    if args.json:
        Path(args.json).write_text(
            json.dumps(
                _json_payload(texts, rows, clients=args.clients), indent=2
            )
            + "\n"
        )
        print(f"wrote {args.json}")

    def emit(_experiment, line):
        print(line)

    print(EXPERIMENT)
    _report_rows(rows, emit=emit)

    if args.smoke:
        failures = []
        for row in rows:
            if row["errors"]:
                failures.append(
                    f"workers={row['workers']}: {row['errors']} errors"
                )
            if row["mismatches"]:
                failures.append(
                    f"workers={row['workers']}: {row['mismatches']} "
                    "answers differed from serial evaluation"
                )
            reconciliation = row["reconciliation"]
            if (
                reconciliation["server_queries"]
                != reconciliation["worker_queries"]
            ):
                failures.append(
                    f"workers={row['workers']}: server counted "
                    f"{reconciliation['server_queries']} queries but "
                    f"workers counted {reconciliation['worker_queries']}"
                )
        best_qps = max(row["qps"] for row in rows)
        if best_qps < args.qps_floor:
            failures.append(
                f"best series {best_qps:.1f} qps below the "
                f"{args.qps_floor:.0f} qps floor"
            )
        if failures:
            for failure in failures:
                print(f"SMOKE FAIL: {failure}")
            return 1
        print(
            f"SMOKE OK: all series verified, best {best_qps:.1f} qps >= "
            f"{args.qps_floor:.0f} qps floor"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
