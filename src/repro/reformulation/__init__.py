"""RDF query reformulation (Section 4): Algorithm 1 and the
pre-/post-reformulation view-selection workflows of Section 4.3.
"""

from repro.reformulation.reformulate import (
    reformulate,
    reformulation_bound,
)
from repro.reformulation.workflows import (
    post_reformulation_views,
    pre_reformulation_initial_state,
    reformulate_workload,
)

__all__ = [
    "reformulate",
    "reformulation_bound",
    "post_reformulation_views",
    "pre_reformulation_initial_state",
    "reformulate_workload",
]
