"""Algorithm 1: ``Reformulate(q, S)``.

Reformulates a conjunctive RDF query against an RDF Schema into a union
of conjunctive queries whose evaluation on the *plain* database equals
the original query's evaluation on the *saturated* database
(Theorem 4.2). The six rules of Figure 2 are applied backward to a
fixpoint:

1. ``t(s, rdf:type, c2)``  ⇐ ``t(s, rdf:type, c1)`` for ``c1 ⊑ c2``
2. ``t(s, p2, o)``         ⇐ ``t(s, p1, o)`` for ``p1 ⊑p p2``
3. ``t(s, rdf:type, c)``   ⇐ ``∃X t(s, p, X)`` for ``domain(p) = c``
4. ``t(o, rdf:type, c)``   ⇐ ``∃X t(X, p, o)`` for ``range(p) = c``
5. ``t(s, rdf:type, X)``   ⇐ ``t(s, rdf:type, ci)``, binding ``X = ci``
   for every class ``ci`` of S
6. ``t(s, X, o)``          ⇐ ``t(s, pi, o)`` binding ``X = pi`` for
   every property ``pi`` of S, plus ``t(s, rdf:type, o)`` binding
   ``X = rdf:type``

Rules 5 and 6 substitute the bound variable *everywhere* in the query
(the σ of Algorithm 1), so joins on that variable are retained and head
variables may become constants (as in Table 2).

Generated queries are deduplicated by canonical form, which both keeps
the output small and guarantees termination in the presence of the fresh
existential variables introduced by rules 3 and 4.
"""

from __future__ import annotations

from repro.query.cq import Atom, ConjunctiveQuery, UnionQuery, Variable, fresh_variable
from repro.query.containment import canonical_form
from repro.rdf import vocabulary
from repro.rdf.schema import RDFSchema
from repro.rdf.terms import URI


def reformulation_bound(schema: RDFSchema, query: ConjunctiveQuery) -> int:
    """An upper bound on the reformulation size, after Theorem 4.1.

    The paper states ``(2|S|²)^m``. For degenerate schema sizes (one or
    two statements) that asymptotic form undercounts by a constant — one
    statement already mentions two classes, and the original query is a
    disjunct too — so we use ``(2(|S|+1)²)^m``, which dominates the
    paper's bound for all |S| ≥ 2 and is safe for tiny schemas.
    """
    size = len(schema) + 1
    return (2 * size * size) ** len(query.atoms)


def _rule_consequences(query: ConjunctiveQuery, schema: RDFSchema):
    """All one-step backward rule applications on ``query``."""
    rdf_type = vocabulary.RDF_TYPE
    for index, atom in enumerate(query.atoms):
        s, p, o = atom
        if isinstance(p, Variable):
            # Rule 6: bind the property variable to every schema property
            # and to rdf:type (σ retains the joins on that variable).
            for prop in sorted(schema.properties, key=lambda u: u.value):
                yield query.substitute({p: prop})
            yield query.substitute({p: rdf_type})
            continue
        if p == rdf_type:
            if isinstance(o, Variable):
                # Rule 5: bind the class variable to every schema class.
                for cls in sorted(schema.classes, key=lambda u: u.value):
                    yield query.substitute({o: cls})
                continue
            if isinstance(o, URI):
                # Rule 1: a subclass instance is an instance of the class.
                for sub in sorted(schema.direct_subclasses(o), key=lambda u: u.value):
                    yield query.replace_atom(index, Atom(s, rdf_type, sub))
                # Rule 3: a subject of p is typed by p's domain.
                for prop in sorted(
                    schema.properties_with_domain(o), key=lambda u: u.value
                ):
                    fresh = fresh_variable("R")
                    yield query.replace_atom(index, Atom(s, prop, fresh))
                # Rule 4: an object of p is typed by p's range. The typed
                # term moves to the object position of the new atom; a
                # literal there could never have been a triple subject,
                # so variables carry a non-literal binding restriction.
                if not _is_literal(s):
                    for prop in sorted(
                        schema.properties_with_range(o), key=lambda u: u.value
                    ):
                        fresh = fresh_variable("R")
                        rewritten = query.replace_atom(index, Atom(fresh, prop, s))
                        if isinstance(s, Variable):
                            rewritten = rewritten.with_non_literal([s])
                        yield rewritten
            continue
        if isinstance(p, URI):
            # Rule 2: a subproperty assertion implies the superproperty's.
            for sub in sorted(schema.direct_subproperties(p), key=lambda u: u.value):
                yield query.replace_atom(index, Atom(s, sub, o))


def _is_literal(term) -> bool:
    from repro.rdf.terms import Literal

    return isinstance(term, Literal)


def reformulate(query: ConjunctiveQuery, schema: RDFSchema) -> UnionQuery:
    """Algorithm 1: the full reformulation of ``query`` w.r.t. ``schema``.

    The output always contains the original query; evaluation of the
    union on a plain store equals evaluation of ``query`` on the
    saturated store (Theorem 4.2, property-tested in the test suite).
    """
    seen: dict[tuple, ConjunctiveQuery] = {canonical_form(query): query}
    worklist: list[ConjunctiveQuery] = [query]
    while worklist:
        current = worklist.pop()
        for candidate in _rule_consequences(current, schema):
            key = canonical_form(candidate)
            if key in seen:
                continue
            seen[key] = candidate
            worklist.append(candidate)
    disjuncts = tuple(seen.values())
    return UnionQuery(disjuncts, name=query.name)
