"""Pre- and post-reformulation view-selection workflows (Section 4.3).

Three ways to account for RDF entailment during view selection:

* **Saturation** — run the plain search against a saturated store
  (no special support needed: pass ``StoreStatistics(saturate(store))``).
* **Pre-reformulation** — reformulate every workload query first; the
  initial state has one view per disjunct and union rewritings. The
  search space explodes with the workload (Theorem 4.1), which is
  exactly what Figure 7 measures.
* **Post-reformulation** — search the original workload with
  reformulation-aware statistics
  (:class:`repro.selection.statistics.ReformulationAwareStatistics`),
  then reformulate only the *recommended views* before materializing
  them. Theorem 4.2 guarantees the materialized reformulated views on
  the plain store equal the plain views on the saturated store.
"""

from __future__ import annotations

from typing import Sequence

from repro.query.cq import ConjunctiveQuery, UnionQuery
from repro.rdf.schema import RDFSchema
from repro.reformulation.reformulate import reformulate
from repro.selection.state import State, ViewNamer, initial_state_from_unions


def reformulate_workload(
    queries: Sequence[ConjunctiveQuery], schema: RDFSchema
) -> list[UnionQuery]:
    """Reformulate every workload query (the ``Qr`` of Table 3)."""
    return [reformulate(query, schema) for query in queries]


def pre_reformulation_initial_state(
    queries: Sequence[ConjunctiveQuery],
    schema: RDFSchema,
    namer: ViewNamer | None = None,
) -> State:
    """The pre-reformulation initial state S0(Qr).

    Every disjunct of every reformulated query becomes a view, and each
    query's rewriting is the union of its disjunct scans.
    """
    unions = reformulate_workload(queries, schema)
    return initial_state_from_unions(unions, namer)


def post_reformulation_views(
    state: State, schema: RDFSchema
) -> dict[str, UnionQuery]:
    """Reformulated definitions of a recommended state's views.

    Materializing these unions on the non-saturated store yields the
    same view extents as materializing the plain views on the saturated
    store (Theorem 4.2), so the state's rewritings stay valid.
    """
    return {view.name: reformulate(view, schema) for view in state.views}
