"""repro.storage — pluggable physical storage for the triple store.

The :class:`StorageBackend` contract captures every operation the
:class:`~repro.rdf.store.TripleStore` performs against its triple
table: encoded add/remove, pattern matches through the tightest index,
sorted permutation scans, exact pattern counts, per-column statistics
ground truth, and deep copies. Everything above the store — the
physical-operator engine, the planner, the statistics catalog,
reformulation, and view selection — is backend-agnostic.

Backends:

* :class:`MemoryBackend` — the seed's in-memory hexastore structures
  (the default; fastest for data that fits in RAM);
* :class:`SqliteBackend` — a disk-backed SQLite triple table with
  SPO/POS/OSP B-tree indexes; datasets no longer need to fit in Python
  object memory, and a file-backed store *is* its own snapshot.

:mod:`repro.storage.snapshot` defines the single-file snapshot format
behind ``TripleStore.save(path)`` / ``TripleStore.open(path)``.

This package sits *below* ``repro.rdf``: it speaks only dictionary
codes (ints), never RDF terms, so it imports nothing from the layers
it serves.
"""

from repro.storage.base import (
    BACKENDS,
    COLUMNS,
    EncodedPattern,
    EncodedTriple,
    PERMUTATIONS,
    StorageBackend,
    create_backend,
    permutation_key,
)
from repro.storage.memory import MemoryBackend
from repro.storage.snapshot import SnapshotError, is_snapshot
from repro.storage.sqlite import ReadOnlyBackendError, SqliteBackend

__all__ = [
    "BACKENDS",
    "COLUMNS",
    "EncodedPattern",
    "EncodedTriple",
    "MemoryBackend",
    "PERMUTATIONS",
    "ReadOnlyBackendError",
    "SnapshotError",
    "SqliteBackend",
    "StorageBackend",
    "create_backend",
    "is_snapshot",
    "permutation_key",
]
