"""The storage backend contract of the triple store.

A :class:`StorageBackend` holds the *encoded* triple table — three
dictionary codes per triple — and answers exactly the physical
operations :class:`~repro.rdf.store.TripleStore` needs: mutations,
pattern matches through the tightest available index, sorted permutation
scans (the merge-join input contract), exact pattern counts, and the
per-column figures the statistics catalog verifies against.

The batched execution engine pulls through three *batched* fetch paths:
:meth:`StorageBackend.match_batches` and
:meth:`StorageBackend.match_sorted_batches` deliver one pattern's
matches as row-list batches (one driver round-trip per batch instead of
one per row for cursor-backed stores), and
:meth:`StorageBackend.match_many` answers a whole batch of patterns at
once (the index-nested-loop probe path — SQLite folds it into a single
statement per batch). The base class derives all three from the
row-at-a-time primitives, so third-party backends only implement the
abstract core; the built-in backends override them natively.

Backends speak *only* integer codes: no RDF term, query atom or
statistics type appears here, so the package sits below ``repro.rdf``
in the layer diagram and every layer above the store — engine, planner,
stats, reformulation, selection — runs unchanged on any backend.

Two implementations ship:

* :class:`~repro.storage.memory.MemoryBackend` — the seed's hexastore
  dict-of-sets structures, extracted verbatim (the default);
* :class:`~repro.storage.sqlite.SqliteBackend` — a disk-backed SQLite
  triple table with SPO/POS/OSP B-tree indexes, for datasets that do
  not fit Python object memory.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from itertools import islice
from typing import Iterable, Iterator, Sequence

#: An encoded triple: three dictionary codes.
EncodedTriple = tuple[int, int, int]

#: Default number of rows per fetched batch (see ``repro.engine``).
DEFAULT_BATCH_SIZE = 1024

#: An encoded pattern: a code, or None for an unbound position.
EncodedPattern = tuple[int | None, int | None, int | None]

#: The six column permutations a sorted iterator can follow.
PERMUTATIONS: dict[str, tuple[int, int, int]] = {
    "spo": (0, 1, 2),
    "sop": (0, 2, 1),
    "pso": (1, 0, 2),
    "pos": (1, 2, 0),
    "osp": (2, 0, 1),
    "ops": (2, 1, 0),
}

#: Column names of the triple table, in position order.
COLUMNS = ("s", "p", "o")


def permutation_key(order: str):
    """Sort-key function for one of the six column permutations."""
    permutation = PERMUTATIONS.get(order)
    if permutation is None:
        raise ValueError(
            f"unknown sort order {order!r}; pick from {sorted(PERMUTATIONS)}"
        )
    a, b, c = permutation
    return lambda t: (t[a], t[b], t[c])


class StorageBackend(ABC):
    """Physical storage of one encoded triple table.

    The contract mirrors what the in-memory store historically did
    against its private dicts; see the module docstring. All methods
    deal in :data:`EncodedTriple` / :data:`EncodedPattern` values.
    """

    #: Short name used by CLIs and benchmarks ("memory", "sqlite", ...).
    name: str = "?"

    # -- mutation ------------------------------------------------------

    @abstractmethod
    def add(self, encoded: EncodedTriple) -> bool:
        """Insert one triple; True when it was not already present."""

    @abstractmethod
    def remove(self, encoded: EncodedTriple) -> bool:
        """Delete one triple; True when it was present."""

    def add_bulk(self, encoded: Iterable[EncodedTriple]) -> int:
        """Insert many triples; returns the number of new ones.

        Backends override this when they have a faster batched path
        (SQLite uses one ``executemany``). Callers that must observe
        each insertion (statistics hooks) use :meth:`add` per triple.
        """
        return sum(1 for triple in encoded if self.add(triple))

    # -- lookup --------------------------------------------------------

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored triples."""

    @abstractmethod
    def __contains__(self, encoded: EncodedTriple) -> bool:
        """Exact membership test."""

    @abstractmethod
    def __iter__(self) -> Iterator[EncodedTriple]:
        """All triples, in no particular order."""

    @abstractmethod
    def match(self, pattern: EncodedPattern) -> Iterable[EncodedTriple]:
        """Triples matching a pattern, via the tightest index."""

    @abstractmethod
    def count(self, pattern: EncodedPattern) -> int:
        """Exact number of triples matching a pattern."""

    @abstractmethod
    def iter_sorted(self, order: str = "spo") -> Iterator[EncodedTriple]:
        """All triples in the code order of a column permutation."""

    @abstractmethod
    def match_sorted(
        self, pattern: EncodedPattern, order: str = "spo"
    ) -> Iterator[EncodedTriple]:
        """Matches of a pattern, sorted by the given permutation."""

    # -- batched fetch (the batch-at-a-time engine's input paths) ------

    def match_batches(
        self, pattern: EncodedPattern, size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[list[EncodedTriple]]:
        """Matches of a pattern as non-empty lists of at most ``size`` rows.

        Semantically ``match`` chunked; cursor-backed stores override it
        to pay one driver round-trip per batch (SQLite ``fetchmany``)
        instead of one per row.
        """
        iterator = iter(self.match(pattern))
        while True:
            batch = list(islice(iterator, size))
            if not batch:
                return
            yield batch

    def match_sorted_batches(
        self,
        pattern: EncodedPattern,
        order: str = "spo",
        size: int = DEFAULT_BATCH_SIZE,
    ) -> Iterator[list[EncodedTriple]]:
        """``match_sorted`` chunked into lists of at most ``size`` rows."""
        iterator = self.match_sorted(pattern, order)
        while True:
            batch = list(islice(iterator, size))
            if not batch:
                return
            yield batch

    def match_columns(
        self, pattern: EncodedPattern, size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[tuple[Sequence[int], Sequence[int], Sequence[int]]]:
        """Matches of a pattern in **columnar** layout.

        Yields one ``(s_column, p_column, o_column)`` triple of equal-
        length value sequences per batch of at most ``size`` matches —
        the native input of the engine's vectorized scan
        (:meth:`repro.engine.operators.IndexScan.column_batches`). The
        base derivation transposes :meth:`match_batches` with one
        C-speed ``zip`` per batch; the built-in backends override it
        (the memory backend transposes an index bucket once, SQLite
        transposes each ``fetchmany`` chunk).
        """
        for batch in self.match_batches(pattern, size):
            yield tuple(zip(*batch))

    def match_many(
        self, patterns: Sequence[EncodedPattern]
    ) -> list[Sequence[EncodedTriple]]:
        """Matches of a whole batch of patterns, aligned with the input.

        ``result[i]`` holds the matches of ``patterns[i]`` (any sequence
        type; callers must not mutate it). This is the probe path of the
        batched index-nested-loop join: the engine hands over one batch
        of probe patterns and the backend answers them in as few
        round-trips as it can — the SQLite backend compiles the batch
        into a single SQL statement.
        """
        return [list(self.match(pattern)) for pattern in patterns]

    # -- whole-plan SQL pushdown (optional capability) -----------------

    #: True when :meth:`execute_sql_plan` is implemented — i.e. the
    #: backend can evaluate a whole compiled query plan itself. The
    #: engine checks this flag before choosing the pushdown route.
    supports_sql_plans: bool = False

    def execute_sql_plan(
        self, sql: str, params: Sequence[int] = ()
    ) -> Iterable[tuple]:
        """Execute one compiled SQL plan over the triple table.

        The pushdown contract: ``sql`` only references the ``triples``
        table (self-joined under aliases) and its three code columns,
        ``params`` are dictionary codes bound to its placeholders, and
        the result rows are tuples of codes (or the literal ``1`` for
        existence tests). Only backends that *are* SQL engines implement
        this — :class:`~repro.storage.sqlite.SqliteBackend` runs the
        statement on its connection; everything else (the memory
        backend included) refuses, and the execution engine falls back
        to the interpreted operator tree.
        """
        raise NotImplementedError(
            f"the {self.name!r} backend cannot execute SQL plans"
        )

    # -- column statistics (ground truth for the stats catalog) --------

    @abstractmethod
    def distinct_values(self, column: str) -> int:
        """Distinct values in column ``'s'``/``'p'``/``'o'``."""

    @abstractmethod
    def column_value_counts(self, column: str) -> Counter:
        """Multiplicity of each value in the given column (a copy)."""

    # -- lifecycle -----------------------------------------------------

    @abstractmethod
    def copy(self) -> "StorageBackend":
        """An independent deep copy sharing no mutable state."""

    def flush(self) -> None:
        """Make pending writes durable (no-op for volatile backends)."""

    def close(self) -> None:
        """Release any held resources (no-op by default)."""

    @staticmethod
    def _column_index(column: str) -> int:
        try:
            return COLUMNS.index(column)
        except ValueError:
            raise ValueError(
                f"unknown column {column!r}; pick from {COLUMNS}"
            ) from None


def create_backend(name: str, *, path=None) -> StorageBackend:
    """Instantiate a backend by short name.

    ``path`` only applies to disk-capable backends (SQLite); the memory
    backend rejects it.

    Backends speak encoded triples only — three dictionary codes in,
    three codes out — through the :class:`StorageBackend` contract:

    >>> backend = create_backend("memory")
    >>> backend.add((1, 2, 3))
    True
    >>> backend.add((1, 2, 3))          # already present
    False
    >>> _ = backend.add((1, 2, 4))
    >>> sorted(backend.match((1, 2, None)))
    [(1, 2, 3), (1, 2, 4)]
    >>> backend.count((None, None, 4))
    1
    >>> [sorted(m) for m in backend.match_many([(1, 2, None), (9, None, None)])]
    [[(1, 2, 3), (1, 2, 4)], []]
    >>> [len(batch) for batch in backend.match_batches((None, None, None), 1)]
    [1, 1]
    """
    from repro.storage.memory import MemoryBackend
    from repro.storage.sqlite import SqliteBackend

    if name == "memory":
        if path is not None:
            raise ValueError("the memory backend does not take a path")
        return MemoryBackend()
    if name == "sqlite":
        return SqliteBackend(path)
    raise ValueError(f"unknown storage backend {name!r}; pick from {BACKENDS}")


#: Selectable backend names, in CLI display order.
BACKENDS = ("memory", "sqlite")
