"""The in-memory hexastore backend (the seed's structures, extracted).

Exhaustive one- and two-column hash indexes over a set of encoded
triples, exactly as the paper describes for its PostgreSQL substrate
(Section 6: "we indexed the encoded triple table on s, p, o, and all
two- and three-column combinations"), plus lazily cached sorted
permutations feeding merge joins. Extracting the structures behind
:class:`~repro.storage.base.StorageBackend` changed no behavior: every
method body is the seed store's, minus dictionary encoding (which stays
in :class:`~repro.rdf.store.TripleStore`).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from repro.storage.base import (
    EncodedPattern,
    EncodedTriple,
    StorageBackend,
    permutation_key,
)


class MemoryBackend(StorageBackend):
    """Dict-of-sets hexastore indexes over Python object memory."""

    name = "memory"

    def __init__(self) -> None:
        self._triples: set[EncodedTriple] = set()
        # One-column indexes: value -> set of triples.
        self._idx_s: dict[int, set[EncodedTriple]] = {}
        self._idx_p: dict[int, set[EncodedTriple]] = {}
        self._idx_o: dict[int, set[EncodedTriple]] = {}
        # Two-column indexes: (value, value) -> set of triples.
        self._idx_sp: dict[tuple[int, int], set[EncodedTriple]] = {}
        self._idx_so: dict[tuple[int, int], set[EncodedTriple]] = {}
        self._idx_po: dict[tuple[int, int], set[EncodedTriple]] = {}
        # Lazily sorted permutations of the triple table (for merge
        # joins); invalidated wholesale on any mutation.
        self._sorted_cache: dict[str, list[EncodedTriple]] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, encoded: EncodedTriple) -> bool:
        if encoded in self._triples:
            return False
        self._triples.add(encoded)
        s, p, o = encoded
        self._idx_s.setdefault(s, set()).add(encoded)
        self._idx_p.setdefault(p, set()).add(encoded)
        self._idx_o.setdefault(o, set()).add(encoded)
        self._idx_sp.setdefault((s, p), set()).add(encoded)
        self._idx_so.setdefault((s, o), set()).add(encoded)
        self._idx_po.setdefault((p, o), set()).add(encoded)
        if self._sorted_cache:
            self._sorted_cache.clear()
        return True

    def remove(self, encoded: EncodedTriple) -> bool:
        if encoded not in self._triples:
            return False
        self._triples.discard(encoded)
        s, p, o = encoded
        # Drop buckets that empty out: under churn, keeping them alive
        # would grow all six indexes without bound.
        for index, key in (
            (self._idx_s, s),
            (self._idx_p, p),
            (self._idx_o, o),
            (self._idx_sp, (s, p)),
            (self._idx_so, (s, o)),
            (self._idx_po, (p, o)),
        ):
            bucket = index[key]
            bucket.discard(encoded)
            if not bucket:
                del index[key]
        if self._sorted_cache:
            self._sorted_cache.clear()
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, encoded: EncodedTriple) -> bool:
        return encoded in self._triples

    def __iter__(self) -> Iterator[EncodedTriple]:
        return iter(self._triples)

    def match(self, pattern: EncodedPattern) -> Iterable[EncodedTriple]:
        s, p, o = pattern
        if s is not None and p is not None and o is not None:
            triple = (s, p, o)
            return (triple,) if triple in self._triples else ()
        if s is not None and p is not None:
            return self._idx_sp.get((s, p), ())
        if s is not None and o is not None:
            return self._idx_so.get((s, o), ())
        if p is not None and o is not None:
            return self._idx_po.get((p, o), ())
        if s is not None:
            return self._idx_s.get(s, ())
        if p is not None:
            return self._idx_p.get(p, ())
        if o is not None:
            return self._idx_o.get(o, ())
        return self._triples

    def match_columns(self, pattern, size=1024):
        # One C-speed transpose of the whole index bucket, then yield
        # column slices: no per-row tuple is ever built, and the common
        # bucket-fits-one-batch case hands the transposed columns out
        # without any further copying.
        matches = self.match(pattern)
        if not matches:
            return
        s_col, p_col, o_col = zip(*matches)
        length = len(s_col)
        if length <= size:
            yield (s_col, p_col, o_col)
            return
        for start in range(0, length, size):
            end = start + size
            yield (s_col[start:end], p_col[start:end], o_col[start:end])

    def match_many(self, patterns):
        # The dict indexes already hold each answer as a collection:
        # hand the buckets out as-is (callers must not mutate them)
        # instead of copying every bucket into a fresh list.
        match = self.match
        return [match(pattern) for pattern in patterns]

    def count(self, pattern: EncodedPattern) -> int:
        matches = self.match(pattern)
        if matches is self._triples:
            return len(self._triples)
        return (
            len(matches)
            if isinstance(matches, (set, tuple))
            else sum(1 for _ in matches)
        )

    def _sorted_triples(self, order: str) -> list[EncodedTriple]:
        key = permutation_key(order)
        cached = self._sorted_cache.get(order)
        if cached is None:
            cached = sorted(self._triples, key=key)
            self._sorted_cache[order] = cached
        return cached

    def iter_sorted(self, order: str = "spo") -> Iterator[EncodedTriple]:
        return iter(self._sorted_triples(order))

    def match_sorted(
        self, pattern: EncodedPattern, order: str = "spo"
    ) -> Iterator[EncodedTriple]:
        if pattern == (None, None, None):
            return iter(self._sorted_triples(order))
        key = permutation_key(order)
        return iter(sorted(self.match(pattern), key=key))

    # ------------------------------------------------------------------
    # Column statistics
    # ------------------------------------------------------------------

    def distinct_values(self, column: str) -> int:
        index = (self._idx_s, self._idx_p, self._idx_o)[self._column_index(column)]
        return len(index)

    def column_value_counts(self, column: str) -> Counter:
        index = (self._idx_s, self._idx_p, self._idx_o)[self._column_index(column)]
        return Counter({value: len(bucket) for value, bucket in index.items()})

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def copy(self) -> "MemoryBackend":
        clone = MemoryBackend()
        clone._triples = set(self._triples)
        clone._idx_s = {key: set(bucket) for key, bucket in self._idx_s.items()}
        clone._idx_p = {key: set(bucket) for key, bucket in self._idx_p.items()}
        clone._idx_o = {key: set(bucket) for key, bucket in self._idx_o.items()}
        clone._idx_sp = {key: set(bucket) for key, bucket in self._idx_sp.items()}
        clone._idx_so = {key: set(bucket) for key, bucket in self._idx_so.items()}
        clone._idx_po = {key: set(bucket) for key, bucket in self._idx_po.items()}
        return clone
