"""A disk-backed SQLite storage backend.

The encoded triple table lives in one SQLite table clustered on
``(s, p, o)`` (a WITHOUT ROWID primary key) with two covering B-tree
indexes on ``(p, o, s)`` and ``(o, s, p)``. Together the three
permutations cover every one of the seven constant-pattern shapes as an
index *prefix* — the classic three-permutation trick of RDF column
stores — so pattern matches and counts push down to B-tree range
queries, and the six sorted permutation scans the merge join consumes
become ``ORDER BY`` over an index (or a one-pass external sort for the
three non-covered orders, handled by SQLite itself).

Because every operator above the store pulls rows through the
:class:`~repro.storage.base.StorageBackend` contract, a dataset no
longer needs to fit Python object memory: pass a file path and SQLite
pages the table in and out as queries touch it. With no path the
backend uses a SQLite temporary database — cached in RAM up to the
page-cache budget, spilled to a private auto-deleted disk file beyond
it — so even anonymous stores (saturations, copies) stay bounded.

Writes accumulate in one open transaction (the connection's deferred
autocommit mode) and become durable on :meth:`flush`/:meth:`close` —
bulk loads pay one fsync, not one per triple. Reads on the same
connection always see pending writes.
"""

from __future__ import annotations

import os
import sqlite3
from collections import Counter
from pathlib import Path
from typing import Iterable, Iterator

from repro.obs import metrics
from repro.storage.base import (
    DEFAULT_BATCH_SIZE,
    EncodedPattern,
    EncodedTriple,
    PERMUTATIONS,
    StorageBackend,
)

#: DDL of the triple table and its two extra permutation indexes.
SCHEMA = """
CREATE TABLE IF NOT EXISTS triples (
    s INTEGER NOT NULL,
    p INTEGER NOT NULL,
    o INTEGER NOT NULL,
    PRIMARY KEY (s, p, o)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_triples_pos ON triples (p, o, s);
CREATE INDEX IF NOT EXISTS idx_triples_osp ON triples (o, s, p);
"""

#: ORDER BY column list per permutation name.
_ORDER_BY = {name: ", ".join(name) for name in PERMUTATIONS}

#: Probe-column order per bound-column mask, chosen so the batched
#: ``match_many`` probe always walks an index prefix: SPO for s / (s,p),
#: POS for p / (p,o), OSP for o / (o,s).
_PROBE_ORDER: dict[tuple[bool, bool, bool], tuple[int, ...]] = {
    (True, False, False): (0,),
    (False, True, False): (1,),
    (False, False, True): (2,),
    (True, True, False): (0, 1),
    (True, False, True): (2, 0),
    (False, True, True): (1, 2),
    (True, True, True): (0, 1, 2),
}

#: Bound-parameter budget per batched-probe statement. Stays below 999,
#: the SQLITE_MAX_VARIABLE_NUMBER default of the oldest SQLite builds
#: still in the wild (< 3.32); the per-statement key count is derived
#: from it as ``budget // bound columns``, so a three-column probe mask
#: still collapses hundreds of per-probe SELECTs into one statement.
_PROBE_PARAM_BUDGET = 900


def _where(pattern: EncodedPattern) -> tuple[str, tuple[int, ...]]:
    """WHERE clause + parameters for an encoded pattern."""
    conditions = [
        f"{column} = ?"
        for column, code in zip("spo", pattern)
        if code is not None
    ]
    params = tuple(code for code in pattern if code is not None)
    if not conditions:
        return "", params
    return " WHERE " + " AND ".join(conditions), params


class ReadOnlyBackendError(RuntimeError):
    """Raised when a mutation reaches a read-only SQLite backend."""


class SqliteBackend(StorageBackend):
    """Encoded triples in a SQLite database (file-backed or in-memory).

    ``read_only`` opens an existing database through SQLite's ``mode=ro``
    URI flag: the connection physically cannot write, so serving a
    snapshot performs **zero writes** — no WAL conversion attempt, no
    schema script, no ``ANALYZE`` — and concurrent reader processes
    (server mode) share the file safely. ``read_only=None`` (the
    default) auto-detects: an existing file the process cannot write
    (e.g. a chmod-0444 snapshot) is served read-only instead of letting
    doomed write attempts fail one by one behind try/except guards.
    """

    name = "sqlite"

    def __init__(self, path=None, read_only: bool | None = None) -> None:
        #: Database file path, or None for an anonymous database.
        self.path = str(path) if path is not None else None
        if read_only is None:
            read_only = (
                self.path is not None
                and os.path.exists(self.path)
                and not os.access(self.path, os.W_OK)
            )
        elif read_only and self.path is None:
            raise ValueError("a read-only backend needs an existing file path")
        #: True when this connection can never write the database.
        self.read_only = bool(read_only)
        # Anonymous backends use a SQLite *temporary* database (""):
        # pages live in the cache and spill to a private auto-deleted
        # disk file as the data outgrows it — unlike ":memory:", big
        # anonymous stores (saturations, copies) stay memory-bounded.
        if self.read_only:
            # as_uri() percent-encodes URI-special path characters.
            self._con = sqlite3.connect(
                Path(self.path).resolve().as_uri() + "?mode=ro", uri=True
            )
        else:
            self._con = sqlite3.connect(
                self.path if self.path is not None else ""
            )
        # Production pragmas (the configuration table every deployed
        # SQLite service converges on): 16 MiB page cache keeps
        # benchmark-scale databases cached while bounding worst-case
        # memory; sorts and transient indexes stay in RAM; NORMAL
        # synchronous pairs one fsync per checkpoint with WAL; the busy
        # timeout makes concurrent readers wait out a writer instead of
        # failing. All are connection-local — safe on read-only files.
        self._con.execute("PRAGMA cache_size = -16384")
        self._con.execute("PRAGMA temp_store = MEMORY")
        self._con.execute("PRAGMA synchronous = NORMAL")
        self._con.execute("PRAGMA busy_timeout = 30000")
        if self.path is not None and not self.read_only:
            # Write-ahead logging for file-backed stores: readers never
            # block the writer and vice versa (the server-mode story).
            # Switching the mode writes the database header, which a
            # read-only snapshot must never even attempt — the
            # read-only branch above skips this entirely.
            try:
                self._con.execute("PRAGMA journal_mode = WAL")
            except sqlite3.OperationalError:
                pass
        if not self.read_only:
            self._con.executescript(SCHEMA)
            self._con.commit()
        # Triple count mirrored Python-side: len() is on the hot path
        # of every cost formula and must not re-run COUNT(*).
        self._count = self._con.execute(
            "SELECT COUNT(*) FROM triples"
        ).fetchone()[0]
        # Rows changed since the SQLite planner last saw fresh ANALYZE
        # statistics. A database that already carries ``sqlite_stat1``
        # (a snapshot saved after bulk load) starts fresh; one without
        # starts fully stale so the first pushed-down plan re-analyzes.
        has_stats = self._con.execute(
            "SELECT 1 FROM sqlite_master WHERE type = 'table' "
            "AND name = 'sqlite_stat1'"
        ).fetchone()
        self._stale_rows = 0 if has_stats else self._count

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _check_writable(self) -> None:
        if self.read_only:
            raise ReadOnlyBackendError(
                f"backend serves {self.path} read-only; mutations are not "
                "allowed (reopen the snapshot without read_only to edit it)"
            )

    def add(self, encoded: EncodedTriple) -> bool:
        self._check_writable()
        cursor = self._con.execute(
            "INSERT OR IGNORE INTO triples (s, p, o) VALUES (?, ?, ?)", encoded
        )
        inserted = cursor.rowcount == 1
        if inserted:
            self._count += 1
            self._stale_rows += 1
        return inserted

    def remove(self, encoded: EncodedTriple) -> bool:
        self._check_writable()
        cursor = self._con.execute(
            "DELETE FROM triples WHERE s = ? AND p = ? AND o = ?", encoded
        )
        removed = cursor.rowcount == 1
        if removed:
            self._count -= 1
            self._stale_rows += 1
        return removed

    def add_bulk(self, encoded: Iterable[EncodedTriple]) -> int:
        self._check_writable()
        before = self._con.total_changes
        self._con.executemany(
            "INSERT OR IGNORE INTO triples (s, p, o) VALUES (?, ?, ?)", encoded
        )
        inserted = self._con.total_changes - before
        self._count += inserted
        if inserted:
            # Refresh the SQLite planner's statistics right after the
            # bulk load: pushed-down join plans get chosen against the
            # real value distribution, not against empty-table guesses.
            self._stale_rows += inserted
            self._analyze()
        return inserted

    def _analyze(self) -> None:
        """Recompute SQLite's own planner statistics (``sqlite_stat1``).

        Read-only databases cannot store them; SQLite then falls back to
        its built-in estimates, which is exactly the pre-ANALYZE state —
        so a read-only connection never even attempts the write.
        """
        if self.read_only:
            self._stale_rows = 0
            return
        if metrics.enabled:
            metrics.inc("storage.sqlite.analyze.runs")
        try:
            self._con.execute("ANALYZE")
        except sqlite3.OperationalError:
            pass
        self._stale_rows = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __contains__(self, encoded: EncodedTriple) -> bool:
        row = self._con.execute(
            "SELECT 1 FROM triples WHERE s = ? AND p = ? AND o = ?", encoded
        ).fetchone()
        return row is not None

    def __iter__(self) -> Iterator[EncodedTriple]:
        return iter(self._con.execute("SELECT s, p, o FROM triples"))

    def match(self, pattern: EncodedPattern) -> Iterable[EncodedTriple]:
        s, p, o = pattern
        if s is not None and p is not None and o is not None:
            triple = (s, p, o)
            return (triple,) if triple in self else ()
        where, params = _where(pattern)
        return self._con.execute(f"SELECT s, p, o FROM triples{where}", params)

    def match_batches(
        self, pattern: EncodedPattern, size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[list[EncodedTriple]]:
        s, p, o = pattern
        if s is not None and p is not None and o is not None:
            triple = (s, p, o)
            if triple in self:
                yield [triple]
            return
        where, params = _where(pattern)
        cursor = self._con.execute(f"SELECT s, p, o FROM triples{where}", params)
        while True:
            batch = cursor.fetchmany(size)
            if not batch:
                return
            yield batch

    def match_columns(
        self, pattern: EncodedPattern, size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[tuple]:
        s, p, o = pattern
        if s is not None and p is not None and o is not None:
            if (s, p, o) in self:
                yield ((s,), (p,), (o,))
            return
        where, params = _where(pattern)
        cursor = self._con.execute(f"SELECT s, p, o FROM triples{where}", params)
        while True:
            batch = cursor.fetchmany(size)
            if not batch:
                return
            yield tuple(zip(*batch))

    def match_sorted_batches(
        self,
        pattern: EncodedPattern,
        order: str = "spo",
        size: int = DEFAULT_BATCH_SIZE,
    ) -> Iterator[list[EncodedTriple]]:
        order_by = _ORDER_BY.get(order)
        if order_by is None:
            raise ValueError(
                f"unknown sort order {order!r}; pick from {sorted(PERMUTATIONS)}"
            )
        where, params = _where(pattern)
        cursor = self._con.execute(
            f"SELECT s, p, o FROM triples{where} ORDER BY {order_by}", params
        )
        while True:
            batch = cursor.fetchmany(size)
            if not batch:
                return
            yield batch

    def match_many(self, patterns):
        """One SQL statement per probe batch instead of one per probe.

        Patterns are grouped by their bound-column mask; each group's
        distinct key tuples become a single ``IN (VALUES ...)`` (or
        plain ``IN`` for one column) query over the matching index
        prefix, and the fetched triples are bucketed back per key. The
        common caller — the batched index-nested-loop join — sends
        same-mask batches, so the statement text is stable and sqlite3's
        statement cache kicks in.
        """
        if not patterns:
            return []
        execute = self._con.execute
        # key tuple (in probe-column order) -> shared result bucket.
        by_mask: dict[tuple[bool, bool, bool], dict[tuple, list]] = {}
        for pattern in patterns:
            mask = (
                pattern[0] is not None,
                pattern[1] is not None,
                pattern[2] is not None,
            )
            probe = _PROBE_ORDER.get(mask)
            key = () if probe is None else tuple(pattern[i] for i in probe)
            by_mask.setdefault(mask, {}).setdefault(key, [])
        for mask, buckets in by_mask.items():
            probe = _PROBE_ORDER.get(mask)
            if probe is None:  # unconstrained pattern: one full scan
                buckets[()] = list(execute("SELECT s, p, o FROM triples"))
                continue
            columns = [("s", "p", "o")[i] for i in probe]
            keys = list(buckets)
            chunk_size = max(1, _PROBE_PARAM_BUDGET // len(columns))
            for start in range(0, len(keys), chunk_size):
                chunk = keys[start : start + chunk_size]
                if len(columns) == 1:
                    placeholders = ",".join("?" * len(chunk))
                    sql = (
                        f"SELECT s, p, o FROM triples "
                        f"WHERE {columns[0]} IN ({placeholders})"
                    )
                    params = [key[0] for key in chunk]
                else:
                    row = "(" + ",".join("?" * len(columns)) + ")"
                    placeholders = ",".join([row] * len(chunk))
                    sql = (
                        f"SELECT s, p, o FROM triples "
                        f"WHERE ({', '.join(columns)}) IN (VALUES {placeholders})"
                    )
                    params = [value for key in chunk for value in key]
                for triple in execute(sql, params):
                    buckets[tuple(triple[i] for i in probe)].append(triple)
        results = []
        for pattern in patterns:
            mask = (
                pattern[0] is not None,
                pattern[1] is not None,
                pattern[2] is not None,
            )
            probe = _PROBE_ORDER.get(mask)
            key = () if probe is None else tuple(pattern[i] for i in probe)
            results.append(by_mask[mask][key])
        return results

    def count(self, pattern: EncodedPattern) -> int:
        if pattern == (None, None, None):
            return self._count
        where, params = _where(pattern)
        return self._con.execute(
            f"SELECT COUNT(*) FROM triples{where}", params
        ).fetchone()[0]

    def iter_sorted(self, order: str = "spo") -> Iterator[EncodedTriple]:
        return self.match_sorted((None, None, None), order)

    def match_sorted(
        self, pattern: EncodedPattern, order: str = "spo"
    ) -> Iterator[EncodedTriple]:
        order_by = _ORDER_BY.get(order)
        if order_by is None:
            raise ValueError(
                f"unknown sort order {order!r}; pick from {sorted(PERMUTATIONS)}"
            )
        where, params = _where(pattern)
        return iter(
            self._con.execute(
                f"SELECT s, p, o FROM triples{where} ORDER BY {order_by}", params
            )
        )

    # ------------------------------------------------------------------
    # Whole-plan SQL pushdown
    # ------------------------------------------------------------------

    supports_sql_plans = True

    def execute_sql_plan(self, sql: str, params=()):
        """Run one compiled query plan as a single statement.

        This is where "move the computation to the data" lands: the
        engine hands over an entire join pipeline (see
        :mod:`repro.engine.sqlcompile`) and SQLite evaluates it in its
        VM against the SPO/POS/OSP covering indexes — no per-probe or
        per-batch driver crossing. Stale planner statistics are
        refreshed first when enough rows changed since the last
        ``ANALYZE`` that SQLite might pick a bad join order.
        """
        if self._stale_rows >= max(64, self._count // 8):
            if metrics.enabled:
                metrics.inc("storage.sqlite.analyze.stale_triggered")
            self._analyze()
        if metrics.enabled:
            metrics.inc("storage.sqlite.pushdown.execute")
        return self._con.execute(sql, params)

    # ------------------------------------------------------------------
    # Column statistics
    # ------------------------------------------------------------------

    def distinct_values(self, column: str) -> int:
        name = "spo"[self._column_index(column)]
        return self._con.execute(
            f"SELECT COUNT(DISTINCT {name}) FROM triples"
        ).fetchone()[0]

    def column_value_counts(self, column: str) -> Counter:
        name = "spo"[self._column_index(column)]
        return Counter(
            dict(
                self._con.execute(
                    f"SELECT {name}, COUNT(*) FROM triples GROUP BY {name}"
                )
            )
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def copy(self) -> "SqliteBackend":
        """An independent in-memory SQLite clone (via the backup API).

        Copies of disk-backed databases are deliberately anonymous: the
        clone must not fight the original over the same file. Persist a
        clone explicitly with :meth:`~repro.rdf.store.TripleStore.save`.
        """
        self._con.commit()
        clone = SqliteBackend()
        self._con.backup(clone._con)
        clone._count = self._count
        # The backup carries sqlite_stat1 along (or its absence).
        clone._stale_rows = self._stale_rows
        return clone

    def flush(self) -> None:
        """Commit the open transaction (make pending writes durable).

        A read-only connection has nothing to commit — and must never
        try, so serving a snapshot stays a zero-write operation.
        """
        if not self.read_only:
            self._con.commit()

    def close(self) -> None:
        """Commit and release the database connection."""
        if not self.read_only:
            self._con.commit()
        self._con.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection (used by snapshot persistence)."""
        return self._con
