"""Single-file store snapshots (SQLite container format).

A snapshot is one SQLite database file holding everything a
:class:`~repro.rdf.store.TripleStore` needs to come back to life:

* ``triples(s, p, o)`` — the encoded triple table, in exactly the
  schema of :class:`~repro.storage.sqlite.SqliteBackend` (including its
  POS/OSP indexes), so opening a snapshot with the SQLite backend is
  literally attaching to the file — zero load time, zero extra copies;
* ``terms(code, kind, value, datatype, language)`` — the serialized
  dictionary: every code with its term in structured form (kind is
  ``'uri'``/``'literal'``/``'bnode'``), in code order — structured
  columns round-trip *any* term exactly, with no parser in the loop;
* ``column_stats(col, code, n)`` — the serialized statistics catalog:
  the per-column value multiplicities, so reopening never recounts;
* ``meta(key, value)`` — format version and provenance.

This module deals only in primitives (ints and strings): rendering
terms to N-Triples and parsing them back is the store's job, which
keeps ``repro.storage`` below ``repro.rdf`` in the layer diagram.
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path
from typing import Iterable

from repro.storage.sqlite import SCHEMA as TRIPLES_SCHEMA

#: Bumped when the container layout changes incompatibly.
FORMAT_VERSION = "1"

#: The key under which the format version is stored in ``meta``.
FORMAT_KEY = "repro_snapshot_format"

AUX_SCHEMA = """
CREATE TABLE IF NOT EXISTS terms (
    code INTEGER PRIMARY KEY,
    kind TEXT NOT NULL,
    value TEXT NOT NULL,
    datatype TEXT,
    language TEXT
);
CREATE TABLE IF NOT EXISTS column_stats (
    col INTEGER NOT NULL,
    code INTEGER NOT NULL,
    n INTEGER NOT NULL,
    PRIMARY KEY (col, code)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


class SnapshotError(ValueError):
    """Raised when a file is not a readable store snapshot."""


def synced_term_count(con: sqlite3.Connection) -> int:
    """Number of dictionary terms already present in the sidecar.

    Dictionary codes are dense and append-only, so this count is the
    first code an incremental sync still needs to write. Creates the
    sidecar tables if they do not exist yet.
    """
    con.executescript(AUX_SCHEMA)
    return con.execute("SELECT COUNT(*) FROM terms").fetchone()[0]


def write_aux_tables(
    con: sqlite3.Connection,
    term_rows: Iterable[tuple],
    stats_rows: Iterable[tuple[int, int, int]],
    meta: dict[str, str],
    incremental_terms: bool = False,
) -> None:
    """(Re)write the dictionary, statistics and meta tables of ``con``.

    Used both when building a fresh snapshot file and when re-saving a
    store whose SQLite backend already lives at the target path (the
    triple table is then already in place; only the sidecar tables and
    the open transaction need syncing). With ``incremental_terms`` the
    term rows are appended instead of rewritten — the dictionary is
    append-only, so repeated in-place saves cost O(new terms), not
    O(dictionary). Statistics and meta are always rewritten (their size
    is bounded by the per-column distinct counts).
    """
    con.executescript(AUX_SCHEMA)
    if not incremental_terms:
        con.execute("DELETE FROM terms")
    con.execute("DELETE FROM column_stats")
    con.execute("DELETE FROM meta")
    con.executemany(
        "INSERT INTO terms (code, kind, value, datatype, language) "
        "VALUES (?, ?, ?, ?, ?)",
        term_rows,
    )
    con.executemany(
        "INSERT INTO column_stats (col, code, n) VALUES (?, ?, ?)", stats_rows
    )
    rows = dict(meta)
    rows.setdefault(FORMAT_KEY, FORMAT_VERSION)
    con.executemany(
        "INSERT INTO meta (key, value) VALUES (?, ?)", rows.items()
    )
    con.commit()


def write_snapshot(
    path,
    triples: Iterable[tuple[int, int, int]],
    term_rows: Iterable[tuple],
    stats_rows: Iterable[tuple[int, int, int]],
    meta: dict[str, str],
) -> None:
    """Create (or overwrite) a snapshot file from scratch.

    The snapshot is built in a sibling temp file and moved into place
    atomically (``os.replace``), so a crash mid-save leaves any previous
    snapshot at ``path`` intact rather than half a new one.
    """
    target = Path(path)
    staging = target.with_name(target.name + ".tmp")
    staging.unlink(missing_ok=True)
    con = sqlite3.connect(str(staging))
    try:
        con.executescript(TRIPLES_SCHEMA)
        con.executemany(
            "INSERT OR IGNORE INTO triples (s, p, o) VALUES (?, ?, ?)", triples
        )
        write_aux_tables(con, term_rows, stats_rows, meta)
    except BaseException:
        con.close()
        staging.unlink(missing_ok=True)
        raise
    con.close()
    os.replace(staging, target)


def _has_table(con: sqlite3.Connection, name: str) -> bool:
    return (
        con.execute(
            "SELECT 1 FROM sqlite_master WHERE type = 'table' AND name = ?",
            (name,),
        ).fetchone()
        is not None
    )


def read_snapshot(path, include_triples: bool = False):
    """Read a snapshot file.

    Returns ``(term_rows, stats_rows, meta, triples)`` where
    ``term_rows`` come back in code order and ``triples`` is a fully
    materialized list when ``include_triples`` is set (None otherwise —
    backends that attach to the file never need the triples up front).
    """
    target = Path(path)
    if not target.is_file():
        raise SnapshotError(f"snapshot file {target} does not exist")
    try:
        # as_uri() percent-encodes URI-special path characters
        # ('#', '?', '%'); raw interpolation would truncate such paths.
        con = sqlite3.connect(target.resolve().as_uri() + "?mode=ro", uri=True)
    except sqlite3.Error as exc:  # pragma: no cover - platform-specific
        raise SnapshotError(f"cannot open snapshot {target}: {exc}") from exc
    try:
        try:
            if not _has_table(con, "meta") or not _has_table(con, "terms"):
                raise SnapshotError(f"{target} is not a repro store snapshot")
            meta = dict(con.execute("SELECT key, value FROM meta"))
            version = meta.get(FORMAT_KEY)
            if version != FORMAT_VERSION:
                raise SnapshotError(
                    f"unsupported snapshot format {version!r} in {target} "
                    f"(expected {FORMAT_VERSION!r})"
                )
            term_rows = list(
                con.execute(
                    "SELECT code, kind, value, datatype, language "
                    "FROM terms ORDER BY code"
                )
            )
            stats_rows = list(
                con.execute("SELECT col, code, n FROM column_stats")
            )
            triples = None
            if include_triples:
                triples = list(con.execute("SELECT s, p, o FROM triples"))
        except sqlite3.DatabaseError as exc:
            # Not a SQLite file at all, or one corrupted mid-table: both
            # surface as the same "not a readable snapshot" failure.
            raise SnapshotError(
                f"{target} is not a readable snapshot: {exc}"
            ) from exc
        return term_rows, stats_rows, meta, triples
    finally:
        con.close()


def is_snapshot(path) -> bool:
    """Cheap check whether ``path`` looks like a readable snapshot."""
    try:
        read_snapshot(path)
    except SnapshotError:
        return False
    return True
