"""The incrementally maintained statistics catalog of one triple store.

One :class:`StatisticsCatalog` is attached to every
:class:`~repro.rdf.store.TripleStore` (as ``store.stats``) and is kept
up to date by the store's mutation paths: ``add``/``remove`` call the
``on_add``/``on_remove`` hooks with the encoded triple, so every
maintained figure — per-column value multiplicities (hence per-predicate
triple counts and per-column distinct counts) — moves by an O(1) counter
update per triple. Nothing is ever recomputed from scratch on the hot
path; derived caches (the constant-pattern count cache) are invalidated
lazily through the store's monotonic ``version`` counter.

This is the single source of cardinality truth for the whole system:
the view-selection cost model (Section 3.3 of the paper), the engine's
join ordering, and the cost-based engine selection all read from here
(via :mod:`repro.stats.provider` / :mod:`repro.stats.estimator`).

The catalog deliberately imports nothing above the ``rdf`` layer: it
speaks dictionary codes and :class:`~repro.rdf.terms.Term` patterns, not
query atoms, so the store can own one without an import cycle.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.rdf.store import EncodedTriple, TripleStore
    from repro.rdf.terms import Term

#: Column names of the triple table, in position order.
COLUMNS = ("s", "p", "o")

#: A constant pattern over decoded terms: a Term, or None for "any".
TermPattern = tuple["Term | None", "Term | None", "Term | None"]


class StatisticsCatalog:
    """Per-store statistics, maintained incrementally on every mutation.

    Maintained figures (all O(1) to read *and* to update):

    * ``total_triples()`` — the store size;
    * ``predicate_count(term)`` / ``predicate_count_code(code)`` — the
      number of triples carrying a given predicate;
    * ``distinct_values(column)`` — distinct values per column;
    * ``column_value_counts(column)`` — the full value-multiplicity
      counter of a column (a copy);
    * ``average_term_size()`` — the width unit of the cost model
      (delegated to the dictionary, which tracks it incrementally).

    Exact constant-pattern counts (``pattern_count``) read the store's
    hexastore indexes — an O(1) bucket-length lookup — and are memoized
    per pattern until the store's ``version`` moves.
    """

    def __init__(self, store: "TripleStore") -> None:
        self._store = store
        # Value multiplicity per column. _col_values[1] doubles as the
        # per-predicate triple count.
        self._col_values: tuple[Counter, Counter, Counter] = (
            Counter(),
            Counter(),
            Counter(),
        )
        # Constant-pattern count cache, flushed when the version moves.
        self._pattern_counts: dict[TermPattern, int] = {}
        self._pattern_version = store.version

    # ------------------------------------------------------------------
    # Maintenance hooks (called by the store; O(1) per triple)
    # ------------------------------------------------------------------

    def on_add(self, encoded: "EncodedTriple") -> None:
        """Record one inserted triple."""
        for counter, value in zip(self._col_values, encoded):
            counter[value] += 1

    def on_remove(self, encoded: "EncodedTriple") -> None:
        """Record one removed triple."""
        for counter, value in zip(self._col_values, encoded):
            counter[value] -= 1
            if counter[value] <= 0:
                del counter[value]

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """The owning store's mutation counter (staleness token)."""
        return self._store.version

    def total_triples(self) -> int:
        """Size of the data set."""
        return len(self._store)

    def distinct_values(self, column: str) -> int:
        """Number of distinct values in column ``'s'``/``'p'``/``'o'``."""
        return len(self._col_values[COLUMNS.index(column)])

    def column_value_counts(self, column: str) -> Counter:
        """Multiplicity of each value in the given column (a copy)."""
        return Counter(self._col_values[COLUMNS.index(column)])

    def predicate_count_code(self, code: int) -> int:
        """Triples whose predicate has dictionary code ``code``."""
        return self._col_values[1].get(code, 0)

    def predicate_count(self, predicate: "Term") -> int:
        """Triples carrying ``predicate``; 0 when it never occurs."""
        code = self._store.encode_term(predicate)
        if code is None:
            return 0
        return self.predicate_count_code(code)

    def average_term_size(self) -> float:
        """Average rendered term size (the cost model's width unit).

        Delegates to the dictionary, which maintains the running total
        incrementally; an empty dictionary reports a nominal width so
        every downstream division stays well-defined.
        """
        return self._store.dictionary.average_term_size()

    def pattern_count(
        self,
        s: "Term | None" = None,
        p: "Term | None" = None,
        o: "Term | None" = None,
    ) -> int:
        """Exact number of triples matching a constant pattern.

        Reads the store's tightest index (an O(1) bucket length) and
        memoizes per pattern; the memo is flushed lazily when the store's
        ``version`` counter has moved since it was filled.
        """
        version = self._store.version
        if version != self._pattern_version:
            self._pattern_counts.clear()
            self._pattern_version = version
        pattern = (s, p, o)
        cached = self._pattern_counts.get(pattern)
        if cached is None:
            cached = self._store.count(s, p, o)
            self._pattern_counts[pattern] = cached
        return cached

    # ------------------------------------------------------------------
    # Serialization (store snapshots; repro.storage.snapshot)
    # ------------------------------------------------------------------

    def export_column_counts(self):
        """Serialized ``(column index, code, multiplicity)`` rows.

        The snapshot writer persists these so a reopened store never
        recounts its statistics from the triple table.
        """
        for column, counter in enumerate(self._col_values):
            for code, count in counter.items():
                yield (column, code, count)

    def load_column_counts(self, rows) -> None:
        """Replace the maintained counters with serialized rows.

        Inverse of :meth:`export_column_counts`; used by
        ``TripleStore.open``. Flushes the pattern memo — it may hold
        counts from before the store this catalog now describes.
        """
        self._col_values = (Counter(), Counter(), Counter())
        for column, code, count in rows:
            self._col_values[column][code] = count
        self._pattern_counts.clear()
        self._pattern_version = self._store.version

    # ------------------------------------------------------------------
    # Cloning
    # ------------------------------------------------------------------

    def copy_for(self, store: "TripleStore") -> "StatisticsCatalog":
        """An independent catalog for a cloned store.

        Counters are copied directly (codes are identical between a
        store and its clone); the pattern memo starts empty and synced
        to the clone's version.
        """
        clone = StatisticsCatalog(store)
        clone._col_values = tuple(Counter(counter) for counter in self._col_values)
        return clone
