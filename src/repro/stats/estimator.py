"""The shared System-R cardinality estimator.

One implementation of the textbook formulas under the uniformity and
independence assumptions (the paper's Section 3.3 model), consumed by
every optimizer in the system:

* the view-selection cost model prices view extents and rewriting plans
  with :meth:`CardinalityEstimator.conjunction_cardinality`;
* the engine planner orders joins with
  :meth:`CardinalityEstimator.join_order` and feeds
  :meth:`CardinalityEstimator.prefix_cardinalities` into its cost-based
  engine selection.

The estimate of a conjunction is the product of the atoms' exact
pattern counts times, for each join variable, ``1/max(distinct)`` per
*extra* occurrence. All divisions are guarded (``max(distinct, 1)``),
so the formulas are well-defined on empty and degenerate stores.

Estimates are memoized per atom tuple; the memo is flushed lazily when
the underlying statistics provider exposes a moving ``version`` (the
store mutation counter), so long-lived estimators never serve stale
numbers yet never recount from scratch.
"""

from __future__ import annotations

from typing import Sequence

from repro.query.cq import ATTRIBUTES, Atom, ConjunctiveQuery, Variable
from repro.stats.provider import Statistics


class CardinalityEstimator:
    """System-R cardinality formulas over any :class:`Statistics` provider."""

    def __init__(self, statistics: Statistics) -> None:
        self.statistics = statistics
        self._conjunction_cache: dict[tuple[Atom, ...], float] = {}
        self._query_cache: dict[int, tuple[float, object]] = {}
        self._cache_version = getattr(statistics, "version", None)

    def _fresh_cache(self) -> dict[tuple[Atom, ...], float]:
        """The memo, flushed if the provider's version has moved."""
        version = getattr(self.statistics, "version", None)
        if version != self._cache_version:
            self._conjunction_cache.clear()
            self._query_cache.clear()
            self._cache_version = version
        return self._conjunction_cache

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------

    def atom_cardinality(self, atom: Atom) -> int:
        """Exact (or modeled) match count of one atom's constant pattern."""
        return self.statistics.atom_count(atom)

    def join_selectivity(self, columns: Sequence[str]) -> float:
        """``1/max(distinct)`` for one join variable's column set.

        The denominator is clamped to 1 so empty stores (all distinct
        counts zero) never divide by zero — the selectivity degenerates
        to 1, which only overestimates.
        """
        denominator = max(
            (self.statistics.distinct_values(column) for column in columns),
            default=0,
        )
        return 1.0 / max(denominator, 1)

    def conjunction_cardinality(self, atoms: Sequence[Atom]) -> float:
        """Estimated join cardinality of a conjunction of atoms.

        Product of atom counts times one selectivity factor per extra
        occurrence of each variable, clamped to at least one row: a view
        kept by the search always has a witness in satisfiable
        workloads, and the clamp avoids degenerate zero-cost states when
        the independence assumption drives the product below one row.

        The factors are multiplied in sorted order, which makes the
        estimate *bitwise invariant* under atom reordering and variable
        renaming — isomorphic view bodies always price to the identical
        float. The view-selection cost model's cross-state memo (keyed
        on canonical view signatures) relies on exactly this invariance
        to stay indistinguishable from a full recompute.
        """
        key = tuple(atoms)
        cache = self._fresh_cache()
        cached = cache.get(key)
        if cached is not None:
            return cached
        counts = sorted(float(self.statistics.atom_count(atom)) for atom in key)
        occurrences: dict[Variable, list[str]] = {}
        for atom in key:
            for attribute, term in zip(ATTRIBUTES, atom):
                if isinstance(term, Variable):
                    occurrences.setdefault(term, []).append(attribute)
        factors = sorted(
            self.join_selectivity(columns) ** (len(columns) - 1)
            for columns in occurrences.values()
            if len(columns) > 1
        )
        estimate = 1.0
        for count in counts:
            estimate *= count
        for factor in factors:
            estimate *= factor
        estimate = max(estimate, 1.0)
        cache[key] = estimate
        return estimate

    def query_cardinality(self, query: ConjunctiveQuery) -> float:
        """``conjunction_cardinality`` of a query's body, memoized per
        query object.

        Query objects are immutable and shared across thousands of
        search states; the id-keyed fast path skips even the hashing of
        the atom tuple that the conjunction memo would pay per call.
        """
        self._fresh_cache()  # validates both memos against the version
        cached = self._query_cache.get(id(query))
        if cached is not None and cached[1] is query:
            return cached[0]
        estimate = self.conjunction_cardinality(query.atoms)
        if len(self._query_cache) > 500_000:
            self._query_cache.clear()
        self._query_cache[id(query)] = (estimate, query)
        return estimate

    # ------------------------------------------------------------------
    # Join ordering
    # ------------------------------------------------------------------

    def join_order(self, atoms: Sequence[Atom]) -> list[int]:
        """Greedy selectivity order over a conjunction's atoms.

        Start from the rarest atom, then always expand with the rarest
        atom connected to the variables bound so far, falling back to a
        Cartesian step only when nothing is connected. Ties break on
        atom index, keeping plans deterministic.
        """
        counts = [self.atom_cardinality(atom) for atom in atoms]
        remaining = set(range(len(atoms)))
        order: list[int] = []
        bound: set[Variable] = set()
        while remaining:
            if bound:
                connected = [i for i in remaining if atoms[i].variables() & bound]
                pool = connected or sorted(remaining)
            else:
                pool = sorted(remaining)
            best = min(pool, key=lambda i: (counts[i], i))
            order.append(best)
            remaining.discard(best)
            bound |= atoms[best].variables()
        return order

    def prefix_cardinalities(
        self, atoms: Sequence[Atom], order: Sequence[int]
    ) -> list[float]:
        """Estimated row count after each step of a join order.

        ``result[k]`` is the System-R estimate for the conjunction of
        the first ``k + 1`` atoms of ``order`` — the input/output sizes
        the cost-based engine selection prices each join step with.
        Built incrementally in one pass: each step multiplies in the
        next atom's count and replaces the affected join variables'
        selectivity factors (dividing out the old power, multiplying
        the new), which telescopes to exactly the
        :meth:`conjunction_cardinality` formula per prefix without
        re-deriving any prefix product from scratch.
        """
        estimate = 1.0
        occurrences: dict[Variable, list[str]] = {}
        prefixes: list[float] = []
        for index in order:
            atom = atoms[index]
            estimate *= float(self.statistics.atom_count(atom))
            for attribute, term in zip(ATTRIBUTES, atom):
                if not isinstance(term, Variable):
                    continue
                columns = occurrences.setdefault(term, [])
                if columns:
                    old = self.join_selectivity(columns) ** (len(columns) - 1)
                    columns.append(attribute)
                    estimate *= (
                        self.join_selectivity(columns) ** (len(columns) - 1) / old
                    )
                else:
                    columns.append(attribute)
            # Clamp the *reported* prefix only; the running product keeps
            # full precision so later prefixes match the direct formula.
            prefixes.append(max(estimate, 1.0))
        return prefixes
