"""Statistics providers: the protocol every cardinality source satisfies.

The :class:`Statistics` protocol is what the shared cardinality
estimator (:mod:`repro.stats.estimator`), the view-selection cost model
(:mod:`repro.selection.costs`) and the engine planner
(:mod:`repro.engine.planner`) consume. Implementations:

* :class:`CatalogStatistics` — exact figures read from a store's
  incrementally maintained :class:`~repro.stats.catalog.StatisticsCatalog`
  (the canonical provider; ``repro.selection.statistics.StoreStatistics``
  is a thin alias kept for the historical import path);
* :class:`FixedStatistics` / :class:`ZipfStatistics` — deterministic
  synthetic figures for dataset-free tests and benchmarks;
* ``repro.selection.statistics.ReformulationAwareStatistics`` — the
  Section 4.3 post-reformulation counts (lives in the selection layer
  because it needs the reformulation machinery).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.query.cq import Atom, Variable
from repro.rdf.terms import Term
from repro.stats.catalog import StatisticsCatalog


@runtime_checkable
class Statistics(Protocol):
    """What a cardinality estimator needs to know about the data."""

    def atom_count(self, atom: Atom) -> int:
        """Exact (or modeled) number of triples matching the atom's constants."""

    def distinct_values(self, column: str) -> int:
        """Distinct values in triple-table column ``'s'``/``'p'``/``'o'``."""

    def total_triples(self) -> int:
        """Size of the data set (the cardinality of an all-variable atom)."""

    def average_term_size(self) -> float:
        """Average rendered size of one term (the width unit)."""


def atom_pattern(atom: Atom) -> tuple[Term | None, Term | None, Term | None]:
    """The atom's constants, with None at variable positions.

    A repeated variable inside one atom (e.g. ``t(X, p, X)``) is rare and
    ignored by the pattern count — an overestimate, which is safe for a
    cost model.
    """
    return tuple(
        None if isinstance(term, Variable) else term for term in atom
    )  # type: ignore[return-value]


class CatalogStatistics:
    """Exact statistics read from an incrementally maintained catalog.

    Every figure is an O(1) read: pattern counts come from the store's
    hexastore indexes through the catalog's version-aware memo, column
    distincts and the average term size from the catalog's live
    counters. The provider itself holds no state to refresh, so it can
    be constructed per use site for free.
    """

    def __init__(self, catalog: StatisticsCatalog) -> None:
        self._catalog = catalog

    @property
    def version(self) -> int:
        """The underlying store's mutation counter (staleness token)."""
        return self._catalog.version

    def atom_count(self, atom: Atom) -> int:
        return self._catalog.pattern_count(*atom_pattern(atom))

    def distinct_values(self, column: str) -> int:
        return self._catalog.distinct_values(column)

    def total_triples(self) -> int:
        return self._catalog.total_triples()

    def average_term_size(self) -> float:
        return self._catalog.average_term_size()


class ZipfStatistics:
    """Deterministic skewed statistics for dataset-free benchmarks.

    Real RDF datasets (Barton included) have heavily skewed property
    extents: a few record-keeping properties carry most triples, the
    long tail is rare. This provider assigns each constant a stable
    pseudo-random selectivity on a log scale, so atoms over different
    constants differ by orders of magnitude — which is what makes
    breaking views along rare-property atoms worthwhile.
    """

    def __init__(
        self,
        total: int = 1_000_000,
        seed: int = 0,
        min_selectivity: float = 1e-4,
        max_selectivity: float = 5e-2,
        distinct: dict[str, int] | None = None,
        term_size: float = 16.0,
    ) -> None:
        self._total = total
        self._seed = seed
        self._min = min_selectivity
        self._max = max_selectivity
        self._distinct = distinct or {"s": 50_000, "p": 100, "o": 40_000}
        self._term_size = term_size

    def _selectivity(self, constant, position: int) -> float:
        import hashlib
        import math

        digest = hashlib.sha256(
            f"{self._seed}:{position}:{constant.n3()}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64
        log_min, log_max = math.log(self._min), math.log(self._max)
        return math.exp(log_min + unit * (log_max - log_min))

    def atom_count(self, atom: Atom) -> int:
        count = float(self._total)
        for position, term in enumerate(atom):
            if not isinstance(term, Variable):
                count *= self._selectivity(term, position)
        return max(1, int(count))

    def distinct_values(self, column: str) -> int:
        return self._distinct[column]

    def total_triples(self) -> int:
        return self._total

    def average_term_size(self) -> float:
        return self._term_size


class FixedStatistics:
    """Deterministic synthetic statistics for unit tests and search
    benchmarks that should not depend on a data set.

    ``atom_count`` scales the data-set size down by a fixed factor per
    constant in the atom, a crude but monotone stand-in for selectivity.
    """

    def __init__(
        self,
        total: int = 1_000_000,
        selectivity: float = 0.01,
        distinct: dict[str, int] | None = None,
        term_size: float = 16.0,
    ) -> None:
        self._total = total
        self._selectivity = selectivity
        self._distinct = distinct or {"s": 50_000, "p": 100, "o": 40_000}
        self._term_size = term_size

    def atom_count(self, atom: Atom) -> int:
        constants = sum(1 for term in atom if not isinstance(term, Variable))
        count = self._total * (self._selectivity**constants)
        return max(1, int(count))

    def distinct_values(self, column: str) -> int:
        return self._distinct[column]

    def total_triples(self) -> int:
        return self._total

    def average_term_size(self) -> float:
        return self._term_size
