"""repro.stats — the unified statistics subsystem.

One shared, incrementally maintained statistics layer feeding every
optimizer in the system:

* :class:`StatisticsCatalog` (``store.stats``) — per-predicate triple
  counts, per-column distinct counts and the average term size, kept up
  to date by O(1) counter updates on every ``add``/``remove`` and
  invalidated through the store's ``version`` counter — never recomputed
  from scratch on the hot path;
* :class:`Statistics` — the provider protocol; :class:`CatalogStatistics`
  is the canonical exact implementation over a catalog,
  :class:`FixedStatistics` / :class:`ZipfStatistics` are deterministic
  synthetic providers for dataset-free tests and benchmarks;
* :class:`CardinalityEstimator` — the System-R formulas implemented
  once: conjunction cardinalities for the view-selection cost model,
  greedy join ordering and prefix cardinalities for the engine's
  cost-based plan and engine selection.

The historical import path ``repro.selection.statistics`` re-exports the
providers; new code should import from here.

Exports resolve lazily (PEP 562): ``repro.rdf.store`` sits *below* the
query layer yet owns a :class:`StatisticsCatalog`, so this package init
must stay import-free — an eager ``from repro.stats.estimator import …``
here would drag ``repro.query`` (and through it the engine) into the
store's import chain and close a cycle.
"""

from importlib import import_module

_EXPORTS = {
    "StatisticsCatalog": "repro.stats.catalog",
    "CardinalityEstimator": "repro.stats.estimator",
    "CatalogStatistics": "repro.stats.provider",
    "FixedStatistics": "repro.stats.provider",
    "Statistics": "repro.stats.provider",
    "ZipfStatistics": "repro.stats.provider",
    "atom_pattern": "repro.stats.provider",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "CardinalityEstimator",
    "CatalogStatistics",
    "FixedStatistics",
    "Statistics",
    "StatisticsCatalog",
    "ZipfStatistics",
    "atom_pattern",
]
