"""Predefined RDF / RDFS vocabulary URIs used by the entailment rules.

Only the URIs relevant to the paper's setting (Table 1 and Section 4.1)
are defined; they are module-level constants so call sites read like the
paper: ``vocabulary.RDF_TYPE``, ``vocabulary.RDFS_SUBCLASSOF``...
"""

from repro.rdf.terms import URI

RDF_NS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
RDFS_NS = "http://www.w3.org/2000/01/rdf-schema#"

RDF_TYPE = URI(RDF_NS + "type")
RDF_PROPERTY = URI(RDF_NS + "Property")

RDFS_CLASS = URI(RDFS_NS + "Class")
RDFS_SUBCLASSOF = URI(RDFS_NS + "subClassOf")
RDFS_SUBPROPERTYOF = URI(RDFS_NS + "subPropertyOf")
RDFS_DOMAIN = URI(RDFS_NS + "domain")
RDFS_RANGE = URI(RDFS_NS + "range")

#: URIs that carry schema-level semantics; used to split a dataset into
#: schema statements and plain data triples.
SCHEMA_PROPERTIES = frozenset(
    {RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF, RDFS_DOMAIN, RDFS_RANGE}
)
