"""RDF term model: URIs, literals, and blank nodes.

Terms are small immutable value objects. They are hashable so they can be
dictionary-encoded (:mod:`repro.rdf.dictionary`) and used as keys in the
store indexes (:mod:`repro.rdf.store`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class URI:
    """A Uniform Resource Identifier reference.

    The ``value`` is kept verbatim; no IRI normalization is attempted
    (the paper's datasets use opaque URIs).
    """

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise ValueError("URI value must be a non-empty string")

    def n3(self) -> str:
        """Render in N-Triples syntax."""
        return f"<{self.value}>"

    def __str__(self) -> str:
        return self.value

    def __repr__(self) -> str:
        return f"URI({self.value!r})"


@dataclass(frozen=True, slots=True)
class Literal:
    """An RDF literal (a value), optionally tagged with a datatype URI.

    Language tags are supported through ``language``; a literal has at most
    one of ``datatype`` / ``language`` per the RDF specification.
    """

    lexical: str
    datatype: URI | None = None
    language: str | None = None

    def __post_init__(self) -> None:
        if self.datatype is not None and self.language is not None:
            raise ValueError("a literal cannot have both a datatype and a language tag")

    def n3(self) -> str:
        """Render in N-Triples syntax."""
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        rendered = f'"{escaped}"'
        if self.language is not None:
            return f"{rendered}@{self.language}"
        if self.datatype is not None:
            return f"{rendered}^^{self.datatype.n3()}"
        return rendered

    def __str__(self) -> str:
        return self.lexical

    def __repr__(self) -> str:
        extras = ""
        if self.datatype is not None:
            extras = f", datatype={self.datatype!r}"
        elif self.language is not None:
            extras = f", language={self.language!r}"
        return f"Literal({self.lexical!r}{extras})"


@dataclass(frozen=True, slots=True)
class BlankNode:
    """A blank node: a placeholder for an unknown URI or literal.

    From a database perspective blank nodes behave as existential
    variables in the data (Section 2 of the paper): two triples referring
    to the same blank node label join on it.
    """

    label: str

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("blank node label must be a non-empty string")

    def n3(self) -> str:
        """Render in N-Triples syntax."""
        return f"_:{self.label}"

    def __str__(self) -> str:
        return f"_:{self.label}"

    def __repr__(self) -> str:
        return f"BlankNode({self.label!r})"


Term = Union[URI, Literal, BlankNode]


def is_term(value: object) -> bool:
    """Return True if ``value`` is an RDF term."""
    return isinstance(value, (URI, Literal, BlankNode))


def term_to_parts(term: Term) -> tuple[str, str, str | None, str | None]:
    """Flatten a term to ``(kind, value, datatype, language)`` parts.

    The canonical structural codec: exact for every term (no rendering
    or parsing involved). Store snapshots persist dictionary entries
    through it; extend it (and :func:`term_from_parts`) first when a
    term type grows a new attribute.
    """
    if isinstance(term, URI):
        return ("uri", term.value, None, None)
    if isinstance(term, Literal):
        datatype = term.datatype.value if term.datatype is not None else None
        return ("literal", term.lexical, datatype, term.language)
    if isinstance(term, BlankNode):
        return ("bnode", term.label, None, None)
    raise ValueError(f"cannot serialize non-term value {term!r}")


def term_from_parts(
    kind: str, value: str, datatype: str | None, language: str | None
) -> Term:
    """Rebuild a term from its parts (exact inverse of term_to_parts)."""
    if kind == "uri":
        return URI(value)
    if kind == "literal":
        return Literal(
            value,
            datatype=URI(datatype) if datatype is not None else None,
            language=language,
        )
    if kind == "bnode":
        return BlankNode(value)
    raise ValueError(f"unknown term kind {kind!r}")
