"""A small, strict N-Triples parser and serializer.

Supports the line-based N-Triples syntax: ``<uri>``, ``_:label`` blank
nodes, and ``"literal"`` with optional ``@lang`` or ``^^<datatype>``.
Comment lines (``#``) and blank lines are skipped.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from repro.rdf.terms import BlankNode, Literal, Term, URI
from repro.rdf.triples import Triple


class NTriplesParseError(ValueError):
    """Raised on malformed N-Triples input, with line information."""

    def __init__(self, message: str, line_number: int, line: str) -> None:
        super().__init__(f"line {line_number}: {message}: {line.strip()!r}")
        self.line_number = line_number
        self.line = line


_TERM_RE = re.compile(
    r"""\s*(?:
        <(?P<uri>[^>]*)>
      | _:(?P<bnode>[A-Za-z0-9_]+)
      | "(?P<lit>(?:[^"\\]|\\.)*)"
            (?:@(?P<lang>[A-Za-z0-9-]+)|\^\^<(?P<dtype>[^>]*)>)?
    )""",
    re.VERBOSE,
)

_UNESCAPES = {
    "\\\\": "\\",
    '\\"': '"',
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
}


def _unescape(text: str) -> str:
    out = []
    i = 0
    while i < len(text):
        if text[i] == "\\" and i + 1 < len(text):
            pair = text[i : i + 2]
            if pair in _UNESCAPES:
                out.append(_UNESCAPES[pair])
                i += 2
                continue
        out.append(text[i])
        i += 1
    return "".join(out)


def _parse_term(text: str, position: int) -> tuple[Term, int]:
    """Parse one term starting at ``position``; returns (term, next position)."""
    match = _TERM_RE.match(text, position)
    if match is None:
        raise ValueError(f"expected a term at offset {position}")
    if match.group("uri") is not None:
        return URI(match.group("uri")), match.end()
    if match.group("bnode") is not None:
        return BlankNode(match.group("bnode")), match.end()
    lexical = _unescape(match.group("lit"))
    language = match.group("lang")
    datatype = match.group("dtype")
    if language is not None:
        return Literal(lexical, language=language), match.end()
    if datatype is not None:
        return Literal(lexical, datatype=URI(datatype)), match.end()
    return Literal(lexical), match.end()


def parse_ntriples_line(line: str) -> Triple | None:
    """Parse one N-Triples line; returns None for blank/comment lines."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    s, position = _parse_term(line, 0)
    p, position = _parse_term(line, position)
    o, position = _parse_term(line, position)
    remainder = line[position:].strip()
    if remainder != ".":
        raise ValueError("expected terminating '.'")
    return Triple(s, p, o)


def parse_ntriples(text: str) -> Iterator[Triple]:
    """Parse N-Triples text into triples, raising on malformed lines."""
    for line_number, line in enumerate(text.splitlines(), start=1):
        try:
            triple = parse_ntriples_line(line)
        except ValueError as exc:
            raise NTriplesParseError(str(exc), line_number, line) from exc
        if triple is not None:
            yield triple


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize triples as N-Triples text (one per line)."""
    return "".join(f"{triple.n3()} .\n" for triple in triples)
