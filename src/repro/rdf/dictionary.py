"""Dictionary encoding of RDF terms.

The paper stores data "in a dictionary-encoded triple table, using a
distinct integer for each distinct URI or literal" (Section 6). This module
provides that bidirectional mapping. The encoding dictionary also records
the average rendered size per position-agnostic term, which the cost model
uses to estimate view storage space.
"""

from __future__ import annotations

from repro.rdf.terms import Literal, Term, is_term


class Dictionary:
    """Bidirectional term <-> integer code mapping.

    Codes are dense non-negative integers assigned in first-seen order,
    which keeps encodings deterministic for a fixed insertion sequence.
    """

    def __init__(self) -> None:
        self._term_to_code: dict[Term, int] = {}
        self._code_to_term: list[Term] = []
        self._literal_codes: set[int] = set()
        self._total_size = 0

    def __len__(self) -> int:
        return len(self._code_to_term)

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_code

    def encode(self, term: Term) -> int:
        """Return the code for ``term``, assigning a fresh one if unseen."""
        code = self._term_to_code.get(term)
        if code is not None:
            return code
        if not is_term(term):
            raise TypeError(f"cannot encode non-term value {term!r}")
        code = len(self._code_to_term)
        self._term_to_code[term] = code
        self._code_to_term.append(term)
        if isinstance(term, Literal):
            self._literal_codes.add(code)
        self._total_size += len(term.n3())
        return code

    def is_literal_code(self, code: int) -> bool:
        """True when ``code`` encodes a literal (O(1), no decode)."""
        return code in self._literal_codes

    def lookup(self, term: Term) -> int | None:
        """Return the code for ``term`` or None if the term is unknown."""
        return self._term_to_code.get(term)

    def decode(self, code: int) -> Term:
        """Return the term for ``code``; raises KeyError for unknown codes."""
        if 0 <= code < len(self._code_to_term):
            return self._code_to_term[code]
        raise KeyError(f"unknown dictionary code {code}")

    def items(self, start: int = 0):
        """``(code, term)`` pairs in code order, from code ``start`` on.

        The snapshot writer serializes the dictionary through this;
        codes are dense, so re-encoding the terms in this order on an
        empty dictionary reproduces every assignment exactly — and
        because codes are append-only, ``start`` lets an incremental
        sync serialize just the terms added since the last save.
        """
        return enumerate(self._code_to_term[start:], start)

    def copy(self) -> "Dictionary":
        """An independent clone preserving every code assignment.

        Used by :meth:`repro.rdf.store.TripleStore.copy` so cloned stores
        keep identical encodings without re-encoding any term.
        """
        clone = Dictionary()
        clone._term_to_code = dict(self._term_to_code)
        clone._code_to_term = list(self._code_to_term)
        clone._literal_codes = set(self._literal_codes)
        clone._total_size = self._total_size
        return clone

    def average_term_size(self) -> float:
        """Average rendered (N-Triples) byte size over all encoded terms.

        Used by the cost model as the per-attribute width when estimating
        view space occupancy. Returns a nominal width for an empty
        dictionary so cost formulas stay well-defined.
        """
        if not self._code_to_term:
            return 8.0
        return self._total_size / len(self._code_to_term)
