"""RDF Schema model: the four semantic relationships of Table 1.

An :class:`RDFSchema` is a set of statements of the forms

* ``(c1, rdfs:subClassOf, c2)``
* ``(p1, rdfs:subPropertyOf, p2)``
* ``(p, rdfs:domain, c)``
* ``(p, rdfs:range, c)``

with accessors for both the *direct* statements (what Algorithm 1
iterates over) and their *transitive closures* (what saturation needs).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

from repro.rdf import vocabulary
from repro.rdf.terms import URI
from repro.rdf.triples import Triple


class SchemaKind(Enum):
    """The four RDFS relationship kinds of Table 1."""

    SUBCLASS = "rdfs:subClassOf"
    SUBPROPERTY = "rdfs:subPropertyOf"
    DOMAIN = "rdfs:domain"
    RANGE = "rdfs:range"


_KIND_TO_PROPERTY = {
    SchemaKind.SUBCLASS: vocabulary.RDFS_SUBCLASSOF,
    SchemaKind.SUBPROPERTY: vocabulary.RDFS_SUBPROPERTYOF,
    SchemaKind.DOMAIN: vocabulary.RDFS_DOMAIN,
    SchemaKind.RANGE: vocabulary.RDFS_RANGE,
}
_PROPERTY_TO_KIND = {uri: kind for kind, uri in _KIND_TO_PROPERTY.items()}


@dataclass(frozen=True, slots=True)
class SchemaStatement:
    """One RDFS statement, e.g. ``painting rdfs:subClassOf picture``."""

    kind: SchemaKind
    left: URI
    right: URI

    def as_triple(self) -> Triple:
        """The statement as an RDF triple."""
        return Triple(self.left, _KIND_TO_PROPERTY[self.kind], self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.kind.value} {self.right}"


class RDFSchema:
    """A set of RDFS statements with direct and transitive accessors."""

    def __init__(self, statements: Iterable[SchemaStatement] = ()) -> None:
        self._statements: list[SchemaStatement] = []
        self._seen: set[SchemaStatement] = set()
        # Direct adjacency, per kind.
        self._sub_class: dict[URI, set[URI]] = {}
        self._sub_property: dict[URI, set[URI]] = {}
        self._domain: dict[URI, set[URI]] = {}
        self._range: dict[URI, set[URI]] = {}
        for statement in statements:
            self.add(statement)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(self, statement: SchemaStatement) -> bool:
        """Add a statement; returns False if it was already present."""
        if statement in self._seen:
            return False
        self._seen.add(statement)
        self._statements.append(statement)
        table = {
            SchemaKind.SUBCLASS: self._sub_class,
            SchemaKind.SUBPROPERTY: self._sub_property,
            SchemaKind.DOMAIN: self._domain,
            SchemaKind.RANGE: self._range,
        }[statement.kind]
        table.setdefault(statement.left, set()).add(statement.right)
        return True

    def add_subclass(self, sub: URI, sup: URI) -> bool:
        """Declare ``sub rdfs:subClassOf sup``."""
        return self.add(SchemaStatement(SchemaKind.SUBCLASS, sub, sup))

    def add_subproperty(self, sub: URI, sup: URI) -> bool:
        """Declare ``sub rdfs:subPropertyOf sup``."""
        return self.add(SchemaStatement(SchemaKind.SUBPROPERTY, sub, sup))

    def add_domain(self, prop: URI, cls: URI) -> bool:
        """Declare ``prop rdfs:domain cls``."""
        return self.add(SchemaStatement(SchemaKind.DOMAIN, prop, cls))

    def add_range(self, prop: URI, cls: URI) -> bool:
        """Declare ``prop rdfs:range cls``."""
        return self.add(SchemaStatement(SchemaKind.RANGE, prop, cls))

    @classmethod
    def from_triples(cls, triples: Iterable[Triple]) -> "RDFSchema":
        """Build a schema from the RDFS statements found in ``triples``.

        Non-schema triples are ignored, so a full dataset can be passed.
        """
        schema = cls()
        for triple in triples:
            kind = _PROPERTY_TO_KIND.get(triple.p)  # type: ignore[arg-type]
            if kind is None:
                continue
            if isinstance(triple.s, URI) and isinstance(triple.o, URI):
                schema.add(SchemaStatement(kind, triple.s, triple.o))
        return schema

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of statements — the |S| of Theorem 4.1."""
        return len(self._statements)

    def __iter__(self) -> Iterator[SchemaStatement]:
        return iter(self._statements)

    def __contains__(self, statement: SchemaStatement) -> bool:
        return statement in self._seen

    def statements(self, kind: SchemaKind | None = None) -> list[SchemaStatement]:
        """All statements, optionally filtered by kind."""
        if kind is None:
            return list(self._statements)
        return [st for st in self._statements if st.kind == kind]

    @property
    def classes(self) -> set[URI]:
        """All classes mentioned anywhere in the schema."""
        found: set[URI] = set()
        for sub, sups in self._sub_class.items():
            found.add(sub)
            found.update(sups)
        for table in (self._domain, self._range):
            for classes in table.values():
                found.update(classes)
        return found

    @property
    def properties(self) -> set[URI]:
        """All properties mentioned anywhere in the schema."""
        found: set[URI] = set()
        for sub, sups in self._sub_property.items():
            found.add(sub)
            found.update(sups)
        found.update(self._domain)
        found.update(self._range)
        return found

    # Direct accessors (what Algorithm 1's rule conditions consult).

    def direct_superclasses(self, cls: URI) -> set[URI]:
        """Classes ``c2`` with a direct ``cls rdfs:subClassOf c2`` statement."""
        return set(self._sub_class.get(cls, ()))

    def direct_subclasses(self, cls: URI) -> set[URI]:
        """Classes ``c1`` with a direct ``c1 rdfs:subClassOf cls`` statement."""
        return {sub for sub, sups in self._sub_class.items() if cls in sups}

    def direct_superproperties(self, prop: URI) -> set[URI]:
        """Properties ``p2`` with a direct ``prop rdfs:subPropertyOf p2``."""
        return set(self._sub_property.get(prop, ()))

    def direct_subproperties(self, prop: URI) -> set[URI]:
        """Properties ``p1`` with a direct ``p1 rdfs:subPropertyOf prop``."""
        return {sub for sub, sups in self._sub_property.items() if prop in sups}

    def domains(self, prop: URI) -> set[URI]:
        """Classes declared as domain of ``prop``."""
        return set(self._domain.get(prop, ()))

    def ranges(self, prop: URI) -> set[URI]:
        """Classes declared as range of ``prop``."""
        return set(self._range.get(prop, ()))

    def properties_with_domain(self, cls: URI) -> set[URI]:
        """Properties whose declared domain includes ``cls``."""
        return {prop for prop, classes in self._domain.items() if cls in classes}

    def properties_with_range(self, cls: URI) -> set[URI]:
        """Properties whose declared range includes ``cls``."""
        return {prop for prop, classes in self._range.items() if cls in classes}

    # Transitive accessors (what saturation consumes).

    def superclasses(self, cls: URI) -> set[URI]:
        """Strict transitive closure of ``rdfs:subClassOf`` above ``cls``."""
        return _reachable(cls, self._sub_class)

    def subclasses(self, cls: URI) -> set[URI]:
        """All classes transitively below ``cls`` (strict)."""
        return {c for c in self.classes if cls in _reachable(c, self._sub_class)}

    def superproperties(self, prop: URI) -> set[URI]:
        """Strict transitive closure of ``rdfs:subPropertyOf`` above ``prop``."""
        return _reachable(prop, self._sub_property)

    def subproperties(self, prop: URI) -> set[URI]:
        """All properties transitively below ``prop`` (strict)."""
        return {p for p in self.properties if prop in _reachable(p, self._sub_property)}

    def triples(self) -> list[Triple]:
        """All statements rendered as RDF triples."""
        return [statement.as_triple() for statement in self._statements]


def _reachable(start: URI, adjacency: dict[URI, set[URI]]) -> set[URI]:
    """Nodes strictly reachable from ``start`` following ``adjacency``."""
    found: set[URI] = set()
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for successor in adjacency.get(node, ()):
            if successor not in found:
                found.add(successor)
                frontier.append(successor)
    return found
