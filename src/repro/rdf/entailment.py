"""RDFS saturation: materializing the implicit triples of Section 4.1.

We implement the RDF entailment rules associated with an RDF Schema
(the "third kind" of rules in the paper, derived from Table 1):

1. ``(s, rdf:type, c1)`` and ``c1 rdfs:subClassOf c2``   entail ``(s, rdf:type, c2)``
2. ``(s, p1, o)``       and ``p1 rdfs:subPropertyOf p2`` entail ``(s, p2, o)``
3. ``(s, p, o)``        and ``p rdfs:domain c``          entail ``(s, rdf:type, c)``
4. ``(s, p, o)``        and ``p rdfs:range c``           entail ``(o, rdf:type, c)``

The rules are applied to a fixpoint with a worklist, so transitive chains
(subclass-of-subclass, domain inherited through subproperties, ...) are
captured without precomputing closures. Rule 4 is skipped when the object
is a literal, since literals cannot be subjects of well-formed triples.
"""

from __future__ import annotations

from typing import Iterable

from repro.rdf import vocabulary
from repro.rdf.schema import RDFSchema
from repro.rdf.store import TripleStore
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple


def _consequences(triple: Triple, schema: RDFSchema) -> Iterable[Triple]:
    """Direct (one-step) consequences of a single triple under ``schema``."""
    s, p, o = triple
    if p == vocabulary.RDF_TYPE and isinstance(o, URI):
        # Rule 1: propagate the instance up the class hierarchy.
        for superclass in schema.direct_superclasses(o):
            yield Triple(s, vocabulary.RDF_TYPE, superclass)
        return
    if not isinstance(p, URI) or p in vocabulary.SCHEMA_PROPERTIES:
        return
    # Rule 2: propagate the assertion up the property hierarchy.
    for superproperty in schema.direct_superproperties(p):
        yield Triple(s, superproperty, o)
    # Rule 3: the subject belongs to the property's domain classes.
    for cls in schema.domains(p):
        yield Triple(s, vocabulary.RDF_TYPE, cls)
    # Rule 4: the object belongs to the property's range classes
    # (only when the object may legally be a subject).
    if not isinstance(o, Literal):
        for cls in schema.ranges(p):
            yield Triple(o, vocabulary.RDF_TYPE, cls)


def saturation_triples(
    triples: Iterable[Triple], schema: RDFSchema
) -> set[Triple]:
    """All triples entailed by ``triples`` under ``schema`` (fixpoint).

    The result includes the input triples; the *implicit* triples are the
    result minus the input.
    """
    saturated: set[Triple] = set()
    worklist: list[Triple] = []
    for triple in triples:
        if triple not in saturated:
            saturated.add(triple)
            worklist.append(triple)
    while worklist:
        triple = worklist.pop()
        for consequence in _consequences(triple, schema):
            if consequence not in saturated:
                saturated.add(consequence)
                worklist.append(consequence)
    return saturated


def saturate(
    store: TripleStore, schema: RDFSchema, backend: str | None = None
) -> TripleStore:
    """Return a *new* store containing the saturation of ``store``.

    The input store is left untouched, mirroring the paper's observation
    that saturation may be impossible without write access (Section 4.2);
    callers choosing the saturation route build the saturated copy. The
    copy lives on the same kind of storage backend as the source — for
    a SQLite-backed store that is an anonymous SQLite temporary
    database (disk-spilled beyond the page cache, not Python object
    memory) — unless ``backend`` overrides it.
    """
    saturated_store = TripleStore(backend=backend or store.backend_name)
    for triple in saturation_triples(iter(store), schema):
        saturated_store.add(triple)
    return saturated_store


def implicit_triples(store: TripleStore, schema: RDFSchema) -> set[Triple]:
    """Only the entailed triples that are not already explicit in ``store``."""
    explicit = set(iter(store))
    return saturation_triples(explicit, schema) - explicit
