"""RDF triples and well-formedness checking.

Per the RDF specification (and Section 2 of the paper), a triple
``(s, p, o)`` is well-formed when:

* the subject is a URI or a blank node,
* the property is a URI,
* the object is a URI, a blank node, or a literal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rdf.terms import URI, BlankNode, Literal, Term


class WellFormednessError(ValueError):
    """Raised when constructing a triple that violates RDF well-formedness."""


@dataclass(frozen=True, slots=True)
class Triple:
    """A well-formed RDF triple ``(subject, property, object)``."""

    s: Term
    p: Term
    o: Term

    def __post_init__(self) -> None:
        if not isinstance(self.s, (URI, BlankNode)):
            raise WellFormednessError(
                f"triple subject must be a URI or blank node, got {self.s!r}"
            )
        if not isinstance(self.p, URI):
            raise WellFormednessError(f"triple property must be a URI, got {self.p!r}")
        if not isinstance(self.o, (URI, BlankNode, Literal)):
            raise WellFormednessError(
                f"triple object must be a URI, blank node or literal, got {self.o!r}"
            )

    def n3(self) -> str:
        """Render in N-Triples syntax (without the trailing dot)."""
        return f"{self.s.n3()} {self.p.n3()} {self.o.n3()}"

    def as_tuple(self) -> tuple[Term, Term, Term]:
        """Return the triple as a plain ``(s, p, o)`` tuple."""
        return (self.s, self.p, self.o)

    def __iter__(self):
        return iter((self.s, self.p, self.o))

    def __repr__(self) -> str:
        return f"Triple({self.s!r}, {self.p!r}, {self.o!r})"
