"""RDF substrate: terms, triples, dictionary encoding, indexed storage,
RDF Schema modeling, RDFS entailment (saturation), and N-Triples I/O.

This package is the storage and semantics layer that the view-selection
algorithms (``repro.selection``) and the reformulation algorithm
(``repro.reformulation``) are built upon.
"""

from repro.rdf.terms import URI, Literal, BlankNode, Term, is_term
from repro.rdf.triples import Triple, WellFormednessError
from repro.rdf.dictionary import Dictionary
from repro.rdf.store import TripleStore
from repro.rdf.schema import RDFSchema, SchemaStatement, SchemaKind
from repro.rdf.entailment import saturate, saturation_triples
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.rdf import vocabulary

__all__ = [
    "URI",
    "Literal",
    "BlankNode",
    "Term",
    "is_term",
    "Triple",
    "WellFormednessError",
    "Dictionary",
    "TripleStore",
    "RDFSchema",
    "SchemaStatement",
    "SchemaKind",
    "saturate",
    "saturation_triples",
    "parse_ntriples",
    "serialize_ntriples",
    "vocabulary",
]
