"""In-memory dictionary-encoded triple table with exhaustive indexing.

This is the storage substrate replacing the paper's PostgreSQL back-end.
Following Section 6 ("we indexed the encoded triple table on s, p, o, and
all two- and three-column combinations"), the store answers any triple
pattern — any subset of the three attributes bound to constants — through
an index, and provides *exact* counts for such patterns. Those counts are
precisely the statistics gathered by the cost model (Section 3.3).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from repro.rdf.dictionary import Dictionary
from repro.rdf.terms import Term
from repro.rdf.triples import Triple
from repro.stats.catalog import StatisticsCatalog

#: An encoded triple: three dictionary codes.
EncodedTriple = tuple[int, int, int]

#: An encoded pattern: a code, or None for an unbound position.
EncodedPattern = tuple[int | None, int | None, int | None]

#: The six column permutations a sorted iterator can follow.
_PERMUTATIONS: dict[str, tuple[int, int, int]] = {
    "spo": (0, 1, 2),
    "sop": (0, 2, 1),
    "pso": (1, 0, 2),
    "pos": (1, 2, 0),
    "osp": (2, 0, 1),
    "ops": (2, 1, 0),
}


class TripleStore:
    """A set of well-formed RDF triples with hexastore-style indexing.

    Triples are dictionary-encoded on insertion. The public API accepts
    and returns :class:`~repro.rdf.triples.Triple` objects; the encoded
    layer (``*_encoded`` methods) is used by the evaluation engine.
    """

    def __init__(self) -> None:
        self.dictionary = Dictionary()
        self._triples: set[EncodedTriple] = set()
        # One-column indexes: value -> set of triples.
        self._idx_s: dict[int, set[EncodedTriple]] = {}
        self._idx_p: dict[int, set[EncodedTriple]] = {}
        self._idx_o: dict[int, set[EncodedTriple]] = {}
        # Two-column indexes: (value, value) -> set of triples.
        self._idx_sp: dict[tuple[int, int], set[EncodedTriple]] = {}
        self._idx_so: dict[tuple[int, int], set[EncodedTriple]] = {}
        self._idx_po: dict[tuple[int, int], set[EncodedTriple]] = {}
        # Lazily sorted permutations of the triple table (for merge
        # joins); invalidated wholesale on any mutation.
        self._sorted_cache: dict[str, list[EncodedTriple]] = {}
        # Monotonic mutation counter: lets the engine detect staleness
        # of anything derived from the store (e.g. cached query plans).
        self.version = 0
        # Incrementally maintained statistics (repro.stats): column
        # value multiplicities, predicate counts, pattern-count memo.
        # The mutation paths below keep it in sync via O(1) hooks.
        self.stats = StatisticsCatalog(self)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert a triple. Returns True if it was not already present."""
        encoded = (
            self.dictionary.encode(triple.s),
            self.dictionary.encode(triple.p),
            self.dictionary.encode(triple.o),
        )
        return self._add_encoded(encoded)

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns the number of new ones."""
        return sum(1 for triple in triples if self.add(triple))

    def remove(self, triple: Triple) -> bool:
        """Remove a triple. Returns True if it was present."""
        codes = tuple(self.dictionary.lookup(term) for term in triple)
        if None in codes:
            return False
        encoded: EncodedTriple = codes  # type: ignore[assignment]
        if encoded not in self._triples:
            return False
        self._triples.discard(encoded)
        s, p, o = encoded
        # Drop buckets that empty out: under churn, keeping them alive
        # would grow all six indexes without bound.
        for index, key in (
            (self._idx_s, s),
            (self._idx_p, p),
            (self._idx_o, o),
            (self._idx_sp, (s, p)),
            (self._idx_so, (s, o)),
            (self._idx_po, (p, o)),
        ):
            bucket = index[key]
            bucket.discard(encoded)
            if not bucket:
                del index[key]
        self.stats.on_remove(encoded)
        if self._sorted_cache:
            self._sorted_cache.clear()
        self.version += 1
        return True

    def _add_encoded(self, encoded: EncodedTriple) -> bool:
        if encoded in self._triples:
            return False
        self._triples.add(encoded)
        s, p, o = encoded
        self._idx_s.setdefault(s, set()).add(encoded)
        self._idx_p.setdefault(p, set()).add(encoded)
        self._idx_o.setdefault(o, set()).add(encoded)
        self._idx_sp.setdefault((s, p), set()).add(encoded)
        self._idx_so.setdefault((s, o), set()).add(encoded)
        self._idx_po.setdefault((p, o), set()).add(encoded)
        self.stats.on_add(encoded)
        if self._sorted_cache:
            self._sorted_cache.clear()
        self.version += 1
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        codes = tuple(self.dictionary.lookup(term) for term in triple)
        return None not in codes and codes in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return (self._decode(encoded) for encoded in self._triples)

    def encode_term(self, term: Term) -> int | None:
        """Code for ``term`` or None when the term never occurs in the data."""
        return self.dictionary.lookup(term)

    def _decode(self, encoded: EncodedTriple) -> Triple:
        s, p, o = encoded
        return Triple(
            self.dictionary.decode(s),
            self.dictionary.decode(p),
            self.dictionary.decode(o),
        )

    def match(
        self,
        s: Term | None = None,
        p: Term | None = None,
        o: Term | None = None,
    ) -> Iterator[Triple]:
        """Iterate over triples matching a pattern of bound terms / wildcards."""
        pattern = self._encode_pattern(s, p, o)
        if pattern is None:
            return iter(())
        return (self._decode(encoded) for encoded in self.match_encoded(pattern))

    def count(
        self,
        s: Term | None = None,
        p: Term | None = None,
        o: Term | None = None,
    ) -> int:
        """Exact number of triples matching the pattern (index lookup)."""
        pattern = self._encode_pattern(s, p, o)
        if pattern is None:
            return 0
        return self.count_encoded(pattern)

    def _encode_pattern(
        self, s: Term | None, p: Term | None, o: Term | None
    ) -> EncodedPattern | None:
        """Encode a term pattern; None result means "cannot match anything"."""
        encoded: list[int | None] = []
        for term in (s, p, o):
            if term is None:
                encoded.append(None)
            else:
                code = self.dictionary.lookup(term)
                if code is None:
                    return None
                encoded.append(code)
        return tuple(encoded)  # type: ignore[return-value]

    def match_encoded(self, pattern: EncodedPattern) -> Iterable[EncodedTriple]:
        """Triples matching an encoded pattern, via the tightest index."""
        s, p, o = pattern
        if s is not None and p is not None and o is not None:
            triple = (s, p, o)
            return (triple,) if triple in self._triples else ()
        if s is not None and p is not None:
            return self._idx_sp.get((s, p), ())
        if s is not None and o is not None:
            return self._idx_so.get((s, o), ())
        if p is not None and o is not None:
            return self._idx_po.get((p, o), ())
        if s is not None:
            return self._idx_s.get(s, ())
        if p is not None:
            return self._idx_p.get(p, ())
        if o is not None:
            return self._idx_o.get(o, ())
        return self._triples

    @staticmethod
    def _permutation_key(order: str):
        """Sort-key function for one of the six column permutations."""
        permutation = _PERMUTATIONS.get(order)
        if permutation is None:
            raise ValueError(
                f"unknown sort order {order!r}; pick from {sorted(_PERMUTATIONS)}"
            )
        a, b, c = permutation
        return lambda t: (t[a], t[b], t[c])

    def _sorted_triples(self, order: str) -> list[EncodedTriple]:
        key = self._permutation_key(order)
        cached = self._sorted_cache.get(order)
        if cached is None:
            cached = sorted(self._triples, key=key)
            self._sorted_cache[order] = cached
        return cached

    def iter_sorted(self, order: str = "spo") -> Iterator[EncodedTriple]:
        """All triples in the code order of a column permutation.

        ``order`` is one of the six permutations of ``"spo"``. The sorted
        list is computed lazily and cached until the next mutation, so
        repeated merge-join plans over a stable store pay the sort once —
        the in-memory analogue of RDF-3X's clustered permutation indexes.
        """
        return iter(self._sorted_triples(order))

    def match_sorted(
        self, pattern: EncodedPattern, order: str = "spo"
    ) -> Iterator[EncodedTriple]:
        """Matches of an encoded pattern, sorted by the given permutation.

        Full scans reuse the cached sorted permutation; restricted
        patterns sort their (already index-narrowed) match set on the
        fly. This is what makes merge joins possible over any atom.
        """
        if pattern == (None, None, None):
            return iter(self._sorted_triples(order))
        key = self._permutation_key(order)
        return iter(sorted(self.match_encoded(pattern), key=key))

    def count_encoded(self, pattern: EncodedPattern) -> int:
        """Exact count of triples matching an encoded pattern."""
        matches = self.match_encoded(pattern)
        if matches is self._triples:
            return len(self._triples)
        return len(matches) if isinstance(matches, (set, tuple)) else sum(1 for _ in matches)

    # ------------------------------------------------------------------
    # Statistics (Section 3.3 of the paper; maintained by repro.stats)
    # ------------------------------------------------------------------

    def distinct_values(self, column: str) -> int:
        """Number of distinct values appearing in column ``s``/``p``/``o``."""
        return self.stats.distinct_values(column)

    def column_value_counts(self, column: str) -> Counter:
        """Multiplicity of each value in the given column (a copy)."""
        return self.stats.column_value_counts(column)

    def average_term_size(self) -> float:
        """Average rendered term size; the width unit of the cost model."""
        return self.dictionary.average_term_size()

    def copy(self) -> "TripleStore":
        """An independent deep copy (shares no index structures).

        Encoded triples, indexes and the dictionary are cloned directly;
        no triple is decoded or re-encoded, so copying costs one set/dict
        copy per structure instead of a full render→parse round trip per
        triple (and codes stay identical between original and clone).
        """
        clone = TripleStore()
        clone.dictionary = self.dictionary.copy()
        clone._triples = set(self._triples)
        clone._idx_s = {key: set(bucket) for key, bucket in self._idx_s.items()}
        clone._idx_p = {key: set(bucket) for key, bucket in self._idx_p.items()}
        clone._idx_o = {key: set(bucket) for key, bucket in self._idx_o.items()}
        clone._idx_sp = {key: set(bucket) for key, bucket in self._idx_sp.items()}
        clone._idx_so = {key: set(bucket) for key, bucket in self._idx_so.items()}
        clone._idx_po = {key: set(bucket) for key, bucket in self._idx_po.items()}
        clone.stats = self.stats.copy_for(clone)
        return clone
