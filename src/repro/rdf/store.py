"""Dictionary-encoded triple store over a pluggable storage backend.

This is the storage substrate replacing the paper's PostgreSQL back-end.
Following Section 6 ("we indexed the encoded triple table on s, p, o, and
all two- and three-column combinations"), the store answers any triple
pattern — any subset of the three attributes bound to constants — through
an index, and provides *exact* counts for such patterns. Those counts are
precisely the statistics gathered by the cost model (Section 3.3).

The physical triple table lives behind a
:class:`~repro.storage.base.StorageBackend` (``repro.storage``):

* ``backend="memory"`` (default) — the hexastore-style dict-of-sets
  structures this store always had, byte-for-byte;
* ``backend="sqlite"`` — a disk-backed SQLite table with SPO/POS/OSP
  B-tree indexes, for datasets beyond Python object memory.

The store itself keeps what is backend-independent: the term
dictionary, the monotonic ``version`` counter, and the incrementally
maintained statistics catalog (``store.stats``). ``save(path)`` writes
a single-file snapshot (triples + dictionary + statistics);
``TripleStore.open(path)`` brings it back on either backend.
"""

from __future__ import annotations

import time
from collections import Counter
from pathlib import Path
from typing import Iterable, Iterator

from repro.obs import metrics, tracing

from repro.rdf.dictionary import Dictionary
from repro.rdf.terms import Term, term_from_parts, term_to_parts
from repro.rdf.triples import Triple
from repro.stats.catalog import StatisticsCatalog
from repro.storage.base import (
    DEFAULT_BATCH_SIZE,
    EncodedPattern,
    EncodedTriple,
    StorageBackend,
    create_backend,
)
from repro.storage.memory import MemoryBackend
from repro.storage.snapshot import (
    SnapshotError,
    read_snapshot,
    synced_term_count,
    write_aux_tables,
    write_snapshot,
)
from repro.storage.sqlite import SqliteBackend

__all__ = [
    "EncodedPattern",
    "EncodedTriple",
    "TripleStore",
]


def _term_row(code: int, term: Term) -> tuple:
    """Serialize one dictionary entry to a structured snapshot row."""
    return (code, *term_to_parts(term))


class TripleStore:
    """A set of well-formed RDF triples with exhaustive pattern indexing.

    Triples are dictionary-encoded on insertion. The public API accepts
    and returns :class:`~repro.rdf.triples.Triple` objects; the encoded
    layer (``*_encoded`` methods, ``iter_sorted``/``match_sorted``) is
    used by the evaluation engine and served by the storage backend.
    """

    def __init__(self, backend: str | StorageBackend = "memory") -> None:
        self.dictionary = Dictionary()
        if isinstance(backend, str):
            backend = create_backend(backend)
        if len(backend):
            backend.close()
            raise ValueError(
                "cannot attach a fresh TripleStore to a non-empty backend "
                "(its dictionary and statistics would be out of sync); "
                "use TripleStore.open(path) for saved stores"
            )
        self._attach_backend(backend)
        # Monotonic mutation counter: lets the engine detect staleness
        # of anything derived from the store (e.g. cached query plans).
        self.version = 0
        # Version at the last in-place snapshot sync (None = never):
        # lets flush()/close() skip rewriting an up-to-date sidecar.
        self._saved_version: int | None = None
        # Incrementally maintained statistics (repro.stats): column
        # value multiplicities, predicate counts, pattern-count memo.
        # The mutation paths below keep it in sync via O(1) hooks.
        self.stats = StatisticsCatalog(self)

    def _attach_backend(self, backend: StorageBackend) -> None:
        self._backend = backend
        # The read paths below are the engine's innermost loops (one
        # probe per joined row): binding the backend methods onto the
        # instance removes a forwarding frame per call, keeping the
        # memory backend at seed speed. A method a subclass overrides
        # is left alone — the override keeps winning through the MRO.
        cls = type(self)
        for name, fast in (
            ("match_encoded", backend.match),
            ("count_encoded", backend.count),
            ("iter_sorted", backend.iter_sorted),
            ("match_sorted", backend.match_sorted),
            ("match_encoded_batches", backend.match_batches),
            ("match_encoded_columns", backend.match_columns),
            ("match_sorted_batches", backend.match_sorted_batches),
            ("match_many_encoded", backend.match_many),
        ):
            if getattr(cls, name) is getattr(TripleStore, name):
                setattr(self, name, fast)

    @property
    def backend(self) -> StorageBackend:
        """The physical storage backend serving this store."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Short name of the storage backend ("memory", "sqlite", ...)."""
        return self._backend.name

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert a triple. Returns True if it was not already present."""
        encoded = (
            self.dictionary.encode(triple.s),
            self.dictionary.encode(triple.p),
            self.dictionary.encode(triple.o),
        )
        return self._add_encoded(encoded)

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns the number of new ones."""
        return sum(1 for triple in triples if self.add(triple))

    def remove(self, triple: Triple) -> bool:
        """Remove a triple. Returns True if it was present."""
        codes = tuple(self.dictionary.lookup(term) for term in triple)
        if None in codes:
            return False
        encoded: EncodedTriple = codes  # type: ignore[assignment]
        if not self._backend.remove(encoded):
            return False
        self.stats.on_remove(encoded)
        self.version += 1
        return True

    def _add_encoded(self, encoded: EncodedTriple) -> bool:
        if not self._backend.add(encoded):
            return False
        self.stats.on_add(encoded)
        self.version += 1
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._backend)

    def __contains__(self, triple: Triple) -> bool:
        codes = tuple(self.dictionary.lookup(term) for term in triple)
        return None not in codes and codes in self._backend

    def __iter__(self) -> Iterator[Triple]:
        return (self._decode(encoded) for encoded in self._backend)

    def encode_term(self, term: Term) -> int | None:
        """Code for ``term`` or None when the term never occurs in the data."""
        return self.dictionary.lookup(term)

    def _decode(self, encoded: EncodedTriple) -> Triple:
        s, p, o = encoded
        return Triple(
            self.dictionary.decode(s),
            self.dictionary.decode(p),
            self.dictionary.decode(o),
        )

    def match(
        self,
        s: Term | None = None,
        p: Term | None = None,
        o: Term | None = None,
    ) -> Iterator[Triple]:
        """Iterate over triples matching a pattern of bound terms / wildcards."""
        pattern = self._encode_pattern(s, p, o)
        if pattern is None:
            return iter(())
        return (self._decode(encoded) for encoded in self.match_encoded(pattern))

    def count(
        self,
        s: Term | None = None,
        p: Term | None = None,
        o: Term | None = None,
    ) -> int:
        """Exact number of triples matching the pattern (index lookup)."""
        pattern = self._encode_pattern(s, p, o)
        if pattern is None:
            return 0
        return self.count_encoded(pattern)

    def _encode_pattern(
        self, s: Term | None, p: Term | None, o: Term | None
    ) -> EncodedPattern | None:
        """Encode a term pattern; None result means "cannot match anything"."""
        encoded: list[int | None] = []
        for term in (s, p, o):
            if term is None:
                encoded.append(None)
            else:
                code = self.dictionary.lookup(term)
                if code is None:
                    return None
                encoded.append(code)
        return tuple(encoded)  # type: ignore[return-value]

    def match_encoded(self, pattern: EncodedPattern) -> Iterable[EncodedTriple]:
        """Triples matching an encoded pattern, via the tightest index."""
        return self._backend.match(pattern)

    def iter_sorted(self, order: str = "spo") -> Iterator[EncodedTriple]:
        """All triples in the code order of a column permutation.

        ``order`` is one of the six permutations of ``"spo"``. The
        memory backend computes the sorted list lazily and caches it
        until the next mutation; the SQLite backend streams an ``ORDER
        BY`` over its clustered permutation indexes — both are the
        in-memory analogue of RDF-3X's clustered permutation indexes.
        """
        return self._backend.iter_sorted(order)

    def match_sorted(
        self, pattern: EncodedPattern, order: str = "spo"
    ) -> Iterator[EncodedTriple]:
        """Matches of an encoded pattern, sorted by the given permutation.

        This is what makes merge joins possible over any atom.
        """
        return self._backend.match_sorted(pattern, order)

    def count_encoded(self, pattern: EncodedPattern) -> int:
        """Exact count of triples matching an encoded pattern."""
        return self._backend.count(pattern)

    def match_encoded_batches(
        self, pattern: EncodedPattern, size: int = DEFAULT_BATCH_SIZE
    ):
        """Matches of an encoded pattern as row-list batches.

        The batch-at-a-time engine's scan input: lists of at most
        ``size`` encoded triples, one backend round-trip per batch
        (SQLite serves each batch with a single ``fetchmany``).
        """
        return self._backend.match_batches(pattern, size)

    def match_encoded_columns(
        self, pattern: EncodedPattern, size: int = DEFAULT_BATCH_SIZE
    ):
        """Matches of an encoded pattern in columnar layout.

        The vectorized engine's scan input: ``(s, p, o)`` column tuples
        of at most ``size`` values each, transposed natively by the
        backend (see :meth:`repro.storage.base.StorageBackend.match_columns`).
        """
        return self._backend.match_columns(pattern, size)

    def match_sorted_batches(
        self,
        pattern: EncodedPattern,
        order: str = "spo",
        size: int = DEFAULT_BATCH_SIZE,
    ):
        """Sorted matches of an encoded pattern as row-list batches."""
        return self._backend.match_sorted_batches(pattern, order, size)

    def match_many_encoded(self, patterns):
        """Matches of a whole batch of encoded patterns, input-aligned.

        The batched index-nested-loop probe path: the SQLite backend
        answers the batch with one SQL statement instead of one SELECT
        per probe (see :meth:`repro.storage.base.StorageBackend.match_many`).
        """
        return self._backend.match_many(patterns)

    # ------------------------------------------------------------------
    # Statistics (Section 3.3 of the paper; maintained by repro.stats)
    # ------------------------------------------------------------------

    def distinct_values(self, column: str) -> int:
        """Number of distinct values appearing in column ``s``/``p``/``o``."""
        return self.stats.distinct_values(column)

    def column_value_counts(self, column: str) -> Counter:
        """Multiplicity of each value in the given column (a copy)."""
        return self.stats.column_value_counts(column)

    def average_term_size(self) -> float:
        """Average rendered term size; the width unit of the cost model."""
        return self.dictionary.average_term_size()

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------

    def copy(self, backend: str | StorageBackend | None = None) -> "TripleStore":
        """An independent deep copy (shares no storage structures).

        Encoded triples and the dictionary are cloned directly; no
        triple is decoded or re-encoded, so codes stay identical between
        original and clone. With ``backend`` set, the clone lives on a
        *different* backend (e.g. ``store.copy(backend="memory")`` pulls
        a SQLite-backed store into RAM); by default the clone uses a
        deep copy of the current backend.
        """
        clone = object.__new__(TripleStore)
        clone.dictionary = self.dictionary.copy()
        if backend is None:
            clone._attach_backend(self._backend.copy())
        else:
            target = create_backend(backend) if isinstance(backend, str) else backend
            if len(target):
                raise ValueError("the target backend of a copy must be empty")
            target.add_bulk(iter(self._backend))
            clone._attach_backend(target)
        clone.version = 0
        clone._saved_version = None
        clone.stats = self.stats.copy_for(clone)
        return clone

    # ------------------------------------------------------------------
    # Persistence (single-file snapshots; repro.storage.snapshot)
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Write a single-file snapshot of this store to ``path``.

        The snapshot holds the encoded triple table, the serialized
        dictionary and the statistics catalog. When the store already
        runs on a file-backed SQLite backend at ``path``, the triple
        table *is* the file: saving commits pending writes and syncs
        the dictionary/statistics sidecar tables in place — with the
        dictionary appended incrementally (it is append-only), so a
        re-save costs O(new terms), not O(dictionary).

        Round-trip: build, save, reopen on any backend —

        >>> import os, tempfile
        >>> from repro.rdf.terms import URI
        >>> from repro.rdf.triples import Triple
        >>> store = TripleStore()
        >>> store.add(Triple(URI("http://e/s"), URI("http://e/p"),
        ...                  URI("http://e/o")))
        True
        >>> directory = tempfile.mkdtemp()
        >>> path = os.path.join(directory, "snapshot.db")
        >>> store.save(path)
        >>> reopened = TripleStore.open(path, backend="memory")
        >>> len(reopened)
        1
        >>> next(iter(reopened)).p.n3()
        '<http://e/p>'
        >>> reopened.close(); os.remove(path); os.rmdir(directory)
        """
        if not metrics.enabled and tracing.sink is None:
            self._save(path)
            return
        with tracing.span("storage.snapshot.save", path=str(path)):
            started = time.perf_counter()
            self._save(path)
            if metrics.enabled:
                metrics.observe(
                    "storage.snapshot.save_ms",
                    (time.perf_counter() - started) * 1000.0,
                )

    def _save(self, path) -> None:
        stats_rows = list(self.stats.export_column_counts())
        meta = {"triples": str(len(self))}
        backend = self._backend
        if (
            isinstance(backend, SqliteBackend)
            and backend.path is not None
            and Path(backend.path).resolve() == Path(path).resolve()
        ):
            backend.flush()
            start = synced_term_count(backend.connection)
            term_rows = [
                _term_row(code, term)
                for code, term in self.dictionary.items(start)
            ]
            write_aux_tables(
                backend.connection,
                term_rows,
                stats_rows,
                meta,
                incremental_terms=True,
            )
            self._saved_version = self.version
        else:
            term_rows = [
                _term_row(code, term) for code, term in self.dictionary.items()
            ]
            write_snapshot(path, iter(backend), term_rows, stats_rows, meta)

    @classmethod
    def open(
        cls, path, backend: str = "sqlite", read_only: bool | None = None
    ) -> "TripleStore":
        """Reopen a snapshot written by :meth:`save`.

        With ``backend="sqlite"`` (the default) the store attaches to
        the snapshot file directly — no triple is loaded into Python
        memory, and subsequent mutations write to the file (call
        :meth:`save` again to sync the dictionary sidecar before
        handing the file to another process). With ``backend="memory"``
        the triples are bulk-loaded into the in-memory structures.

        ``read_only=True`` serves the snapshot through a read-only
        SQLite connection: opening performs **zero writes** (no WAL
        conversion, no schema script, no ``ANALYZE``, no dictionary
        sync on close) and mutations raise — the mode every server-mode
        worker uses so N processes can share one snapshot file. The
        default (``None``) auto-detects files the process cannot write,
        such as a chmod-0444 snapshot.
        """
        if not metrics.enabled and tracing.sink is None:
            return cls._open(path, backend, read_only)
        with tracing.span(
            "storage.snapshot.open", path=str(path), backend=backend
        ):
            started = time.perf_counter()
            store = cls._open(path, backend, read_only)
            if metrics.enabled:
                metrics.observe(
                    "storage.snapshot.open_ms",
                    (time.perf_counter() - started) * 1000.0,
                )
        return store

    @classmethod
    def _open(
        cls, path, backend: str = "sqlite", read_only: bool | None = None
    ) -> "TripleStore":
        if backend not in ("sqlite", "memory"):
            raise ValueError(
                f"unknown backend {backend!r} for open(); "
                "pick 'sqlite' or 'memory'"
            )
        term_rows, stats_rows, meta, triples = read_snapshot(
            path, include_triples=(backend == "memory")
        )
        store = object.__new__(cls)
        store.dictionary = Dictionary()
        for code, kind, value, datatype, language in term_rows:
            try:
                term = term_from_parts(kind, value, datatype, language)
            except ValueError as exc:
                raise SnapshotError(
                    f"corrupt snapshot {path}: bad term row for code "
                    f"{code}: {exc}"
                ) from exc
            assigned = store.dictionary.encode(term)
            if assigned != code:
                raise SnapshotError(
                    f"corrupt snapshot {path}: term {term!r} maps to "
                    f"code {assigned}, expected {code}"
                )
        if backend == "sqlite":
            store._attach_backend(SqliteBackend(path, read_only=read_only))
        else:
            # The memory backend loads via the snapshot reader's own
            # read-only connection; read_only needs no further plumbing.
            memory = MemoryBackend()
            memory.add_bulk(triples)
            store._attach_backend(memory)
        try:
            expected = meta.get("triples")
            if expected is not None and int(expected) != len(store._backend):
                raise SnapshotError(
                    f"snapshot {path} sidecar is out of sync with its "
                    f"triple table ({expected} recorded vs "
                    f"{len(store._backend)} stored); reopen the store "
                    "that wrote it and call save()"
                )
            # Second integrity guard: every stored code must decode.
            # Catches a sidecar gone stale without moving the triple
            # count (e.g. a crash after committing triples but before
            # re-saving the dictionary). Index-only MAX lookups for
            # SQLite; the memory path scans the triples it just loaded.
            if backend == "sqlite":
                maxima = store._backend.connection.execute(
                    "SELECT MAX(s), MAX(p), MAX(o) FROM triples"
                ).fetchone()
                codes = [code for code in maxima if code is not None]
                highest = max(codes) if codes else None
            else:
                highest = max((max(t) for t in triples), default=None)
            if highest is not None and highest >= len(store.dictionary):
                raise SnapshotError(
                    f"snapshot {path} stores code {highest} but its "
                    f"dictionary only holds {len(store.dictionary)} terms; "
                    "reopen the store that wrote it and call save()"
                )
        except SnapshotError:
            store._backend.close()
            raise
        store.version = 0
        # The sidecar matches what is on disk right now.
        store._saved_version = 0
        store.stats = StatisticsCatalog(store)
        store.stats.load_column_counts(stats_rows)
        return store

    def flush(self) -> None:
        """Make pending writes durable (no-op for memory).

        A file-backed SQLite store whose sidecar is out of date — never
        written for a fresh file, or older than the current ``version``
        — syncs the full snapshot, so the on-disk file is a reopenable
        snapshot even if the process never reaches :meth:`close`; a
        stale sidecar next to committed triples would poison the next
        :meth:`open`. An up-to-date store flushes without rewriting
        anything (and never writes to a read-only snapshot it only
        read).
        """
        backend = self._backend
        if (
            self._saved_version != self.version
            and isinstance(backend, SqliteBackend)
            and backend.path is not None
        ):
            self.save(backend.path)
        else:
            backend.flush()

    def close(self) -> None:
        """Release backend resources.

        A file-backed SQLite store that was mutated syncs its full
        snapshot first (via :meth:`flush`), so the file on disk stays a
        complete, reopenable snapshot. Unmutated stores close without
        writing — a read-only snapshot file stays untouched.
        """
        self.flush()
        self._backend.close()
