"""Synthetic dataset generation.

The paper evaluates on the Barton library-catalog dataset (~35M distinct
triples after cleaning) with an RDFS of 39 classes, 61 properties and
106 schema statements. The dataset itself is not redistributable at that
scale; :mod:`repro.datagen.barton` generates a laptop-scale synthetic
catalog with the same schema *shape* and skewed value distributions, so
every statistics / entailment / search code path is exercised the same
way.
"""

from repro.datagen.barton import BartonConfig, generate_barton

__all__ = ["BartonConfig", "generate_barton"]
