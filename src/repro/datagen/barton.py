"""A synthetic Barton-like library catalog: RDFS plus skewed instance data.

The real Barton dataset [24] describes MIT library holdings. Its RDFS —
as used in Section 6.5 — has 39 classes, 61 properties and 106 RDFS
statements of the four Table-1 kinds. This generator reproduces that
schema shape with a library vocabulary, and populates it with instance
data whose property usage follows a Zipf-like skew (library catalogs are
heavily skewed toward a few record-keeping properties).

The generated data is *not* saturated: instances are typed with their
most specific class only, and only the asserted property is recorded even
when superproperties exist — the implicit triples are left to the
entailment machinery, which is the whole point of Section 4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.rdf.schema import RDFSchema
from repro.rdf.store import TripleStore
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.rdf.vocabulary import RDF_TYPE

BARTON_NS = "http://simile.mit.edu/barton#"

#: 39 class names, library-catalog flavored (the real schema's size).
CLASS_NAMES = (
    "Item", "Text", "Book", "Journal", "Article", "Thesis", "Map",
    "Image", "Photograph", "Audio", "MusicRecording", "Person", "Author",
    "Editor", "Publisher", "Organization", "Subject", "SubjectPart",
    "Language", "Place", "Event", "Collection", "Series", "Edition",
    "Manuscript", "Microform", "Software", "Dataset", "Score",
    "Periodical", "Newspaper", "Proceedings", "Report", "Standard",
    "Patent", "WebResource", "PhysicalObject", "ConceptScheme", "Work",
)

#: 61 property names (the real schema's size).
PROPERTY_NAMES = (
    "title", "creator", "author", "editor", "contributor", "publisher",
    "published", "relatedTo", "description", "language", "subject",
    "partOf", "hasPart", "isFormatOf", "references", "cites", "issued",
    "created", "modified", "identifier", "isbn", "issn", "callNumber",
    "location", "holdsCopy", "memberOf", "worksFor", "knows",
    "birthDate", "deathDate", "name", "label", "note", "abstract",
    "tableOfContents", "edition", "volume", "issue", "pages", "format",
    "extent", "medium", "genre", "audience", "rights", "license",
    "source", "derivedFrom", "translationOf", "hasTranslation",
    "supersedes", "supersededBy", "catalogedBy", "reviewedBy",
    "recommends", "borrows", "returns", "reserves", "annotates", "tags",
    "linksTo",
)


@dataclass(frozen=True, slots=True)
class BartonConfig:
    """Knobs of the synthetic catalog.

    Defaults match the real schema's shape (39/61/106) at a data scale
    that keeps full test/benchmark runs fast. ``num_triples`` is a
    target for the data part (type + property triples), approached but
    not exceeded.
    """

    num_triples: int = 50_000
    num_entities: int = 8_000
    seed: int = 0
    subproperty_statements: int = 15
    domain_statements: int = 30
    range_statements: int = 23
    literal_probability: float = 0.3

    @property
    def subclass_statements(self) -> int:
        """A tree over the classes: one statement per non-root class."""
        return len(CLASS_NAMES) - 1


def _class_uri(name: str) -> URI:
    return URI(BARTON_NS + name)


def _property_uri(name: str) -> URI:
    return URI(BARTON_NS + name)


def build_schema(config: BartonConfig) -> RDFSchema:
    """The synthetic RDFS: 38 subclass + 15 subproperty + 30 domain +
    23 range statements = 106 (matching Section 6.5)."""
    rng = random.Random(config.seed)
    schema = RDFSchema()
    classes = [_class_uri(name) for name in CLASS_NAMES]
    properties = [_property_uri(name) for name in PROPERTY_NAMES]
    # Subclass tree: each non-root class under a random earlier class,
    # biased toward shallow, broad hierarchies like real catalogs.
    for index in range(1, len(classes)):
        parent = classes[rng.randrange(max(1, index // 2))]
        schema.add_subclass(classes[index], parent)
    # Subproperty links: later properties specialize earlier ones.
    added = 0
    while added < config.subproperty_statements:
        child = properties[rng.randrange(len(properties) // 2, len(properties))]
        parent = properties[rng.randrange(len(properties) // 2)]
        if child != parent and schema.add_subproperty(child, parent):
            added += 1
    # Domain and range typing over random properties and classes.
    added = 0
    while added < config.domain_statements:
        prop = properties[rng.randrange(len(properties))]
        cls = classes[rng.randrange(len(classes))]
        if schema.add_domain(prop, cls):
            added += 1
    added = 0
    while added < config.range_statements:
        prop = properties[rng.randrange(len(properties))]
        cls = classes[rng.randrange(len(classes))]
        if schema.add_range(prop, cls):
            added += 1
    return schema


def _zipf_choice(rng: random.Random, items, skew: float = 1.1):
    """Pick an item with Zipf-like skew toward the front of the list."""
    rank = int(len(items) * (rng.random() ** skew))
    return items[min(rank, len(items) - 1)]


def generate_barton(config: BartonConfig | None = None) -> tuple[TripleStore, RDFSchema]:
    """Generate the synthetic catalog: a (non-saturated) store + RDFS.

    The store contains only data triples (rdf:type assertions with the
    most specific class, and property assertions); the schema is
    returned separately, as the entailment workflows expect.
    """
    config = config or BartonConfig()
    rng = random.Random(config.seed + 1)
    schema = build_schema(config)
    classes = [_class_uri(name) for name in CLASS_NAMES]
    properties = [_property_uri(name) for name in PROPERTY_NAMES]
    class_instances: dict[URI, list[URI]] = {cls: [] for cls in classes}
    store = TripleStore()
    # Type each entity with one (skewed) most-specific class.
    entities = []
    for index in range(config.num_entities):
        entity = URI(f"{BARTON_NS}e{index}")
        cls = _zipf_choice(rng, classes)
        store.add(Triple(entity, RDF_TYPE, cls))
        class_instances[cls].append(entity)
        entities.append(entity)
    # Property triples up to the target size.
    target = max(0, config.num_triples - len(store))
    produced = 0
    while produced < target:
        prop = _zipf_choice(rng, properties)
        subject = _pick_instance(rng, schema.domains(prop), class_instances, entities)
        if rng.random() < config.literal_probability:
            obj = Literal(f"value-{rng.randrange(config.num_entities * 2)}")
        else:
            obj = _pick_instance(rng, schema.ranges(prop), class_instances, entities)
        if store.add(Triple(subject, prop, obj)):
            produced += 1
    return store, schema


def _pick_instance(rng, preferred_classes, class_instances, entities):
    """An entity of one of the preferred classes, else any entity.

    Honoring declared domains/ranges most of the time makes the implicit
    triples of saturation meaningful (rule 1 finds superclass instances,
    rules 3/4 find typed subjects/objects).
    """
    candidates = []
    for cls in preferred_classes:
        candidates.extend(class_instances.get(cls, ()))
    if candidates and rng.random() < 0.9:
        return candidates[rng.randrange(len(candidates))]
    return entities[rng.randrange(len(entities))]
