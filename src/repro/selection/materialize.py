"""Materializing recommended views and answering queries from them.

This closes the loop the paper's Figure 8 measures: after the search
recommends a state, its views are materialized (directly, or through
their reformulations in the post-reformulation scenario) and the
workload queries are answered by executing the state's rewriting plans
over the view extents — with no access to the triple store.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.engine.extents import ViewExtent
from repro.engine.operators import DEFAULT_BATCH_SIZE
from repro.query.algebra import Row, execute
from repro.query.evaluation import Answer, evaluate, evaluate_union
from repro.rdf.schema import RDFSchema
from repro.rdf.store import TripleStore
from repro.selection.state import State


def materialize_views(
    state: State,
    store: TripleStore,
    schema: RDFSchema | None = None,
    engine: str = "auto",
    batch_size: int | None = DEFAULT_BATCH_SIZE,
    workers: int = 1,
    pushdown: bool = True,
) -> dict[str, ViewExtent]:
    """Compute the extent of every view of ``state`` on ``store``.

    With ``schema`` given, each view is reformulated first and the union
    is evaluated on the (non-saturated) store — the post-reformulation
    materialization of Section 4.3. Without a schema, views are
    evaluated directly (appropriate for a plain or saturated store).

    Extents come back as :class:`~repro.engine.extents.ViewExtent`
    (plain ``list`` subclasses): rewriting plans executed over them
    build each view's hash index on its join attributes once and reuse
    it across queries and repeated executions.
    """
    extents: dict[str, ViewExtent] = {}
    if schema is None:
        for view in state.views:
            extents[view.name] = ViewExtent(
                _sorted_rows(
                    evaluate(
                        view,
                        store,
                        engine=engine,
                        batch_size=batch_size,
                        workers=workers,
                        pushdown=pushdown,
                    )
                )
            )
        return extents
    from repro.reformulation.reformulate import reformulate

    for view in state.views:
        union = reformulate(view, schema)
        extents[view.name] = ViewExtent(
            _sorted_rows(
                evaluate_union(
                    union,
                    store,
                    engine=engine,
                    batch_size=batch_size,
                    workers=workers,
                    pushdown=pushdown,
                )
            )
        )
    return extents


def _sorted_rows(rows) -> list[Row]:
    """Deterministic extent order (terms are not naturally orderable)."""
    return sorted(rows, key=lambda row: tuple(term.n3() for term in row))


def answer_query(
    state: State,
    query_name: str,
    extents: Mapping[str, Sequence[Row]],
    engine: str = "auto",
    batch_size: int | None = DEFAULT_BATCH_SIZE,
) -> set[Answer]:
    """Answer one workload query purely from materialized view extents."""
    rewriting = state.rewritings.get(query_name)
    if rewriting is None:
        raise KeyError(f"state has no rewriting for query {query_name!r}")
    answers: set[Answer] = set()
    for disjunct in rewriting:
        rows = execute(disjunct.plan, extents, engine=engine, batch_size=batch_size)
        answers.update(disjunct.answer_rows(rows))
    return answers


def answer_all(
    state: State,
    extents: Mapping[str, Sequence[Row]],
    engine: str = "auto",
) -> dict[str, set[Answer]]:
    """Answer every workload query of the state from the extents."""
    return {
        name: answer_query(state, name, extents, engine=engine)
        for name in state.rewritings
    }


def extent_size(extents: Mapping[str, Sequence[Row]]) -> int:
    """Total number of materialized tuples (a storage proxy)."""
    return sum(len(rows) for rows in extents.values())
