"""Incremental maintenance of materialized views.

The cost model's VMCε (Section 3.3) prices the propagation of updates
into the materialized views; this module implements the propagation
itself, so the recommended view sets are *operational* under updates:

* **insertion** — classic delta rules: for every atom of every view that
  the new triple can match, bind that atom to the triple and evaluate
  the remainder of the view on the updated store; the projected rows are
  the view's delta.
* **deletion** — the same binding trick computes the *candidate* rows
  that used the deleted triple; since a row may have alternative
  derivations under set semantics, each candidate is re-checked against
  the updated store and only underivable rows are dropped.

With an RDF Schema, each view is maintained through its reformulation
(a union of conjunctive queries): the deltas of one explicit triple then
include everything the triple entails, with no saturation step —
Theorem 4.2 at work on updates.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.query.cq import Atom, ConjunctiveQuery, UnionQuery, Variable
from repro.query.evaluation import Answer, evaluate
from repro.rdf.schema import RDFSchema
from repro.rdf.store import TripleStore
from repro.rdf.triples import Triple
from repro.selection.materialize import answer_query
from repro.selection.state import State


def _bind_atom_to_triple(
    atom: Atom, triple: Triple
) -> dict[Variable, object] | None:
    """The substitution making ``atom`` match ``triple``, or None."""
    binding: dict[Variable, object] = {}
    for term, value in zip(atom, triple):
        if isinstance(term, Variable):
            bound = binding.get(term)
            if bound is None:
                binding[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return binding


def _delta_rows(
    view: ConjunctiveQuery, triple: Triple, store: TripleStore
) -> set[Answer]:
    """Rows of ``view`` on ``store`` that have a derivation using
    ``triple`` (the delta-rule union over the view's atoms)."""
    rows: set[Answer] = set()
    for index, atom in enumerate(view.atoms):
        binding = _bind_atom_to_triple(atom, triple)
        if binding is None:
            continue
        # Literal-restricted variables may not bind to literals.
        from repro.rdf.terms import Literal

        if any(
            isinstance(binding.get(variable), Literal)
            for variable in view.non_literal
        ):
            continue
        bound = view.substitute(binding)  # type: ignore[arg-type]
        remainder_atoms = bound.atoms[:index] + bound.atoms[index + 1 :]
        if remainder_atoms:
            probe = ConjunctiveQuery(
                bound.head,
                remainder_atoms,
                name=view.name,
                non_literal=bound.non_literal,
            )
            rows |= evaluate(probe, store)
        else:
            # Single-atom view: the head is fully bound by the triple.
            rows.add(tuple(binding.get(t, t) if isinstance(t, Variable) else t
                           for t in bound.head))
    return rows


def _row_still_derivable(
    view: ConjunctiveQuery, row: Answer, store: TripleStore
) -> bool:
    """True when ``row`` remains an answer of ``view`` on ``store``."""
    mapping: dict[Variable, object] = {}
    for term, value in zip(view.head, row):
        if isinstance(term, Variable):
            if term in mapping and mapping[term] != value:
                return False
            mapping[term] = value
        elif term != value:
            return False
    probe = view.substitute(mapping).with_head(())  # type: ignore[arg-type]
    return bool(evaluate(probe, store))


class MaterializedViewSet:
    """A state's views kept materialized and current under updates.

    The instance owns the store: route every ``insert`` / ``remove``
    through it so the extents stay consistent. With ``schema`` given,
    views are maintained through their reformulations, so implicit
    triples are reflected without saturating the store.
    """

    def __init__(
        self,
        state: State,
        store: TripleStore,
        schema: RDFSchema | None = None,
    ) -> None:
        self.state = state
        self.store = store
        self._definitions: dict[str, tuple[ConjunctiveQuery, ...]] = {}
        for view in state.views:
            if schema is None:
                self._definitions[view.name] = (view,)
            else:
                from repro.reformulation.reformulate import reformulate

                union: UnionQuery = reformulate(view, schema)
                self._definitions[view.name] = union.disjuncts
        self._extents: dict[str, set[Answer]] = {
            name: set().union(
                *(evaluate(disjunct, store) for disjunct in disjuncts)
            )
            for name, disjuncts in self._definitions.items()
        }

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, triple: Triple) -> dict[str, int]:
        """Add a triple; returns per-view counts of new rows."""
        if not self.store.add(triple):
            return {name: 0 for name in self._extents}
        added: dict[str, int] = {}
        for name, disjuncts in self._definitions.items():
            extent = self._extents[name]
            before = len(extent)
            for disjunct in disjuncts:
                extent |= _delta_rows(disjunct, triple, self.store)
            added[name] = len(extent) - before
        return added

    def remove(self, triple: Triple) -> dict[str, int]:
        """Remove a triple; returns per-view counts of dropped rows."""
        # Candidates must be computed while the triple is still present.
        candidates: dict[str, set[Answer]] = {
            name: set().union(
                *(_delta_rows(disjunct, triple, self.store) for disjunct in disjuncts)
            )
            for name, disjuncts in self._definitions.items()
        }
        if not self.store.remove(triple):
            return {name: 0 for name in self._extents}
        removed: dict[str, int] = {}
        for name, disjuncts in self._definitions.items():
            extent = self._extents[name]
            dropped = 0
            for row in candidates[name] & extent:
                if not any(
                    _row_still_derivable(disjunct, row, self.store)
                    for disjunct in disjuncts
                ):
                    extent.discard(row)
                    dropped += 1
            removed[name] = dropped
        return removed

    def insert_all(self, triples: Iterable[Triple]) -> None:
        """Insert many triples."""
        for triple in triples:
            self.insert(triple)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def extent(self, name: str) -> set[Answer]:
        """The current extent of one view (a copy)."""
        return set(self._extents[name])

    def extents(self) -> Mapping[str, list[Answer]]:
        """All extents, in the shape :func:`answer_query` expects."""
        return {name: list(rows) for name, rows in self._extents.items()}

    def answer(self, query_name: str) -> set[Answer]:
        """Answer a workload query from the maintained extents."""
        return answer_query(self.state, query_name, self.extents())
