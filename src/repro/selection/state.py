"""Candidate view sets as search states (Definitions 2.3 and 3.1).

A :class:`State` pairs a set of views (conjunctive queries over the
triple table, with variable-only duplicate-free heads) with one rewriting
per workload query. Rewritings are tuples of
:class:`RewritingDisjunct` — almost always a single disjunct; the
pre-reformulation scenario of Section 4.3 uses genuine unions.

Two states are equivalent iff they have the same view sets; the
:attr:`State.key` is the sorted multiset of per-view canonical forms and
implements exactly that equivalence for duplicate detection.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.query.algebra import Plan, Scan, view_names
from repro.query.cq import ConjunctiveQuery, QueryTerm, UnionQuery, Variable
from repro.query.containment import canonical_form


@dataclass(frozen=True)
class RewritingDisjunct:
    """One union term of a rewriting: an executable plan over views.

    ``head_template`` reorders/extends the plan's output into the query's
    answer shape: each entry is either a Variable naming a plan column or
    a constant to emit verbatim. ``None`` means the plan columns already
    are the answer, in order.
    """

    plan: Plan
    head_template: tuple[QueryTerm, ...] | None = None

    def answer_rows(self, rows: Iterable[tuple]) -> list[tuple]:
        """Apply the head template to plan output rows."""
        if self.head_template is None:
            return list(rows)
        schema = self.plan.schema
        positions = [
            schema.index(term.name) if isinstance(term, Variable) else None
            for term in self.head_template
        ]
        answers = []
        for row in rows:
            answers.append(
                tuple(
                    row[position] if position is not None else term
                    for position, term in zip(positions, self.head_template)
                )
            )
        return answers


Rewriting = tuple[RewritingDisjunct, ...]


class ViewNamer:
    """Mints unique view names (``v0``, ``v1``, ...) within one search."""

    def __init__(self, prefix: str = "v") -> None:
        self._prefix = prefix
        self._counter = itertools.count()

    def fresh(self) -> str:
        return f"{self._prefix}{next(self._counter)}"


#: Interns each distinct view canonical form as a small integer, so state
#: keys are tuples of ints (fast to sort, hash and compare) instead of
#: tuples of deeply nested canonical encodings.
_CANONICAL_TOKENS: dict[tuple, int] = {}

#: Per-view-object token memo. Views are immutable and shared across many
#: states, so after a view is tokenized once, every later state built
#: around it gets its key component in O(1) — without even re-hashing the
#: view (canonical_form's own memo still hashes the full query per call).
_TOKEN_CACHE: dict[int, tuple[int, ConjunctiveQuery]] = {}


def canonical_token(view: ConjunctiveQuery) -> int:
    """A small integer identifying the view's isomorphism class."""
    cached = _TOKEN_CACHE.get(id(view))
    if cached is not None and cached[1] is view:
        return cached[0]
    form = canonical_form(view)
    token = _CANONICAL_TOKENS.get(form)
    if token is None:
        token = len(_CANONICAL_TOKENS)
        _CANONICAL_TOKENS[form] = token
    if len(_TOKEN_CACHE) > 500_000:
        _TOKEN_CACHE.clear()
    _TOKEN_CACHE[id(view)] = (token, view)
    return token


@dataclass(frozen=True, slots=True)
class StateDelta:
    """The structural difference one transition makes to a state.

    ``removed``/``added`` are the view objects that left/entered the view
    set; ``plan_changes`` pairs every rewriting-disjunct plan the symbol
    substitution rewrote with its replacement (untouched disjuncts are
    shared by identity and do not appear). This is exactly the
    information an incremental cost model needs: every component of a
    state's cost not named here is priced identically in both states.
    """

    removed: tuple[ConjunctiveQuery, ...]
    added: tuple[ConjunctiveQuery, ...]
    plan_changes: tuple[tuple[Plan, Plan], ...]


@dataclass(frozen=True, eq=False)
class State:
    """A candidate view set with its workload rewritings.

    ``validate=False`` skips the structural invariant checks; the
    transitions use it (they construct states by correctness-preserving
    rewrites, and validation cost scales with the workload).
    """

    views: tuple[ConjunctiveQuery, ...]
    rewritings: Mapping[str, Rewriting]
    validate: bool = field(default=True, compare=False, repr=False)
    key: tuple = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.validate:
            self._check_invariants()
        object.__setattr__(
            self,
            "key",
            tuple(sorted(canonical_token(view) for view in self.views)),
        )

    def _check_invariants(self) -> None:
        names = [view.name for view in self.views]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate view names in state: {names}")
        for view in self.views:
            head_vars = [t for t in view.head if isinstance(t, Variable)]
            if len(head_vars) != len(view.head) or len(set(head_vars)) != len(head_vars):
                raise ValueError(
                    f"state views need variable-only, duplicate-free heads: {view}"
                )
        referenced: set[str] = set()
        for rewriting in self.rewritings.values():
            for disjunct in rewriting:
                referenced |= view_names(disjunct.plan)
        missing = referenced - set(names)
        if missing:
            raise ValueError(f"rewritings reference unknown views: {missing}")
        unused = set(names) - referenced
        if unused:
            raise ValueError(f"views participate in no rewriting: {unused}")

    # ------------------------------------------------------------------

    def view(self, name: str) -> ConjunctiveQuery:
        """The view carrying ``name`` (O(1) after the first lookup)."""
        by_name = self.__dict__.get("_views_by_name")
        if by_name is None:
            by_name = {candidate.name: candidate for candidate in self.views}
            object.__setattr__(self, "_views_by_name", by_name)
        try:
            return by_name[name]
        except KeyError:
            raise KeyError(f"no view named {name!r}") from None

    def total_atoms(self) -> int:
        """Total number of atoms over all views."""
        return sum(len(view) for view in self.views)

    def replace_views(
        self,
        removed: Sequence[str],
        added: Sequence[ConjunctiveQuery],
        substitute,
    ) -> tuple["State", StateDelta]:
        """A new state with ``removed`` views replaced by ``added`` ones.

        ``substitute`` is a function Plan -> Plan applied to every
        rewriting disjunct plan (the transition's symbol substitution).
        Returns the state together with the :class:`StateDelta` recording
        exactly which views and disjunct plans changed.
        """
        removed_set = set(removed)
        removed_views = tuple(v for v in self.views if v.name in removed_set)
        views = tuple(v for v in self.views if v.name not in removed_set) + tuple(added)
        rewritings = {}
        plan_changes: list[tuple[Plan, Plan]] = []
        for query_name, rewriting in self.rewritings.items():
            disjuncts = []
            changed = False
            for disjunct in rewriting:
                new_plan = substitute(disjunct.plan)
                if new_plan is disjunct.plan:
                    disjuncts.append(disjunct)
                else:
                    disjuncts.append(
                        RewritingDisjunct(new_plan, disjunct.head_template)
                    )
                    plan_changes.append((disjunct.plan, new_plan))
                    changed = True
            rewritings[query_name] = tuple(disjuncts) if changed else rewriting
        delta = StateDelta(removed_views, tuple(added), tuple(plan_changes))
        return State(views, rewritings, validate=False), delta

    def describe(self) -> str:
        """A readable multi-line rendering (views then rewritings)."""
        lines = ["views:"]
        for view in self.views:
            lines.append(f"  {view}")
        lines.append("rewritings:")
        for query_name, rewriting in sorted(self.rewritings.items()):
            rendered = " UNION ".join(str(d.plan) for d in rewriting)
            lines.append(f"  {query_name} = {rendered}")
        return "\n".join(lines)


def normalize_view(query: ConjunctiveQuery, name: str) -> tuple[
    ConjunctiveQuery, tuple[QueryTerm, ...] | None
]:
    """Turn a workload query into a view with a variable-only head.

    Returns the view and the head template needed to rebuild the query's
    answers from the view's rows (None when the head was already a
    duplicate-free variable tuple).
    """
    seen: list[Variable] = []
    needs_template = False
    for term in query.head:
        if isinstance(term, Variable):
            if term in seen:
                needs_template = True
            else:
                seen.append(term)
        else:
            needs_template = True
    view_head = tuple(seen)
    view = ConjunctiveQuery(
        view_head, query.atoms, name=name, non_literal=query.non_literal
    )
    return view, (query.head if needs_template else None)


def initial_state(queries: Sequence[ConjunctiveQuery], namer: ViewNamer | None = None) -> State:
    """The search's initial state: one view per workload query (S0).

    Each rewriting is a plain view scan, so S0 has minimal rewriting cost
    but maximal storage/maintenance cost (Section 5.1).
    """
    namer = namer or ViewNamer()
    views = []
    rewritings: dict[str, Rewriting] = {}
    for query in queries:
        if query.name in rewritings:
            raise ValueError(f"duplicate query name {query.name!r} in workload")
        view, template = normalize_view(query, namer.fresh())
        views.append(view)
        scan = Scan(view.name, tuple(t.name for t in view.head), query=view)
        rewritings[query.name] = (RewritingDisjunct(scan, template),)
    return State(tuple(views), rewritings)


def initial_state_from_unions(
    unions: Sequence[UnionQuery], namer: ViewNamer | None = None
) -> State:
    """Pre-reformulation initial state (Section 4.3).

    Every disjunct of every reformulated query becomes a view; each
    query's rewriting is the union of its disjunct scans.
    """
    namer = namer or ViewNamer()
    views = []
    rewritings: dict[str, Rewriting] = {}
    for union in unions:
        if union.name in rewritings:
            raise ValueError(f"duplicate query name {union.name!r} in workload")
        disjuncts = []
        for disjunct_query in union:
            view, template = normalize_view(disjunct_query, namer.fresh())
            views.append(view)
            scan = Scan(view.name, tuple(t.name for t in view.head), query=view)
            disjuncts.append(RewritingDisjunct(scan, template))
        rewritings[union.name] = tuple(disjuncts)
    return State(tuple(views), rewritings)
