"""View selection: the paper's primary contribution.

The search space of candidate view sets is modeled by states
(:mod:`repro.selection.state`) connected by the four transitions SC, JC,
VB, VF (:mod:`repro.selection.transitions`), weighted by the cost model
of Section 3.3 (:mod:`repro.selection.costs` over
:mod:`repro.selection.statistics`), and explored by the strategies of
Section 5 (:mod:`repro.selection.search`) or the relational competitors
of Section 6.1 (:mod:`repro.selection.competitors`).
"""

from repro.selection.state import (
    State,
    StateDelta,
    Rewriting,
    RewritingDisjunct,
    initial_state,
)
from repro.selection.stategraph import StateGraph
from repro.selection.statistics import (
    Statistics,
    StoreStatistics,
    ReformulationAwareStatistics,
)
from repro.selection.costs import CostModel, CostWeights, CostBreakdown, CostDelta
from repro.selection.transitions import (
    Transition,
    TransitionKind,
    TransitionEnumerator,
)
from repro.selection.search import (
    STRATEGY_FACTORIES,
    SearchBudget,
    SearchCore,
    SearchNode,
    SearchResult,
    SearchStrategy,
    descent_search,
    dfs_search,
    exhaustive_naive_search,
    exhaustive_stratified_search,
    greedy_stratified_search,
    run_search,
)
from repro.selection.competitors import (
    MemoryBudgetExceeded,
    greedy_relational_search,
    heuristic_relational_search,
    pruning_relational_search,
)
from repro.selection.materialize import materialize_views, answer_query
from repro.selection.maintenance import MaterializedViewSet
from repro.selection import persist
from repro.selection.partition import (
    merge_states,
    partition_workload,
    partitioned_search,
)
from repro.selection.recommender import Recommendation, ViewSelector

__all__ = [
    "State",
    "StateDelta",
    "Rewriting",
    "RewritingDisjunct",
    "initial_state",
    "StateGraph",
    "Statistics",
    "StoreStatistics",
    "ReformulationAwareStatistics",
    "CostModel",
    "CostWeights",
    "CostBreakdown",
    "CostDelta",
    "Transition",
    "TransitionKind",
    "TransitionEnumerator",
    "STRATEGY_FACTORIES",
    "SearchBudget",
    "SearchCore",
    "SearchNode",
    "SearchResult",
    "SearchStrategy",
    "run_search",
    "dfs_search",
    "descent_search",
    "exhaustive_naive_search",
    "exhaustive_stratified_search",
    "greedy_stratified_search",
    "MemoryBudgetExceeded",
    "greedy_relational_search",
    "heuristic_relational_search",
    "pruning_relational_search",
    "materialize_views",
    "merge_states",
    "MaterializedViewSet",
    "persist",
    "partition_workload",
    "partitioned_search",
    "answer_query",
    "Recommendation",
    "ViewSelector",
]
