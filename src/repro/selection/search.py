"""The unified view-selection search core (Section 5).

One driver owns *all* run bookkeeping — budget, stop conditions,
duplicate detection, best-state tracking, the Figure-5 accounting and
the Figure-7 cost trace — and every strategy of the paper is a thin
policy object on top of it:

========  =============================  ===================================
name      frontier policy                stratum policy
========  =============================  ===================================
exnaive   round-robin, lazy candidates   none — any transition anywhere
exstr     round-robin, lazy candidates   resume at the creating stratum
dfs       cost-ordered stack             resume at the creating stratum
gstr      per-stratum stack, keep best   one stratum at a time, fresh dedup
descent   per-view work queue            first improving JC/VB/SC move
========  =============================  ===================================

The split is the :class:`SearchStrategy` protocol: a strategy decides
*which* state to look at next and *which* transition kinds apply from
it, and routes every created successor through the core's
:meth:`SearchCore.consider` / :meth:`SearchCore.complete` pair — so
budget, stoptt/stopvar, dedup and best-state accounting live in exactly
one place. ``complete`` prices whole waves of surviving successors at
once, through the incremental :class:`~repro.selection.costs.CostModel`
serially or, with ``workers > 1``, fanned out over the cached fork pool
of :mod:`repro.engine.parallel` (states in a wave are independent, and
cold-cache pricing is bitwise equal to warm-cache pricing, so parallel
results are identical to serial ones).

Options shared by all strategies:

* **AVF** (aggressive view fusion): immediately closes every new state
  under View Fusion and keeps only the fused fixpoint — sound because VF
  never increases cost (Section 3.3).
* **Stop conditions** ``stoptt`` / ``stopvar`` / ``stoptime``
  (Section 5.2): discard states with a full-triple-table view, discard
  states with an all-variable view, and bound the wall-clock time. A
  stop condition satisfied by the initial state is disabled, as the
  paper requires.

The historical entry points (:func:`dfs_search`,
:func:`exhaustive_naive_search`, :func:`exhaustive_stratified_search`,
:func:`greedy_stratified_search`, :func:`descent_search`) are thin
wrappers over :func:`run_search` and behave exactly as before.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol, Sequence, runtime_checkable

from repro.obs import metrics, tracing
from repro.query.cq import ConjunctiveQuery, Variable
from repro.selection.costs import CostBreakdown, CostModel, price_states
from repro.selection.state import State
from repro.selection.transitions import (
    STRATIFIED_ORDER,
    Transition,
    TransitionEnumerator,
    TransitionKind,
)

#: Waves smaller than this are always priced in-process: pool dispatch
#: plus state pickling costs more than pricing a handful of states.
MIN_PARALLEL_FRONTIER = 8


@dataclass(frozen=True, slots=True)
class SearchBudget:
    """Limits on a search run.

    ``time_limit`` is the stoptime condition in seconds; ``max_states``
    bounds the number of states created (a memory stand-in). ``None``
    means unlimited.
    """

    time_limit: float | None = None
    max_states: int | None = None


@dataclass(slots=True)
class SearchStats:
    """State accounting in the sense of Figure 5."""

    created: int = 0
    duplicates: int = 0
    discarded: int = 0
    explored: int = 0
    transitions: int = 0


@dataclass
class SearchResult:
    """Outcome of one search run."""

    best_state: State
    best_cost: float
    initial_cost: float
    stats: SearchStats
    runtime: float
    cost_history: list[tuple[float, float]] = field(default_factory=list)
    completed: bool = True
    strategy: str = ""

    @property
    def rcr(self) -> float:
        """Relative cost reduction (Section 6.1):
        ``(cε(S0) - cε(Sb)) / cε(S0)``."""
        if self.initial_cost == 0:
            return 0.0
        return (self.initial_cost - self.best_cost) / self.initial_cost

    def average_view_atoms(self) -> float:
        """Average atoms per recommended view (reported in Section 6.4)."""
        views = self.best_state.views
        return sum(len(view) for view in views) / len(views)


def view_is_triple_table(view: ConjunctiveQuery) -> bool:
    """stoptt: the view is the full triple table ``t(s, p, o)``."""
    if len(view.atoms) != 1:
        return False
    atom = view.atoms[0]
    terms = list(atom)
    return all(isinstance(t, Variable) for t in terms) and len(set(terms)) == 3


def view_is_all_variables(view: ConjunctiveQuery) -> bool:
    """stopvar: the view contains no constants at all."""
    return not view.constants()


def avf_closure(
    state: State, enumerator: TransitionEnumerator, run: "SearchCore | None" = None
) -> State:
    """Aggressive View Fusion: fuse until no two views are isomorphic.

    Intermediate states are discarded (and counted as such); repeated
    fusions converge to a single state since each strictly shrinks the
    view count.
    """
    current = state
    while True:
        pairs = enumerator.vf_candidates(current)
        if not pairs:
            return current
        transition = enumerator.apply_vf(current, *pairs[0])
        if run is not None:
            run.stats.created += 1
            run.stats.transitions += 1
            run.stats.discarded += 1  # the pre-fusion intermediate is dropped
        current = transition.result


_KIND_INDEX = {kind: index for index, kind in enumerate(STRATIFIED_ORDER)}


@dataclass(slots=True)
class SearchNode:
    """One frontier entry: a state, its exact cost, and the minimum
    stratum index still applicable from it (stratified strategies)."""

    state: State
    breakdown: CostBreakdown
    stage: int = 0

    @property
    def cost(self) -> float:
        return self.breakdown.total


class SearchCore:
    """Shared bookkeeping and successor accounting for one search run.

    Strategies create successors in two steps: :meth:`consider` applies
    the per-successor accounting (created / AVF closure / duplicate /
    stop-condition) and returns the surviving state or ``None``;
    :meth:`complete` prices a wave of survivors (serially, or on the
    fork pool with ``workers > 1``), offers each as a candidate best,
    and wraps them into :class:`SearchNode` entries.
    """

    def __init__(
        self,
        initial: State,
        cost_model: CostModel,
        enumerator: TransitionEnumerator,
        budget: SearchBudget,
        use_avf: bool,
        use_stoptt: bool,
        use_stopvar: bool,
        workers: int = 1,
    ) -> None:
        self.cost_model = cost_model
        self.enumerator = enumerator
        self.budget = budget
        self.use_avf = use_avf
        self.workers = max(1, workers)
        self.stats = SearchStats()
        self.started = time.perf_counter()
        self.initial_breakdown = cost_model.cost(initial)
        self.initial_cost = self.initial_breakdown.total
        self.best_state = initial
        self.best_cost = self.initial_cost
        self.cost_history: list[tuple[float, float]] = [(0.0, self.initial_cost)]
        self.completed = True
        # Stop conditions satisfied by S0 are disabled (Section 5.2).
        self.use_stoptt = use_stoptt and not any(
            view_is_triple_table(v) for v in initial.views
        )
        self.use_stopvar = use_stopvar and not any(
            view_is_all_variables(v) for v in initial.views
        )
        self.seen: set[tuple] = {initial.key}
        self.root = SearchNode(initial, self.initial_breakdown, 0)
        # Baseline for the memo-hit deltas this run publishes through
        # the metrics registry (the cost model may be shared across
        # runs, so absolute counter values are not ours to claim).
        self._memo_baseline = dict(cost_model.counters)

    # -- run bookkeeping ------------------------------------------------

    def elapsed(self) -> float:
        return time.perf_counter() - self.started

    def out_of_budget(self) -> bool:
        budget = self.budget
        if budget.time_limit is not None and self.elapsed() > budget.time_limit:
            self.completed = False
            return True
        if budget.max_states is not None and self.stats.created > budget.max_states:
            self.completed = False
            return True
        return False

    def rejected(self, state: State) -> bool:
        """Apply the stoptt / stopvar stop conditions."""
        if self.use_stoptt and any(view_is_triple_table(v) for v in state.views):
            return True
        if self.use_stopvar and any(view_is_all_variables(v) for v in state.views):
            return True
        return False

    def offer(self, state: State, cost: float) -> None:
        """Record a (kept) state as a candidate best."""
        if cost < self.best_cost:
            self.best_cost = cost
            self.best_state = state
            self.cost_history.append((self.elapsed(), cost))

    def mark_explored(self, count: int = 1) -> None:
        """A strategy finished expanding ``count`` states."""
        self.stats.explored += count

    def discard(self, count: int = 1) -> None:
        """A strategy dropped ``count`` states it will not pursue
        (e.g. GSTR keeping only a stratum's best)."""
        self.stats.discarded += count

    def reset_dedup(self, *keys: tuple) -> None:
        """Restart duplicate detection from the given state keys (GSTR
        dedups per stratum, as in the paper)."""
        self.seen = set(keys)

    # -- successor pipeline ---------------------------------------------

    def consider(self, transition: Transition) -> State | None:
        """Account one created transition; returns the surviving state.

        Applies, in order: creation accounting, aggressive view fusion
        (never after a VF — the closure already is one), duplicate
        detection on canonical state keys, and the stoptt/stopvar stop
        conditions. ``None`` means the successor was consumed by the
        accounting (duplicate or discarded).
        """
        self.stats.created += 1
        self.stats.transitions += 1
        successor = transition.result
        if self.use_avf and transition.kind is not TransitionKind.VF:
            successor = avf_closure(successor, self.enumerator, self)
        if successor.key in self.seen:
            self.stats.duplicates += 1
            return None
        self.seen.add(successor.key)
        if self.rejected(successor):
            self.stats.discarded += 1
            return None
        return successor

    def price_frontier(self, states: Sequence[State]) -> list[CostBreakdown]:
        """Exact breakdowns for a wave of independent states.

        Serial by default; with ``workers > 1`` and a large enough wave
        the states are priced on the cached fork pool. Cold-cache
        pricing is bitwise identical to warm-cache pricing (the cost
        model's contract), so both paths return the same floats.
        """
        if not metrics.enabled and tracing.sink is None:
            return self._price_frontier(states)
        with tracing.span("selection.search.wave", states=len(states)):
            started = time.perf_counter()
            breakdowns = self._price_frontier(states)
            if metrics.enabled:
                metrics.inc("selection.search.waves")
                metrics.observe("selection.search.wave_size", len(states))
                metrics.observe(
                    "selection.search.wave_ms",
                    (time.perf_counter() - started) * 1000.0,
                )
        return breakdowns

    def _price_frontier(self, states: Sequence[State]) -> list[CostBreakdown]:
        if self.workers > 1 and len(states) >= MIN_PARALLEL_FRONTIER:
            try:
                from repro.engine.parallel import map_chunks

                chunk = (len(states) + self.workers - 1) // self.workers
                chunks = [
                    list(states[start : start + chunk])
                    for start in range(0, len(states), chunk)
                ]
                results = map_chunks(
                    price_states, self.cost_model, chunks, self.workers
                )
                return [breakdown for batch in results for breakdown in batch]
            except Exception:
                # Unpicklable statistics provider or a broken pool:
                # fall back to the (identical) serial pricing, and stop
                # retrying the pool — the failure is per-run, not
                # per-wave.
                self.workers = 1
        return [self.cost_model.cost(state) for state in states]

    def complete(
        self, states: Sequence[State], stages: Sequence[int] | None = None
    ) -> list[SearchNode]:
        """Price a wave of surviving successors and offer each."""
        if not states:
            return []
        breakdowns = self.price_frontier(states)
        nodes = []
        for index, (state, breakdown) in enumerate(zip(states, breakdowns)):
            self.offer(state, breakdown.total)
            stage = stages[index] if stages is not None else 0
            nodes.append(SearchNode(state, breakdown, stage))
        return nodes

    def expand(
        self, node: SearchNode, kinds: Sequence[TransitionKind]
    ) -> Iterator[State]:
        """Surviving successors of one state under the given kinds."""
        for transition in self.enumerator.transitions(node.state, kinds):
            survivor = self.consider(transition)
            if survivor is not None:
                yield survivor
            if self.out_of_budget():
                return

    def result(self, strategy: str = "") -> SearchResult:
        if metrics.enabled:
            stats = self.stats
            metrics.inc("selection.search.runs")
            metrics.inc("selection.search.created", stats.created)
            metrics.inc("selection.search.duplicates", stats.duplicates)
            metrics.inc("selection.search.discarded", stats.discarded)
            metrics.inc("selection.search.explored", stats.explored)
            counters = self.cost_model.counters
            for key, metric in (
                ("view_hits", "selection.memo.view_hit"),
                ("view_misses", "selection.memo.view_miss"),
                ("plan_hits", "selection.memo.plan_hit"),
                ("plan_misses", "selection.memo.plan_miss"),
            ):
                delta = counters.get(key, 0) - self._memo_baseline.get(key, 0)
                if delta:
                    metrics.inc(metric, delta)
            self._memo_baseline = dict(counters)
        return SearchResult(
            best_state=self.best_state,
            best_cost=self.best_cost,
            initial_cost=self.initial_cost,
            stats=self.stats,
            runtime=self.elapsed(),
            cost_history=self.cost_history,
            completed=self.completed,
            strategy=strategy,
        )


@runtime_checkable
class SearchStrategy(Protocol):
    """A search strategy: a frontier policy over the core's primitives.

    ``run`` drives the whole exploration through
    :meth:`SearchCore.consider` / :meth:`SearchCore.complete` /
    :meth:`SearchCore.expand`; it must check
    :meth:`SearchCore.out_of_budget` between expansions. The stratum
    policy is the strategy's choice of transition kinds per frontier
    entry (most use :data:`STRATIFIED_ORDER` suffixes via
    ``SearchNode.stage``).
    """

    name: str

    def run(self, core: SearchCore) -> None:
        """Explore until exhaustion or budget."""


class ExhaustiveStrategy:
    """EXNAÏVE / EXSTR (Algorithm 2): round-robin over lazy candidates.

    Every candidate state keeps a lazy transition iterator; one round
    advances each candidate by one surviving successor, the round's
    survivors are priced as one wave, and exhausted candidates move to
    the explored count. With ``stratified=True`` every path respects the
    ``VB* SC* JC* VF*`` order of Definition 5.3 (Theorem 5.3: never more
    transitions than EXNAÏVE).
    """

    def __init__(self, stratified: bool) -> None:
        self.stratified = stratified
        self.name = "exstr" if stratified else "exnaive"

    def _iterator(self, core: SearchCore, node: SearchNode):
        kinds = (
            STRATIFIED_ORDER[node.stage :] if self.stratified else STRATIFIED_ORDER
        )
        return core.enumerator.transitions(node.state, kinds)

    def run(self, core: SearchCore) -> None:
        candidates: list = [(core.root, self._iterator(core, core.root))]
        while candidates:
            if core.out_of_budget():
                break
            progressed = False
            wave: list[State] = []
            wave_stages: list[int] = []
            for position in range(len(candidates)):
                if core.out_of_budget():
                    break
                node, iterator = candidates[position]
                advanced = False
                for transition in iterator:  # resume where we left off
                    stage = _KIND_INDEX[transition.kind] if self.stratified else 0
                    survivor = core.consider(transition)
                    if survivor is None:
                        continue
                    wave.append(survivor)
                    wave_stages.append(stage)
                    advanced = True
                    break
                if not advanced:
                    candidates[position] = None
                    core.mark_explored()
                else:
                    progressed = True
            for successor in core.complete(wave, wave_stages):
                candidates.append((successor, self._iterator(core, successor)))
            candidates = [entry for entry in candidates if entry is not None]
            if not progressed and not candidates:
                break


class DfsStrategy:
    """Stratified depth-first search (DFS, Section 5.2).

    Expands one state fully (all strata from its stage on), prices the
    survivors as one wave, and pushes them cheapest-last so the stack
    pops the cheapest successor first — under a stoptime condition,
    cost-guided descent reaches low-cost regions long before plain DFS
    order.
    """

    name = "dfs"

    def run(self, core: SearchCore) -> None:
        stack: list[SearchNode] = [core.root]
        while stack:
            if core.out_of_budget():
                break
            node = stack.pop()
            core.mark_explored()
            wave: list[State] = []
            wave_stages: list[int] = []
            for kind_index in range(node.stage, len(STRATIFIED_ORDER)):
                kind = STRATIFIED_ORDER[kind_index]
                for survivor in core.expand(node, [kind]):
                    wave.append(survivor)
                    wave_stages.append(kind_index)
                if core.out_of_budget():
                    break
            pending = core.complete(wave, wave_stages)
            pending.sort(key=lambda entry: -entry.cost)
            stack.extend(pending)


class GreedyStratifiedStrategy:
    """GSTR: exhaust each stratum, keep only the best state in between.

    Duplicate detection restarts per stratum (the paper's CS/ES sets are
    per phase); every state but the stratum's best is discarded.
    """

    name = "gstr"

    def run(self, core: SearchCore) -> None:
        current = core.root
        for kind in STRATIFIED_ORDER:
            core.reset_dedup(current.state.key)
            stack = [current]
            stratum_best = current
            while stack:
                if core.out_of_budget():
                    break
                node = stack.pop()
                core.mark_explored()
                wave = list(core.expand(node, [kind]))
                successors = core.complete(wave)
                for successor in successors:
                    if successor.cost < stratum_best.cost:
                        stratum_best = successor
                stack.extend(successors)
            # All states but the stratum best are discarded (GSTR).
            core.discard(max(0, len(core.seen) - 1))
            current = stratum_best
            if core.out_of_budget():
                break


class DescentStrategy:
    """First-improvement stratified descent — the large-workload scaling
    mode of DFS.

    At each step the applicable transitions are generated lazily in
    stratified order and the first one that lowers the state cost is
    applied immediately (with aggressive view fusion), instead of fully
    expanding every state. This is the lazy traversal order of the
    paper's recursive DFS pseudocode, restricted to the improving branch
    — on 100+-query workloads it applies thousands of cost-reducing
    transitions within a stoptime budget where eager expansion would not
    finish expanding the initial state (the paper's runs had hours; see
    Section 6.4).

    Transition kinds are tried per view in the order JC, VB, SC (VF is
    folded in through aggressive view fusion): SC never lowers the cost
    (Section 3.3), so the improving moves concentrate on the cuts and
    breaks. A work queue visits one view at a time and re-enqueues the
    views a transition produces, so each improvement costs one view's
    candidates rather than a full state expansion. Like GSTR, this
    strategy trades the completeness guarantee for throughput.
    """

    name = "descent"

    def __init__(
        self,
        kinds: tuple[TransitionKind, ...] = (
            TransitionKind.JC,
            TransitionKind.VB,
            TransitionKind.SC,
        ),
    ) -> None:
        self.kinds = kinds

    def _view_candidates(
        self, core: SearchCore, state: State, view_name: str
    ) -> Iterator[Transition]:
        """Lazily yield this view's transitions, in the ``kinds`` order."""
        enumerator = core.enumerator
        view = state.view(view_name)
        for kind in self.kinds:
            if kind is TransitionKind.JC:
                for atom_index, attribute in enumerator.jc_candidates(view):
                    yield enumerator.apply_jc(state, view_name, atom_index, attribute)
            elif kind is TransitionKind.VB:
                for part1, part2 in enumerator.vb_candidates(view):
                    yield enumerator.apply_vb(state, view_name, part1, part2)
            elif kind is TransitionKind.SC:
                for atom_index, attribute, _ in enumerator.sc_candidates(view):
                    yield enumerator.apply_sc(state, view_name, atom_index, attribute)

    def run(self, core: SearchCore) -> None:
        current = core.root
        if core.use_avf:
            fused = avf_closure(current.state, core.enumerator, core)
            if fused is not current.state:
                core.seen.add(fused.key)
                current = core.complete([fused])[0]

        queue = deque(view.name for view in current.state.views)
        queued = set(queue)
        while queue and not core.out_of_budget():
            view_name = queue.popleft()
            queued.discard(view_name)
            if not any(view.name == view_name for view in current.state.views):
                continue  # the view was fused away in the meantime
            improved = False
            for transition in self._view_candidates(core, current.state, view_name):
                survivor = core.consider(transition)
                if survivor is None:
                    continue
                successor = core.complete([survivor])[0]
                if successor.cost < current.cost:
                    old_names = {view.name for view in current.state.views}
                    current = successor
                    core.mark_explored()
                    improved = True
                    for view in current.state.views:
                        if view.name not in old_names and view.name not in queued:
                            queue.append(view.name)
                            queued.add(view.name)
                    break
                core.discard()
                if core.out_of_budget():
                    break
            if improved and view_name not in queued:
                # The view may have survived (e.g. a sibling was split
                # off); give it another chance later.
                queue.append(view_name)
                queued.add(view_name)


#: Strategy factories by name — the registry the recommender and the CLI
#: resolve ``--strategy`` against.
STRATEGY_FACTORIES: dict[str, Callable[[], SearchStrategy]] = {
    "exnaive": lambda: ExhaustiveStrategy(stratified=False),
    "exstr": lambda: ExhaustiveStrategy(stratified=True),
    "dfs": DfsStrategy,
    "gstr": GreedyStratifiedStrategy,
    "descent": DescentStrategy,
}


def run_search(
    initial: State,
    cost_model: CostModel,
    strategy: SearchStrategy | str,
    enumerator: TransitionEnumerator | None = None,
    budget: SearchBudget | None = None,
    use_avf: bool = True,
    use_stoptt: bool = True,
    use_stopvar: bool = True,
    workers: int = 1,
) -> SearchResult:
    """Run one search strategy through the unified core."""
    if isinstance(strategy, str):
        try:
            strategy = STRATEGY_FACTORIES[strategy]()
        except KeyError:
            raise ValueError(
                f"unknown strategy {strategy!r}; "
                f"pick from {sorted(STRATEGY_FACTORIES)}"
            ) from None
    core = SearchCore(
        initial,
        cost_model,
        enumerator or TransitionEnumerator(),
        budget or SearchBudget(),
        use_avf=use_avf,
        use_stoptt=use_stoptt,
        use_stopvar=use_stopvar,
        workers=workers,
    )
    with tracing.span("selection.run_search", strategy=strategy.name):
        strategy.run(core)
    return core.result(strategy.name)


# ----------------------------------------------------------------------
# Historical entry points (thin wrappers, unchanged signatures)
# ----------------------------------------------------------------------


def dfs_search(
    initial: State,
    cost_model: CostModel,
    enumerator: TransitionEnumerator | None = None,
    budget: SearchBudget | None = None,
    use_avf: bool = True,
    use_stoptt: bool = True,
    use_stopvar: bool = True,
    workers: int = 1,
) -> SearchResult:
    """Stratified depth-first search (DFS, Section 5.2)."""
    return run_search(
        initial, cost_model, DfsStrategy(), enumerator, budget,
        use_avf=use_avf, use_stoptt=use_stoptt, use_stopvar=use_stopvar,
        workers=workers,
    )


def exhaustive_naive_search(
    initial: State,
    cost_model: CostModel,
    enumerator: TransitionEnumerator | None = None,
    budget: SearchBudget | None = None,
    use_avf: bool = False,
    use_stoptt: bool = True,
    use_stopvar: bool = False,
    workers: int = 1,
) -> SearchResult:
    """EXNAÏVE (Algorithm 2): unordered transitions, CS/ES bookkeeping."""
    return run_search(
        initial, cost_model, ExhaustiveStrategy(stratified=False),
        enumerator, budget,
        use_avf=use_avf, use_stoptt=use_stoptt, use_stopvar=use_stopvar,
        workers=workers,
    )


def exhaustive_stratified_search(
    initial: State,
    cost_model: CostModel,
    enumerator: TransitionEnumerator | None = None,
    budget: SearchBudget | None = None,
    use_avf: bool = False,
    use_stoptt: bool = True,
    use_stopvar: bool = False,
    workers: int = 1,
) -> SearchResult:
    """EXSTR: exhaustive search along stratified paths only."""
    return run_search(
        initial, cost_model, ExhaustiveStrategy(stratified=True),
        enumerator, budget,
        use_avf=use_avf, use_stoptt=use_stoptt, use_stopvar=use_stopvar,
        workers=workers,
    )


def greedy_stratified_search(
    initial: State,
    cost_model: CostModel,
    enumerator: TransitionEnumerator | None = None,
    budget: SearchBudget | None = None,
    use_avf: bool = True,
    use_stoptt: bool = True,
    use_stopvar: bool = True,
    workers: int = 1,
) -> SearchResult:
    """GSTR: exhaust each stratum, keep only the best state in between."""
    return run_search(
        initial, cost_model, GreedyStratifiedStrategy(), enumerator, budget,
        use_avf=use_avf, use_stoptt=use_stoptt, use_stopvar=use_stopvar,
        workers=workers,
    )


def descent_search(
    initial: State,
    cost_model: CostModel,
    enumerator: TransitionEnumerator | None = None,
    budget: SearchBudget | None = None,
    use_avf: bool = True,
    use_stoptt: bool = True,
    use_stopvar: bool = True,
    kinds: tuple[TransitionKind, ...] = (
        TransitionKind.JC,
        TransitionKind.VB,
        TransitionKind.SC,
    ),
    workers: int = 1,
) -> SearchResult:
    """First-improvement stratified descent (see :class:`DescentStrategy`)."""
    return run_search(
        initial, cost_model, DescentStrategy(kinds), enumerator, budget,
        use_avf=use_avf, use_stoptt=use_stoptt, use_stopvar=use_stopvar,
        workers=workers,
    )
