"""Search strategies over the space of candidate view sets (Section 5).

Implemented strategies:

* :func:`exhaustive_naive_search` — EXNAÏVE (Algorithm 2): any transition
  on any candidate state, duplicate states detected by canonical keys.
* :func:`exhaustive_stratified_search` — EXSTR: like EXNAÏVE but every
  path respects the stratification ``VB* SC* JC* VF*`` (Definition 5.3),
  which provably never applies more transitions (Theorem 5.3).
* :func:`dfs_search` — DFS: stratified depth-first exploration; the
  candidate set stays small, which is the paper's answer to the memory
  blow-ups of the relational strategies.
* :func:`greedy_stratified_search` — GSTR: exhausts each stratum but
  keeps only the best state between strata.

Options shared by all strategies:

* **AVF** (aggressive view fusion): immediately closes every new state
  under View Fusion and keeps only the fused fixpoint — sound because VF
  never increases cost (Section 3.3).
* **Stop conditions** ``stoptt`` / ``stopvar`` / ``stoptime``
  (Section 5.2): discard states with a full-triple-table view, discard
  states with an all-variable view, and bound the wall-clock time. A
  stop condition satisfied by the initial state is disabled, as the
  paper requires.

Every search returns a :class:`SearchResult` with the Figure-5 state
accounting (created / duplicates / discarded / explored) and the
Figure-7 cost-over-time trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.query.cq import ConjunctiveQuery, Variable
from repro.selection.costs import CostModel
from repro.selection.state import State
from repro.selection.transitions import (
    STRATIFIED_ORDER,
    Transition,
    TransitionEnumerator,
    TransitionKind,
)


@dataclass(frozen=True, slots=True)
class SearchBudget:
    """Limits on a search run.

    ``time_limit`` is the stoptime condition in seconds; ``max_states``
    bounds the number of states created (a memory stand-in). ``None``
    means unlimited.
    """

    time_limit: float | None = None
    max_states: int | None = None


@dataclass(slots=True)
class SearchStats:
    """State accounting in the sense of Figure 5."""

    created: int = 0
    duplicates: int = 0
    discarded: int = 0
    explored: int = 0
    transitions: int = 0


@dataclass
class SearchResult:
    """Outcome of one search run."""

    best_state: State
    best_cost: float
    initial_cost: float
    stats: SearchStats
    runtime: float
    cost_history: list[tuple[float, float]] = field(default_factory=list)
    completed: bool = True

    @property
    def rcr(self) -> float:
        """Relative cost reduction (Section 6.1):
        ``(cε(S0) - cε(Sb)) / cε(S0)``."""
        if self.initial_cost == 0:
            return 0.0
        return (self.initial_cost - self.best_cost) / self.initial_cost

    def average_view_atoms(self) -> float:
        """Average atoms per recommended view (reported in Section 6.4)."""
        views = self.best_state.views
        return sum(len(view) for view in views) / len(views)


def view_is_triple_table(view: ConjunctiveQuery) -> bool:
    """stoptt: the view is the full triple table ``t(s, p, o)``."""
    if len(view.atoms) != 1:
        return False
    atom = view.atoms[0]
    terms = list(atom)
    return all(isinstance(t, Variable) for t in terms) and len(set(terms)) == 3


def view_is_all_variables(view: ConjunctiveQuery) -> bool:
    """stopvar: the view contains no constants at all."""
    return not view.constants()


class _Run:
    """Shared bookkeeping for one search run."""

    def __init__(
        self,
        initial: State,
        cost_model: CostModel,
        budget: SearchBudget,
        use_stoptt: bool,
        use_stopvar: bool,
    ) -> None:
        self.cost_model = cost_model
        self.budget = budget
        self.stats = SearchStats()
        self.started = time.perf_counter()
        self.initial_cost = cost_model.total_cost(initial)
        self.best_state = initial
        self.best_cost = self.initial_cost
        self.cost_history: list[tuple[float, float]] = [(0.0, self.initial_cost)]
        self.completed = True
        # Stop conditions satisfied by S0 are disabled (Section 5.2).
        self.use_stoptt = use_stoptt and not any(
            view_is_triple_table(v) for v in initial.views
        )
        self.use_stopvar = use_stopvar and not any(
            view_is_all_variables(v) for v in initial.views
        )

    def elapsed(self) -> float:
        return time.perf_counter() - self.started

    def out_of_budget(self) -> bool:
        budget = self.budget
        if budget.time_limit is not None and self.elapsed() > budget.time_limit:
            self.completed = False
            return True
        if budget.max_states is not None and self.stats.created > budget.max_states:
            self.completed = False
            return True
        return False

    def rejected(self, state: State) -> bool:
        """Apply the stoptt / stopvar stop conditions."""
        if self.use_stoptt and any(view_is_triple_table(v) for v in state.views):
            return True
        if self.use_stopvar and any(view_is_all_variables(v) for v in state.views):
            return True
        return False

    def offer(self, state: State) -> None:
        """Record a (kept) state as a candidate best."""
        cost = self.cost_model.total_cost(state)
        if cost < self.best_cost:
            self.best_cost = cost
            self.best_state = state
            self.cost_history.append((self.elapsed(), cost))

    def result(self) -> SearchResult:
        return SearchResult(
            best_state=self.best_state,
            best_cost=self.best_cost,
            initial_cost=self.initial_cost,
            stats=self.stats,
            runtime=self.elapsed(),
            cost_history=self.cost_history,
            completed=self.completed,
        )


def avf_closure(
    state: State, enumerator: TransitionEnumerator, run: _Run | None = None
) -> State:
    """Aggressive View Fusion: fuse until no two views are isomorphic.

    Intermediate states are discarded (and counted as such); repeated
    fusions converge to a single state since each strictly shrinks the
    view count.
    """
    current = state
    while True:
        pairs = enumerator.vf_candidates(current)
        if not pairs:
            return current
        transition = enumerator.apply_vf(current, *pairs[0])
        if run is not None:
            run.stats.created += 1
            run.stats.transitions += 1
            run.stats.discarded += 1  # the pre-fusion intermediate is dropped
        current = transition.result


_KIND_INDEX = {kind: index for index, kind in enumerate(STRATIFIED_ORDER)}


def dfs_search(
    initial: State,
    cost_model: CostModel,
    enumerator: TransitionEnumerator | None = None,
    budget: SearchBudget | None = None,
    use_avf: bool = True,
    use_stoptt: bool = True,
    use_stopvar: bool = True,
) -> SearchResult:
    """Stratified depth-first search (DFS, Section 5.2)."""
    enumerator = enumerator or TransitionEnumerator()
    budget = budget or SearchBudget()
    run = _Run(initial, cost_model, budget, use_stoptt, use_stopvar)
    seen: set[tuple] = {initial.key}
    # Each entry: (state, minimum stratum index allowed from here).
    stack: list[tuple[State, int]] = [(initial, 0)]
    while stack:
        if run.out_of_budget():
            break
        state, stage = stack.pop()
        run.stats.explored += 1
        pending: list[tuple[float, State, int]] = []
        aborted = False
        for kind_index in range(stage, len(STRATIFIED_ORDER)):
            kind = STRATIFIED_ORDER[kind_index]
            for transition in enumerator.transitions(state, [kind]):
                run.stats.created += 1
                run.stats.transitions += 1
                successor = transition.result
                if use_avf and kind is not TransitionKind.VF:
                    successor = avf_closure(successor, enumerator, run)
                if successor.key in seen:
                    run.stats.duplicates += 1
                    continue
                seen.add(successor.key)
                if run.rejected(successor):
                    run.stats.discarded += 1
                    continue
                run.offer(successor)
                pending.append(
                    (cost_model.total_cost(successor), successor, kind_index)
                )
                if run.out_of_budget():
                    aborted = True
                    break
            if aborted:
                break
        # Expand the cheapest successor first (the stack pops from the
        # end): under a stoptime condition, cost-guided depth-first
        # descent reaches low-cost regions long before plain DFS order.
        pending.sort(key=lambda entry: -entry[0])
        stack.extend((state, stage) for _, state, stage in pending)
    return run.result()


def exhaustive_naive_search(
    initial: State,
    cost_model: CostModel,
    enumerator: TransitionEnumerator | None = None,
    budget: SearchBudget | None = None,
    use_avf: bool = False,
    use_stoptt: bool = True,
    use_stopvar: bool = False,
) -> SearchResult:
    """EXNAÏVE (Algorithm 2): unordered transitions, CS/ES bookkeeping."""
    return _exhaustive(
        initial, cost_model, enumerator, budget, stratified=False,
        use_avf=use_avf, use_stoptt=use_stoptt, use_stopvar=use_stopvar,
    )


def exhaustive_stratified_search(
    initial: State,
    cost_model: CostModel,
    enumerator: TransitionEnumerator | None = None,
    budget: SearchBudget | None = None,
    use_avf: bool = False,
    use_stoptt: bool = True,
    use_stopvar: bool = False,
) -> SearchResult:
    """EXSTR: exhaustive search along stratified paths only."""
    return _exhaustive(
        initial, cost_model, enumerator, budget, stratified=True,
        use_avf=use_avf, use_stoptt=use_stoptt, use_stopvar=use_stopvar,
    )


def _exhaustive(
    initial: State,
    cost_model: CostModel,
    enumerator: TransitionEnumerator | None,
    budget: SearchBudget | None,
    stratified: bool,
    use_avf: bool,
    use_stoptt: bool,
    use_stopvar: bool,
) -> SearchResult:
    enumerator = enumerator or TransitionEnumerator()
    budget = budget or SearchBudget()
    run = _Run(initial, cost_model, budget, use_stoptt, use_stopvar)
    seen: set[tuple] = {initial.key}
    # Candidate states carry a lazy transition iterator; exhausted
    # candidates move to the explored set (only counted, not stored).
    candidates: list[tuple[State, object]] = []

    def make_iterator(state: State, stage: int):
        kinds = STRATIFIED_ORDER[stage:] if stratified else STRATIFIED_ORDER
        return enumerator.transitions(state, kinds)

    def stage_of(transition: Transition) -> int:
        return _KIND_INDEX[transition.kind] if stratified else 0

    candidates.append((initial, make_iterator(initial, 0)))
    while candidates:
        if run.out_of_budget():
            break
        progressed = False
        for position in range(len(candidates)):
            if run.out_of_budget():
                break
            state, iterator = candidates[position]
            advanced = False
            for transition in iterator:  # resume where we left off
                run.stats.created += 1
                run.stats.transitions += 1
                successor = transition.result
                if use_avf and transition.kind is not TransitionKind.VF:
                    successor = avf_closure(successor, enumerator, run)
                if successor.key in seen:
                    run.stats.duplicates += 1
                    continue
                seen.add(successor.key)
                if run.rejected(successor):
                    run.stats.discarded += 1
                    continue
                run.offer(successor)
                candidates.append(
                    (successor, make_iterator(successor, stage_of(transition)))
                )
                advanced = True
                break
            if not advanced:
                candidates[position] = None  # type: ignore[assignment]
                run.stats.explored += 1
            else:
                progressed = True
        candidates = [entry for entry in candidates if entry is not None]
        if not progressed and not candidates:
            break
    return run.result()


def descent_search(
    initial: State,
    cost_model: CostModel,
    enumerator: TransitionEnumerator | None = None,
    budget: SearchBudget | None = None,
    use_avf: bool = True,
    use_stoptt: bool = True,
    use_stopvar: bool = True,
    kinds: tuple[TransitionKind, ...] = (
        TransitionKind.JC,
        TransitionKind.VB,
        TransitionKind.SC,
    ),
) -> SearchResult:
    """First-improvement stratified descent — the large-workload scaling
    mode of DFS.

    At each step the applicable transitions are generated lazily in
    stratified order and the first one that lowers the state cost is
    applied immediately (with aggressive view fusion), instead of fully
    expanding every state. This is the lazy traversal order of the
    paper's recursive DFS pseudocode, restricted to the improving branch
    — on 100+-query workloads it applies thousands of cost-reducing
    transitions within a stoptime budget where eager expansion would not
    finish expanding the initial state (the paper's runs had hours; see
    Section 6.4).

    Transition kinds are tried per view in the order JC, VB, SC (VF is
    folded in through aggressive view fusion): SC never lowers the cost
    (Section 3.3), so the improving moves concentrate on the cuts and
    breaks. A work queue visits one view at a time and re-enqueues the
    views a transition produces, so each improvement costs one view's
    candidates rather than a full state expansion. Like GSTR, this
    strategy trades the completeness guarantee for throughput.
    """
    from collections import deque

    enumerator = enumerator or TransitionEnumerator()
    budget = budget or SearchBudget()
    run = _Run(initial, cost_model, budget, use_stoptt, use_stopvar)
    seen: set[tuple] = {initial.key}
    current = avf_closure(initial, enumerator, run) if use_avf else initial
    current_cost = cost_model.total_cost(current)
    if current is not initial:
        run.offer(current)

    def view_candidates(state: State, view_name: str):
        """Lazily yield this view's transitions, in the ``kinds`` order."""
        view = state.view(view_name)
        for kind in kinds:
            if kind is TransitionKind.JC:
                for atom_index, attribute in enumerator.jc_candidates(view):
                    yield enumerator.apply_jc(state, view_name, atom_index, attribute)
            elif kind is TransitionKind.VB:
                for part1, part2 in enumerator.vb_candidates(view):
                    yield enumerator.apply_vb(state, view_name, part1, part2)
            elif kind is TransitionKind.SC:
                for atom_index, attribute, _ in enumerator.sc_candidates(view):
                    yield enumerator.apply_sc(state, view_name, atom_index, attribute)

    queue = deque(view.name for view in current.views)
    queued = set(queue)
    while queue and not run.out_of_budget():
        view_name = queue.popleft()
        queued.discard(view_name)
        if not any(view.name == view_name for view in current.views):
            continue  # the view was fused away in the meantime
        improved = False
        for transition in view_candidates(current, view_name):
            run.stats.created += 1
            run.stats.transitions += 1
            successor = transition.result
            if use_avf:
                successor = avf_closure(successor, enumerator, run)
            if successor.key in seen:
                run.stats.duplicates += 1
                continue
            seen.add(successor.key)
            if run.rejected(successor):
                run.stats.discarded += 1
                continue
            cost = cost_model.total_cost(successor)
            if cost < current_cost:
                run.offer(successor)
                old_names = {view.name for view in current.views}
                current, current_cost = successor, cost
                run.stats.explored += 1
                improved = True
                for view in current.views:
                    if view.name not in old_names and view.name not in queued:
                        queue.append(view.name)
                        queued.add(view.name)
                break
            run.stats.discarded += 1
            if run.out_of_budget():
                break
        if improved and view_name not in queued:
            # The view may have survived (e.g. a sibling was split off);
            # give it another chance later.
            queue.append(view_name)
            queued.add(view_name)
    return run.result()


def greedy_stratified_search(
    initial: State,
    cost_model: CostModel,
    enumerator: TransitionEnumerator | None = None,
    budget: SearchBudget | None = None,
    use_avf: bool = True,
    use_stoptt: bool = True,
    use_stopvar: bool = True,
) -> SearchResult:
    """GSTR: exhaust each stratum, keep only the best state in between."""
    enumerator = enumerator or TransitionEnumerator()
    budget = budget or SearchBudget()
    run = _Run(initial, cost_model, budget, use_stoptt, use_stopvar)
    current = initial
    for kind in STRATIFIED_ORDER:
        # Explore everything reachable from `current` using `kind` only.
        seen: set[tuple] = {current.key}
        stack = [current]
        stratum_best = current
        stratum_best_cost = run.cost_model.total_cost(current)
        while stack:
            if run.out_of_budget():
                break
            state = stack.pop()
            run.stats.explored += 1
            for transition in enumerator.transitions(state, [kind]):
                run.stats.created += 1
                run.stats.transitions += 1
                successor = transition.result
                if use_avf and kind is not TransitionKind.VF:
                    successor = avf_closure(successor, enumerator, run)
                if successor.key in seen:
                    run.stats.duplicates += 1
                    continue
                seen.add(successor.key)
                if run.rejected(successor):
                    run.stats.discarded += 1
                    continue
                run.offer(successor)
                cost = run.cost_model.total_cost(successor)
                if cost < stratum_best_cost:
                    stratum_best, stratum_best_cost = successor, cost
                stack.append(successor)
                if run.out_of_budget():
                    break
        # All states but the stratum best are discarded (GSTR).
        run.stats.discarded += max(0, len(seen) - 1)
        current = stratum_best
        if run.out_of_budget():
            break
    return run.result()
