"""The cost model of Section 3.3: cε = cs·VSOε + cr·RECε + cm·VMCε.

* **View cardinality** ``|v|ε`` starts from the exact per-atom counts of
  the statistics layer and applies the textbook System-R formulas under
  the uniformity and independence assumptions — implemented once in the
  shared :class:`~repro.stats.estimator.CardinalityEstimator` (the same
  estimator the engine planner orders joins and selects engines with):
  the product of atom counts times, for each join variable,
  ``1/max(distinct)`` per extra occurrence, every division guarded so
  empty and degenerate stores price finitely.
* **VSOε** is ``|v|ε`` times the head width times the average term size.
* **RECε** is ``Σ_r c1·io(r) + c2·cpu(r)``: I/O reads every view in the
  rewriting once; CPU charges a pass per selection and a hash join's
  build + probe + output per join. Projections and renames are free
  (pipelined), which preserves the paper's invariant that View Fusion
  never increases a state's cost (the AVF optimization relies on it).
* **VMCε** is ``Σ_v f^len(v)`` for a user-provided factor ``f``.

Incremental costing (the search-core refactor)
----------------------------------------------

A transition touches at most two views and the rewriting disjuncts that
referenced them; everything else is shared *by identity* with the source
state. The model exploits this with a two-level cross-state memo:

* per-object fast path — every view / plan object is priced at most
  once, ever (id-keyed, identity-checked);
* canonical backing — view prices are shared across *isomorphic* views
  (keyed on :func:`~repro.selection.state.canonical_token`) and plan
  prices across structurally identical plans (keyed on a recursive
  ``(node kind, query token)`` signature), so logically equal states
  reached along different search branches never re-pay estimator work.

Both levels are sound bitwise because the shared estimator multiplies
its factors in canonical (sorted) order: isomorphic bodies price to the
*identical* float. ``cost(state)`` always folds the cached component
prices in the state's own canonical order (views in order, rewritings in
order), so a warm-cache total is indistinguishable — bit for bit — from
a cold full recompute; the property suite pins exactly that oracle
equality. :meth:`CostModel.transition_cost` packages the successor's
exact breakdown together with the per-component differences as a
:class:`CostDelta`.

``incremental=False`` restores the pre-refactor pricing path (estimator
lookups per state, id-keyed plan memo only) and exists as the measured
baseline of ``benchmarks/bench_selection.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.query.algebra import Join, Plan, Project, Rename, Scan, Select
from repro.query.cq import ConjunctiveQuery
from repro.selection.state import State, canonical_token
from repro.stats.estimator import CardinalityEstimator
from repro.stats.provider import Statistics

if TYPE_CHECKING:  # pragma: no cover - type-only import, no cycle
    from repro.selection.transitions import Transition


@dataclass(frozen=True, slots=True)
class CostWeights:
    """The tunable knobs of the cost model.

    ``cs``/``cr``/``cm`` weight space, rewriting-evaluation, and
    maintenance (Section 3.3); ``c1``/``c2`` weight I/O vs CPU inside
    RECε; ``f`` is the fan-out factor of VMCε. Defaults follow the
    experimental setup of Section 6: cs=1, cr=1, cm=0.5, f=2.
    """

    cs: float = 1.0
    cr: float = 1.0
    cm: float = 0.5
    c1: float = 1.0
    c2: float = 1.0
    f: float = 2.0


@dataclass(frozen=True, slots=True)
class CostBreakdown:
    """The three components and the weighted total of a state's cost."""

    vso: float
    rec: float
    vmc: float
    total: float


@dataclass(frozen=True, slots=True)
class CostDelta:
    """The cost effect of one transition.

    ``breakdown`` is the successor state's *exact* cost (folded from
    cached component prices in the successor's canonical order — bitwise
    equal to a full recompute). ``vso``/``rec``/``vmc``/``total`` are the
    differences against the base state's breakdown. ``repriced_views`` /
    ``repriced_plans`` count the components that actually missed the
    cross-state memo — the work the incremental model paid, at most the
    size of the transition's :class:`~repro.selection.state.StateDelta`.
    """

    breakdown: CostBreakdown
    vso: float
    rec: float
    vmc: float
    total: float
    repriced_views: int = 0
    repriced_plans: int = 0


class CostModel:
    """Estimates state costs from a statistics snapshot.

    The model is pure: for fixed statistics and weights, ``cost(state)``
    is deterministic, so searches are reproducible. With
    ``incremental=True`` (the default) prices are memoized across states
    and searches as described in the module docstring; the produced
    numbers are identical either way.
    """

    def __init__(
        self,
        statistics: Statistics,
        weights: CostWeights | None = None,
        incremental: bool = True,
    ) -> None:
        self.statistics = statistics
        self.weights = weights or CostWeights()
        self.incremental = incremental
        # The shared System-R formulas; memoizes per atom tuple, so
        # views sharing a body (renamings) price once.
        self.estimator = CardinalityEstimator(statistics)
        self._version = getattr(statistics, "version", None)
        # (cardinality, space, f^len) per view: id fast path + canonical
        # token backing shared across isomorphic views.
        self._view_by_id: dict[int, tuple[tuple[float, float, float], ConjunctiveQuery]] = {}
        self._view_by_token: dict[int, tuple[float, float, float]] = {}
        # (io, cpu) per rewriting plan: id fast path (plans are shared
        # across states by identity) + structural signature backing.
        self._plan_by_id: dict[int, tuple[tuple[float, float], Plan]] = {}
        self._plan_by_sig: dict[tuple, tuple[float, float]] = {}
        #: Pricing instrumentation: hits answered from a memo level,
        #: misses priced through the estimator.
        self.counters = {
            "view_hits": 0,
            "view_misses": 0,
            "plan_hits": 0,
            "plan_misses": 0,
        }

    def __reduce__(self):
        # Worker processes (parallel frontier pricing) rebuild a clean
        # model: id-keyed memos are meaningless across process copies.
        return (type(self), (self.statistics, self.weights, self.incremental))

    def _validate_caches(self) -> None:
        """Flush every price memo when the statistics version moves."""
        version = getattr(self.statistics, "version", None)
        if version != self._version:
            self._view_by_id.clear()
            self._view_by_token.clear()
            self._plan_by_id.clear()
            self._plan_by_sig.clear()
            self._version = version

    # ------------------------------------------------------------------
    # Component pricing (the memoized primitives)
    # ------------------------------------------------------------------

    def _price_view(self, view: ConjunctiveQuery) -> tuple[float, float, float]:
        """(cardinality, space, maintenance term) of one view, priced
        through the estimator. The arithmetic is identical on the
        incremental and the baseline path."""
        if self.incremental:
            cardinality = self.estimator.query_cardinality(view)
        else:
            cardinality = self.estimator.conjunction_cardinality(view.atoms)
        width = max(len(view.head), 1) * self.statistics.average_term_size()
        return (cardinality, cardinality * width, self.weights.f ** len(view))

    def _view_price(self, view: ConjunctiveQuery) -> tuple[float, float, float]:
        self._validate_caches()
        if not self.incremental:
            self.counters["view_misses"] += 1
            return self._price_view(view)
        cached = self._view_by_id.get(id(view))
        if cached is not None and cached[1] is view:
            self.counters["view_hits"] += 1
            return cached[0]
        token = canonical_token(view)
        price = self._view_by_token.get(token)
        if price is None:
            price = self._price_view(view)
            if len(self._view_by_token) > 500_000:
                self._view_by_token.clear()
            self._view_by_token[token] = price
            self.counters["view_misses"] += 1
        else:
            self.counters["view_hits"] += 1
        if len(self._view_by_id) > 500_000:
            self._view_by_id.clear()
        self._view_by_id[id(view)] = (price, view)
        return price

    def _query_token(self, query: ConjunctiveQuery | None) -> int | None:
        return None if query is None else canonical_token(query)

    def _plan_signature(self, plan: Plan) -> tuple:
        """A flat (node kind, query token) pre-order encoding of a plan.

        Pre-order with fixed per-kind arities (scans are leaves, joins
        binary, the rest unary) reconstructs the tree uniquely, so a
        flat tuple is unambiguous. Two plans with equal signatures
        consist of the same node shapes over isomorphic query
        annotations, hence every term of their (io, cpu) sums is the
        identical float.
        """
        parts: list = []
        stack = [plan]
        while stack:
            node = stack.pop()
            if isinstance(node, Scan):
                parts.append("S")
            elif isinstance(node, Select):
                parts.append("F")
                stack.append(node.child)
            elif isinstance(node, Project):
                parts.append("P")
                stack.append(node.child)
            elif isinstance(node, Rename):
                parts.append("R")
                stack.append(node.child)
            else:
                parts.append("J")
                stack.append(node.right)
                stack.append(node.left)
            parts.append(self._query_token(node.query))
        return tuple(parts)

    def _price_plan(self, plan: Plan) -> tuple[float, float]:
        """(io, cpu) of one plan — the seed arithmetic, verbatim."""
        io = 0.0
        cpu = 0.0
        stack = [plan]
        while stack:
            node = stack.pop()
            if isinstance(node, Scan):
                if node.query is None:
                    raise ValueError(f"scan of {node.view!r} lacks a view annotation")
                io += self.view_cardinality(node.query)
            elif isinstance(node, Select):
                cpu += self.plan_cardinality(node.child)
                stack.append(node.child)
            elif isinstance(node, Join):
                cpu += (
                    self.plan_cardinality(node.left)
                    + self.plan_cardinality(node.right)
                    + self.plan_cardinality(node)
                )
                stack.append(node.right)
                stack.append(node.left)
            elif isinstance(node, (Project, Rename)):
                stack.append(node.child)
        return io, cpu

    # ------------------------------------------------------------------
    # Cardinality estimation
    # ------------------------------------------------------------------

    def view_cardinality(self, view: ConjunctiveQuery) -> float:
        """``|v|ε``: estimated number of tuples in the view's body join.

        Delegates to the shared estimator: product of exact atom counts
        times ``1/max(distinct)`` per extra variable occurrence, clamped
        to at least one row.
        """
        return self._view_price(view)[0]

    def plan_cardinality(self, plan: Plan) -> float:
        """Estimated output cardinality of a rewriting plan node.

        Every node built by the transitions carries the conjunctive
        query it computes; the estimate reuses :meth:`view_cardinality`
        on that query, keeping plan and view estimates consistent.
        """
        if plan.query is not None:
            return self.view_cardinality(plan.query)
        if isinstance(plan, Scan):
            raise ValueError(f"scan of {plan.view!r} lacks a view annotation")
        if isinstance(plan, (Select, Project, Rename)):
            return self.plan_cardinality(plan.child)
        # An unannotated join: fall back on the product bound.
        return self.plan_cardinality(plan.left) * self.plan_cardinality(plan.right)

    # ------------------------------------------------------------------
    # Cost components
    # ------------------------------------------------------------------

    def view_space(self, view: ConjunctiveQuery) -> float:
        """Space occupied by one materialized view."""
        return self._view_price(view)[1]

    def view_maintenance(self, view: ConjunctiveQuery) -> float:
        """One view's VMC term ``f^len(v)``."""
        return self._view_price(view)[2]

    def vso(self, state: State) -> float:
        """View space occupancy: total size of all materialized views."""
        return sum(self.view_space(view) for view in state.views)

    def plan_io_cpu(self, plan: Plan) -> tuple[float, float]:
        """(ioε, cpuε) of one rewriting plan, memoized cross-state.

        io reads every scanned view once; cpu charges a pass per
        selection and build+probe+output per join (projections and
        renames are pipelined for free).
        """
        self._validate_caches()
        cached = self._plan_by_id.get(id(plan))
        if cached is not None and cached[1] is plan:
            self.counters["plan_hits"] += 1
            return cached[0]
        if self.incremental:
            signature = self._plan_signature(plan)
            price = self._plan_by_sig.get(signature)
            if price is None:
                price = self._price_plan(plan)
                if len(self._plan_by_sig) > 500_000:
                    self._plan_by_sig.clear()
                self._plan_by_sig[signature] = price
                self.counters["plan_misses"] += 1
            else:
                self.counters["plan_hits"] += 1
        else:
            price = self._price_plan(plan)
            self.counters["plan_misses"] += 1
        if len(self._plan_by_id) > 500_000:
            self._plan_by_id.clear()
        self._plan_by_id[id(plan)] = (price, plan)
        return price

    def rewriting_io(self, state: State) -> float:
        """ioε: every view appearing in a rewriting is read once."""
        return sum(
            self.plan_io_cpu(disjunct.plan)[0]
            for rewriting in state.rewritings.values()
            for disjunct in rewriting
        )

    def rewriting_cpu(self, state: State) -> float:
        """cpuε: selections cost a pass, joins cost build+probe+output."""
        return sum(
            self.plan_io_cpu(disjunct.plan)[1]
            for rewriting in state.rewritings.values()
            for disjunct in rewriting
        )

    def rec(self, state: State) -> float:
        """Rewriting evaluation cost: c1·io + c2·cpu over all rewritings."""
        io = 0.0
        cpu = 0.0
        for rewriting in state.rewritings.values():
            for disjunct in rewriting:
                node_io, node_cpu = self.plan_io_cpu(disjunct.plan)
                io += node_io
                cpu += node_cpu
        return self.weights.c1 * io + self.weights.c2 * cpu

    def vmc(self, state: State) -> float:
        """View maintenance cost: Σ f^len(v)."""
        return sum(self.view_maintenance(view) for view in state.views)

    def cost(self, state: State) -> CostBreakdown:
        """The full breakdown and the weighted total cε.

        Component prices come from the cross-state memo; the folds run
        in the state's own canonical order (views in view order,
        rewritings in mapping order), so the result is bitwise identical
        whether the memo is warm or cold. Views are looked up once for
        both their space and maintenance terms; the accumulation order
        per component is exactly that of :meth:`vso` / :meth:`vmc`.
        """
        vso = 0.0
        vmc = 0.0
        for view in state.views:
            _, space, maintenance = self._view_price(view)
            vso += space
            vmc += maintenance
        rec = self.rec(state)
        total = self.weights.cs * vso + self.weights.cr * rec + self.weights.cm * vmc
        return CostBreakdown(vso=vso, rec=rec, vmc=vmc, total=total)

    def total_cost(self, state: State) -> float:
        """Shorthand for ``cost(state).total``."""
        return self.cost(state).total

    # ------------------------------------------------------------------
    # Incremental transition pricing
    # ------------------------------------------------------------------

    def transition_cost(self, base: CostBreakdown, transition: "Transition") -> CostDelta:
        """Price a transition's successor against its base breakdown.

        Only the views/plans named by the transition's
        :class:`~repro.selection.state.StateDelta` can miss the memo —
        every untouched component is shared by identity with the base
        state and answers from the id fast path. ``breakdown`` is the
        successor's exact cost; the component fields are the differences
        against ``base`` (float subtraction of two exact sums).
        """
        before_views = self.counters["view_misses"]
        before_plans = self.counters["plan_misses"]
        breakdown = self.cost(transition.result)
        return CostDelta(
            breakdown=breakdown,
            vso=breakdown.vso - base.vso,
            rec=breakdown.rec - base.rec,
            vmc=breakdown.vmc - base.vmc,
            total=breakdown.total - base.total,
            repriced_views=self.counters["view_misses"] - before_views,
            repriced_plans=self.counters["plan_misses"] - before_plans,
        )


def price_states(cost_model: CostModel, states: list[State]) -> list[CostBreakdown]:
    """Price a batch of states — the unit of parallel frontier work.

    Module-level and pure so a forked worker can run it over a pickled
    model copy; :meth:`CostModel.__reduce__` ships the copy with cold
    memos, and cold-vs-warm pricing is bitwise identical by design, so
    parallel evaluation returns exactly the serial results.
    """
    return [cost_model.cost(state) for state in states]


def calibrate_maintenance_weight(
    initial: State,
    statistics: Statistics,
    weights: CostWeights | None = None,
    ratio: float = 0.5,
) -> CostWeights:
    """Pick ``cm`` the way Section 6 does.

    "For each workload, we set the value of cm ... so that for the
    initial state S0, cm·VMC is within at most two orders of magnitude
    from the other two cost components." We set
    ``cm·VMC(S0) = ratio · max(cs·VSO(S0), cr·REC(S0))`` (``ratio=0.5``
    keeps it the same order of magnitude), falling back to the paper's
    usual cm=0.5 when the state has no measurable cost.
    """
    weights = weights or CostWeights()
    probe = CostModel(statistics, weights)
    vso = weights.cs * probe.vso(initial)
    rec = weights.cr * probe.rec(initial)
    vmc = probe.vmc(initial)
    if vmc <= 0 or max(vso, rec) <= 0:
        return weights
    cm = ratio * max(vso, rec) / vmc
    return CostWeights(
        cs=weights.cs, cr=weights.cr, cm=cm, c1=weights.c1, c2=weights.c2, f=weights.f
    )
