"""The cost model of Section 3.3: cε = cs·VSOε + cr·RECε + cm·VMCε.

* **View cardinality** ``|v|ε`` starts from the exact per-atom counts of
  the statistics layer and applies the textbook System-R formulas under
  the uniformity and independence assumptions — implemented once in the
  shared :class:`~repro.stats.estimator.CardinalityEstimator` (the same
  estimator the engine planner orders joins and selects engines with):
  the product of atom counts times, for each join variable,
  ``1/max(distinct)`` per extra occurrence, every division guarded so
  empty and degenerate stores price finitely.
* **VSOε** is ``|v|ε`` times the head width times the average term size.
* **RECε** is ``Σ_r c1·io(r) + c2·cpu(r)``: I/O reads every view in the
  rewriting once; CPU charges a pass per selection and a hash join's
  build + probe + output per join. Projections and renames are free
  (pipelined), which preserves the paper's invariant that View Fusion
  never increases a state's cost (the AVF optimization relies on it).
* **VMCε** is ``Σ_v f^len(v)`` for a user-provided factor ``f``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.algebra import Join, Plan, Project, Rename, Scan, Select, iter_nodes
from repro.query.cq import ConjunctiveQuery
from repro.selection.state import State
from repro.stats.estimator import CardinalityEstimator
from repro.stats.provider import Statistics


@dataclass(frozen=True, slots=True)
class CostWeights:
    """The tunable knobs of the cost model.

    ``cs``/``cr``/``cm`` weight space, rewriting-evaluation, and
    maintenance (Section 3.3); ``c1``/``c2`` weight I/O vs CPU inside
    RECε; ``f`` is the fan-out factor of VMCε. Defaults follow the
    experimental setup of Section 6: cs=1, cr=1, cm=0.5, f=2.
    """

    cs: float = 1.0
    cr: float = 1.0
    cm: float = 0.5
    c1: float = 1.0
    c2: float = 1.0
    f: float = 2.0


@dataclass(frozen=True, slots=True)
class CostBreakdown:
    """The three components and the weighted total of a state's cost."""

    vso: float
    rec: float
    vmc: float
    total: float


class CostModel:
    """Estimates state costs from a statistics snapshot.

    The model is pure: for fixed statistics and weights, ``cost(state)``
    is deterministic, so searches are reproducible.
    """

    def __init__(self, statistics: Statistics, weights: CostWeights | None = None) -> None:
        self.statistics = statistics
        self.weights = weights or CostWeights()
        # The shared System-R formulas; memoizes per atom tuple, so
        # views sharing a body (renamings) price once.
        self.estimator = CardinalityEstimator(statistics)
        # Plans are immutable and shared across states (substitution
        # returns untouched subtrees by identity), so each plan's
        # (io, cpu) is computed once. The plan reference is kept in the
        # value to pin the id.
        self._plan_cost_cache: dict[int, tuple[float, float, Plan]] = {}

    # ------------------------------------------------------------------
    # Cardinality estimation
    # ------------------------------------------------------------------

    def view_cardinality(self, view: ConjunctiveQuery) -> float:
        """``|v|ε``: estimated number of tuples in the view's body join.

        Delegates to the shared estimator: product of exact atom counts
        times ``1/max(distinct)`` per extra variable occurrence, clamped
        to at least one row.
        """
        return self.estimator.conjunction_cardinality(view.atoms)

    def plan_cardinality(self, plan: Plan) -> float:
        """Estimated output cardinality of a rewriting plan node.

        Every node built by the transitions carries the conjunctive
        query it computes; the estimate reuses :meth:`view_cardinality`
        on that query, keeping plan and view estimates consistent.
        """
        if plan.query is not None:
            return self.view_cardinality(plan.query)
        if isinstance(plan, Scan):
            raise ValueError(f"scan of {plan.view!r} lacks a view annotation")
        if isinstance(plan, (Select, Project, Rename)):
            return self.plan_cardinality(plan.child)
        # An unannotated join: fall back on the product bound.
        return self.plan_cardinality(plan.left) * self.plan_cardinality(plan.right)

    # ------------------------------------------------------------------
    # Cost components
    # ------------------------------------------------------------------

    def view_space(self, view: ConjunctiveQuery) -> float:
        """Space occupied by one materialized view."""
        width = max(len(view.head), 1) * self.statistics.average_term_size()
        return self.view_cardinality(view) * width

    def vso(self, state: State) -> float:
        """View space occupancy: total size of all materialized views."""
        return sum(self.view_space(view) for view in state.views)

    def plan_io_cpu(self, plan: Plan) -> tuple[float, float]:
        """(ioε, cpuε) of one rewriting plan, memoized per plan object.

        io reads every scanned view once; cpu charges a pass per
        selection and build+probe+output per join (projections and
        renames are pipelined for free).
        """
        cached = self._plan_cost_cache.get(id(plan))
        if cached is not None and cached[2] is plan:
            return cached[0], cached[1]
        io = 0.0
        cpu = 0.0
        for node in iter_nodes(plan):
            if isinstance(node, Scan):
                if node.query is None:
                    raise ValueError(f"scan of {node.view!r} lacks a view annotation")
                io += self.view_cardinality(node.query)
            elif isinstance(node, Select):
                cpu += self.plan_cardinality(node.child)
            elif isinstance(node, Join):
                cpu += (
                    self.plan_cardinality(node.left)
                    + self.plan_cardinality(node.right)
                    + self.plan_cardinality(node)
                )
        if len(self._plan_cost_cache) > 500_000:
            self._plan_cost_cache.clear()
        self._plan_cost_cache[id(plan)] = (io, cpu, plan)
        return io, cpu

    def rewriting_io(self, state: State) -> float:
        """ioε: every view appearing in a rewriting is read once."""
        return sum(
            self.plan_io_cpu(disjunct.plan)[0]
            for rewriting in state.rewritings.values()
            for disjunct in rewriting
        )

    def rewriting_cpu(self, state: State) -> float:
        """cpuε: selections cost a pass, joins cost build+probe+output."""
        return sum(
            self.plan_io_cpu(disjunct.plan)[1]
            for rewriting in state.rewritings.values()
            for disjunct in rewriting
        )

    def rec(self, state: State) -> float:
        """Rewriting evaluation cost: c1·io + c2·cpu over all rewritings."""
        io = 0.0
        cpu = 0.0
        for rewriting in state.rewritings.values():
            for disjunct in rewriting:
                node_io, node_cpu = self.plan_io_cpu(disjunct.plan)
                io += node_io
                cpu += node_cpu
        return self.weights.c1 * io + self.weights.c2 * cpu

    def vmc(self, state: State) -> float:
        """View maintenance cost: Σ f^len(v)."""
        return sum(self.weights.f ** len(view) for view in state.views)

    def cost(self, state: State) -> CostBreakdown:
        """The full breakdown and the weighted total cε."""
        vso = self.vso(state)
        rec = self.rec(state)
        vmc = self.vmc(state)
        total = self.weights.cs * vso + self.weights.cr * rec + self.weights.cm * vmc
        return CostBreakdown(vso=vso, rec=rec, vmc=vmc, total=total)

    def total_cost(self, state: State) -> float:
        """Shorthand for ``cost(state).total``."""
        return self.cost(state).total


def calibrate_maintenance_weight(
    initial: State,
    statistics: Statistics,
    weights: CostWeights | None = None,
    ratio: float = 0.5,
) -> CostWeights:
    """Pick ``cm`` the way Section 6 does.

    "For each workload, we set the value of cm ... so that for the
    initial state S0, cm·VMC is within at most two orders of magnitude
    from the other two cost components." We set
    ``cm·VMC(S0) = ratio · max(cs·VSO(S0), cr·REC(S0))`` (``ratio=0.5``
    keeps it the same order of magnitude), falling back to the paper's
    usual cm=0.5 when the state has no measurable cost.
    """
    weights = weights or CostWeights()
    probe = CostModel(statistics, weights)
    vso = weights.cs * probe.vso(initial)
    rec = weights.cr * probe.rec(initial)
    vmc = probe.vmc(initial)
    if vmc <= 0 or max(vso, rec) <= 0:
        return weights
    cm = ratio * max(vso, rec) / vmc
    return CostWeights(
        cs=weights.cs, cr=weights.cr, cm=cm, c1=weights.c1, c2=weights.c2, f=weights.f
    )
