"""The state graph of Definition 3.1.

Each atom of each view is a node; join edges link positions of two atoms
of one view holding the same variable; selection edges are self-loops for
constants. The transitions of :mod:`repro.selection.transitions` are
defined over this graph; this module materializes it explicitly for
inspection, testing and documentation (the connected components of the
graph are exactly the views, since views contain no Cartesian products).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.cq import ConjunctiveQuery
from repro.rdf.terms import Term
from repro.selection.state import State


#: Per-view-object adjacency memo. The join graph of a view never
#: changes (views are immutable) and the same view object appears in
#: many states during a search, so the atom-adjacency every View Break
#: enumeration needs is computed once per distinct view object.
_ADJACENCY_CACHE: dict[int, tuple[dict[int, set[int]], ConjunctiveQuery]] = {}


def view_adjacency(view: ConjunctiveQuery) -> dict[int, set[int]]:
    """Atom-index adjacency of one view's join graph (Definition 3.1).

    ``adjacency[i]`` holds the atoms sharing a join variable with atom
    ``i``. Memoized per view object; shared by the transition
    enumerator's View Break candidates and by :class:`StateGraph`.
    """
    cached = _ADJACENCY_CACHE.get(id(view))
    if cached is not None and cached[1] is view:
        return cached[0]
    adjacency: dict[int, set[int]] = {i: set() for i in range(len(view.atoms))}
    for i, _, j, _ in view.join_graph_edges():
        adjacency[i].add(j)
        adjacency[j].add(i)
    if len(_ADJACENCY_CACHE) > 500_000:
        _ADJACENCY_CACHE.clear()
    _ADJACENCY_CACHE[id(view)] = (adjacency, view)
    return adjacency


@dataclass(frozen=True, slots=True)
class Node:
    """One triple atom of one view."""

    view: str
    atom_index: int

    def __str__(self) -> str:
        return f"{self.view}.n{self.atom_index}"


@dataclass(frozen=True, slots=True)
class JoinEdge:
    """``v: n_i.a_i = n_j.a_j`` — two positions sharing a variable."""

    view: str
    left: Node
    left_attribute: str
    right: Node
    right_attribute: str

    def __str__(self) -> str:
        return (
            f"{self.view}:{self.left}.{self.left_attribute}"
            f"={self.right}.{self.right_attribute}"
        )


@dataclass(frozen=True, slots=True)
class SelectionEdge:
    """``v: n_i.a_i = c`` — a constant in an atom (a self-loop)."""

    view: str
    node: Node
    attribute: str
    constant: Term

    def __str__(self) -> str:
        return f"{self.view}:{self.node}.{self.attribute}={self.constant.n3()}"


class StateGraph:
    """The (multi)graph of a state: nodes, join edges, selection edges."""

    def __init__(self, state: State) -> None:
        self.nodes: list[Node] = []
        self.join_edges: list[JoinEdge] = []
        self.selection_edges: list[SelectionEdge] = []
        self._components: dict[str, list[Node]] = {}
        for view in state.views:
            self._add_view(view)

    def _add_view(self, view: ConjunctiveQuery) -> None:
        nodes = [Node(view.name, index) for index in range(len(view.atoms))]
        self.nodes.extend(nodes)
        self._components[view.name] = nodes
        for i, ai, j, aj in view.join_graph_edges():
            self.join_edges.append(JoinEdge(view.name, nodes[i], ai, nodes[j], aj))
        for index, attribute, constant in view.constant_occurrences():
            self.selection_edges.append(
                SelectionEdge(view.name, nodes[index], attribute, constant)
            )

    def view_component(self, view: str) -> list[Node]:
        """The nodes of one view — one connected component of the graph."""
        return list(self._components[view])

    def connected_components(self) -> list[list[Node]]:
        """All components; by construction, one per view."""
        return [list(nodes) for nodes in self._components.values()]

    def describe(self) -> str:
        """A readable rendering of nodes and labeled edges."""
        lines = ["nodes: " + ", ".join(str(n) for n in self.nodes)]
        for edge in self.join_edges:
            lines.append(f"join edge      {edge}")
        for edge in self.selection_edges:
            lines.append(f"selection edge {edge}")
        return "\n".join(lines)
