"""Persistence of recommended view sets and their extents.

The introduction's deployment story: "if the views are stored at the
client, no connection is needed and the application can run off-line,
independently from the database server." This module serializes a
:class:`~repro.selection.state.State` (views plus executable rewriting
plans) together with materialized extents into a single JSON document,
and restores both — so a client can answer every workload query with
nothing but that file.

The format is self-describing and version-tagged; terms, atoms, queries,
plan nodes and head templates all round-trip exactly.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

from repro.query.algebra import (
    EqualsColumn,
    EqualsConstant,
    Join,
    Plan,
    Project,
    Rename,
    Scan,
    Select,
)
from repro.query.cq import Atom, ConjunctiveQuery, QueryTerm, Variable
from repro.rdf.terms import BlankNode, Literal, Term, URI
from repro.selection.state import RewritingDisjunct, State

FORMAT_VERSION = 1


class PersistenceError(ValueError):
    """Raised on malformed or incompatible serialized documents."""


# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------


def encode_term(term: QueryTerm) -> Any:
    if isinstance(term, Variable):
        return {"v": term.name}
    if isinstance(term, URI):
        return {"u": term.value}
    if isinstance(term, BlankNode):
        return {"b": term.label}
    if isinstance(term, Literal):
        encoded: dict[str, Any] = {"l": term.lexical}
        if term.language is not None:
            encoded["lang"] = term.language
        if term.datatype is not None:
            encoded["dt"] = term.datatype.value
        return encoded
    raise PersistenceError(f"cannot encode term {term!r}")


def decode_term(data: Any) -> QueryTerm:
    if not isinstance(data, dict):
        raise PersistenceError(f"malformed term {data!r}")
    if "v" in data:
        return Variable(data["v"])
    if "u" in data:
        return URI(data["u"])
    if "b" in data:
        return BlankNode(data["b"])
    if "l" in data:
        datatype = URI(data["dt"]) if "dt" in data else None
        return Literal(data["l"], datatype=datatype, language=data.get("lang"))
    raise PersistenceError(f"malformed term {data!r}")


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------


def encode_query(query: ConjunctiveQuery) -> Any:
    return {
        "name": query.name,
        "head": [encode_term(t) for t in query.head],
        "atoms": [[encode_term(t) for t in atom] for atom in query.atoms],
        "non_literal": sorted(v.name for v in query.non_literal),
    }


def decode_query(data: Any) -> ConjunctiveQuery:
    try:
        head = tuple(decode_term(t) for t in data["head"])
        atoms = tuple(
            Atom(*(decode_term(t) for t in atom)) for atom in data["atoms"]
        )
        restricted = frozenset(Variable(n) for n in data.get("non_literal", ()))
        return ConjunctiveQuery(
            head, atoms, name=data["name"], non_literal=restricted
        )
    except (KeyError, TypeError) as exc:
        raise PersistenceError(f"malformed query: {exc}") from exc


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


def encode_plan(plan: Plan) -> Any:
    query = encode_query(plan.query) if plan.query is not None else None
    if isinstance(plan, Scan):
        return {"op": "scan", "view": plan.view, "schema": list(plan.schema),
                "query": query}
    if isinstance(plan, Select):
        conditions = []
        for condition in plan.conditions:
            if isinstance(condition, EqualsConstant):
                conditions.append(
                    {"kind": "const", "column": condition.column,
                     "value": encode_term(condition.value)}
                )
            else:
                conditions.append(
                    {"kind": "col", "left": condition.left, "right": condition.right}
                )
        return {"op": "select", "child": encode_plan(plan.child),
                "conditions": conditions, "query": query}
    if isinstance(plan, Project):
        return {"op": "project", "child": encode_plan(plan.child),
                "columns": list(plan.columns), "query": query}
    if isinstance(plan, Rename):
        return {"op": "rename", "child": encode_plan(plan.child),
                "columns": list(plan.columns), "query": query}
    if isinstance(plan, Join):
        return {"op": "join", "left": encode_plan(plan.left),
                "right": encode_plan(plan.right),
                "pairs": [list(pair) for pair in plan.pairs], "query": query}
    raise PersistenceError(f"cannot encode plan node {plan!r}")


def decode_plan(data: Any) -> Plan:
    try:
        query = decode_query(data["query"]) if data.get("query") else None
        operator = data["op"]
        if operator == "scan":
            return Scan(data["view"], tuple(data["schema"]), query=query)
        if operator == "select":
            conditions = []
            for condition in data["conditions"]:
                if condition["kind"] == "const":
                    conditions.append(
                        EqualsConstant(condition["column"], decode_term(condition["value"]))
                    )
                else:
                    conditions.append(EqualsColumn(condition["left"], condition["right"]))
            return Select(decode_plan(data["child"]), tuple(conditions), query=query)
        if operator == "project":
            return Project(decode_plan(data["child"]), tuple(data["columns"]), query=query)
        if operator == "rename":
            return Rename(decode_plan(data["child"]), tuple(data["columns"]), query=query)
        if operator == "join":
            return Join(
                decode_plan(data["left"]),
                decode_plan(data["right"]),
                tuple(tuple(pair) for pair in data["pairs"]),
                query=query,
            )
    except (KeyError, TypeError) as exc:
        raise PersistenceError(f"malformed plan: {exc}") from exc
    raise PersistenceError(f"unknown plan operator {data.get('op')!r}")


# ----------------------------------------------------------------------
# States and extents
# ----------------------------------------------------------------------


def encode_state(state: State) -> Any:
    return {
        "views": [encode_query(view) for view in state.views],
        "rewritings": {
            name: [
                {
                    "plan": encode_plan(disjunct.plan),
                    "head_template": (
                        [encode_term(t) for t in disjunct.head_template]
                        if disjunct.head_template is not None
                        else None
                    ),
                }
                for disjunct in rewriting
            ]
            for name, rewriting in state.rewritings.items()
        },
    }


def decode_state(data: Any) -> State:
    views = tuple(decode_query(view) for view in data["views"])
    rewritings = {}
    for name, disjuncts in data["rewritings"].items():
        rewritings[name] = tuple(
            RewritingDisjunct(
                decode_plan(entry["plan"]),
                (
                    tuple(decode_term(t) for t in entry["head_template"])
                    if entry.get("head_template") is not None
                    else None
                ),
            )
            for entry in disjuncts
        )
    return State(views, rewritings)


def dumps(
    state: State,
    extents: Mapping[str, Sequence[tuple[Term, ...]]] | None = None,
    indent: int | None = None,
) -> str:
    """Serialize a state (and optionally its extents) to JSON text."""
    document: dict[str, Any] = {
        "format": "repro-viewset",
        "version": FORMAT_VERSION,
        "state": encode_state(state),
    }
    if extents is not None:
        document["extents"] = {
            name: [[encode_term(term) for term in row] for row in rows]
            for name, rows in extents.items()
        }
    return json.dumps(document, indent=indent, sort_keys=True)


def loads(text: str) -> tuple[State, dict[str, list[tuple[Term, ...]]] | None]:
    """Restore a state (and extents, when present) from JSON text."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"not JSON: {exc}") from exc
    if document.get("format") != "repro-viewset":
        raise PersistenceError("not a repro view-set document")
    if document.get("version") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported format version {document.get('version')!r}"
        )
    state = decode_state(document["state"])
    extents = None
    if "extents" in document:
        extents = {
            name: [tuple(decode_term(term) for term in row) for row in rows]
            for name, rows in document["extents"].items()
        }
    return state, extents


def save(path, state: State, extents=None, indent: int | None = None) -> None:
    """Write a state (+ extents) to a file."""
    from pathlib import Path

    Path(path).write_text(dumps(state, extents, indent=indent))


def load(path) -> tuple[State, dict | None]:
    """Read a state (+ extents) back from a file."""
    from pathlib import Path

    return loads(Path(path).read_text())
