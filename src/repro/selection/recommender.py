"""High-level facade: one call from workload to recommended views.

:class:`ViewSelector` wires together statistics collection, the cost
model, the entailment handling of Section 4.3, and a search strategy;
:class:`Recommendation` carries the chosen state plus helpers to
materialize the views and answer queries from them.

Statistics come from the unified ``repro.stats`` subsystem: the chosen
provider (exact catalog-backed counts, saturated-store counts, or the
Section 4.3 post-reformulation counts) feeds the same
:class:`~repro.stats.estimator.CardinalityEstimator` formulas the
execution engine plans with, so the search and the engine price joins
identically. The default ``engine="auto"`` used when materializing and
answering is the engine's cost-based per-query selection.

Typical use::

    selector = ViewSelector(store, schema=schema, strategy="dfs",
                            entailment="post_reformulation")
    recommendation = selector.recommend(queries)
    extents = recommendation.materialize()
    answers = recommendation.answer("q1", extents)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.engine.operators import DEFAULT_BATCH_SIZE
from repro.query.cq import ConjunctiveQuery
from repro.query.evaluation import Answer
from repro.rdf.entailment import saturate
from repro.rdf.schema import RDFSchema
from repro.rdf.store import TripleStore
from repro.selection.costs import CostModel, CostWeights
from repro.selection.materialize import answer_query, materialize_views
from repro.selection.search import (
    STRATEGY_FACTORIES,
    SearchBudget,
    SearchResult,
    descent_search,
    dfs_search,
    exhaustive_naive_search,
    exhaustive_stratified_search,
    greedy_stratified_search,
    run_search,
)
from repro.selection.state import State, ViewNamer, initial_state
from repro.selection.statistics import ReformulationAwareStatistics, StoreStatistics
from repro.selection.transitions import TransitionEnumerator

#: Historical name -> search-function map, kept for the public API; the
#: names are exactly the keys of the strategy registry the selector
#: validates against and ``run_search`` resolves with.
STRATEGIES: dict[str, Callable] = {
    "dfs": dfs_search,
    "descent": descent_search,
    "gstr": greedy_stratified_search,
    "exnaive": exhaustive_naive_search,
    "exstr": exhaustive_stratified_search,
}
assert STRATEGIES.keys() == STRATEGY_FACTORIES.keys()

ENTAILMENT_MODES = ("none", "saturation", "pre_reformulation", "post_reformulation")


@dataclass
class Recommendation:
    """A recommended view set, ready to materialize and query."""

    state: State
    result: SearchResult
    store: TripleStore
    schema: RDFSchema | None
    entailment: str

    @property
    def views(self) -> tuple[ConjunctiveQuery, ...]:
        """The recommended views."""
        return self.state.views

    def materialize(
        self,
        engine: str = "auto",
        batch_size: int | None = DEFAULT_BATCH_SIZE,
        workers: int = 1,
    ) -> dict[str, list]:
        """Extents for all recommended views, honoring the entailment mode.

        * ``post_reformulation`` — reformulated views on the plain store;
        * ``saturation`` — plain views on the saturated store;
        * otherwise — plain views on the plain store.

        ``engine`` selects the join strategy used to evaluate the views
        (see :data:`repro.engine.ENGINES`); ``batch_size`` and
        ``workers`` tune the batched engine exactly as in
        :func:`repro.engine.run_query`.
        """
        if self.entailment == "post_reformulation":
            return materialize_views(
                self.state,
                self.store,
                self.schema,
                engine=engine,
                batch_size=batch_size,
                workers=workers,
            )
        if self.entailment == "saturation":
            assert self.schema is not None
            return materialize_views(
                self.state,
                saturate(self.store, self.schema),
                engine=engine,
                batch_size=batch_size,
                workers=workers,
            )
        return materialize_views(
            self.state,
            self.store,
            engine=engine,
            batch_size=batch_size,
            workers=workers,
        )

    def answer(
        self,
        query_name: str,
        extents: Mapping[str, Sequence],
        engine: str = "auto",
        batch_size: int | None = DEFAULT_BATCH_SIZE,
    ) -> set[Answer]:
        """Answer one workload query from materialized extents."""
        return answer_query(
            self.state, query_name, extents, engine=engine, batch_size=batch_size
        )


class ViewSelector:
    """End-to-end view selection over a store and optional RDF Schema."""

    def __init__(
        self,
        store: TripleStore,
        schema: RDFSchema | None = None,
        weights: CostWeights | None = None,
        strategy: str = "dfs",
        entailment: str = "none",
        budget: SearchBudget | None = None,
        vb_mode: str = "disjoint",
        use_avf: bool = True,
        use_stopvar: bool = True,
        workers: int = 1,
    ) -> None:
        if strategy not in STRATEGY_FACTORIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; "
                f"pick from {sorted(STRATEGY_FACTORIES)}"
            )
        if entailment not in ENTAILMENT_MODES:
            raise ValueError(
                f"unknown entailment mode {entailment!r}; pick from {ENTAILMENT_MODES}"
            )
        if entailment != "none" and schema is None:
            raise ValueError(f"entailment mode {entailment!r} requires a schema")
        self.store = store
        self.schema = schema
        self.weights = weights or CostWeights()
        self.strategy = strategy
        self.entailment = entailment
        self.budget = budget or SearchBudget(time_limit=30.0)
        self.vb_mode = vb_mode
        self.use_avf = use_avf
        self.use_stopvar = use_stopvar
        self.workers = workers

    def _statistics(self):
        if self.entailment == "post_reformulation":
            assert self.schema is not None
            return ReformulationAwareStatistics(self.store, self.schema)
        if self.entailment == "saturation":
            assert self.schema is not None
            return StoreStatistics(saturate(self.store, self.schema))
        return StoreStatistics(self.store)

    def _initial_state(self, queries: Sequence[ConjunctiveQuery], namer: ViewNamer) -> State:
        if self.entailment == "pre_reformulation":
            from repro.reformulation.workflows import pre_reformulation_initial_state

            assert self.schema is not None
            return pre_reformulation_initial_state(queries, self.schema, namer)
        return initial_state(queries, namer)

    def recommend(self, queries: Sequence[ConjunctiveQuery]) -> Recommendation:
        """Search for the best candidate view set for ``queries``."""
        if not queries:
            raise ValueError("the workload must contain at least one query")
        namer = ViewNamer()
        enumerator = TransitionEnumerator(namer, vb_mode=self.vb_mode)
        statistics = self._statistics()
        cost_model = CostModel(statistics, self.weights)
        start = self._initial_state(queries, namer)
        result = run_search(
            start,
            cost_model,
            self.strategy,
            enumerator=enumerator,
            budget=self.budget,
            use_avf=self.use_avf,
            use_stopvar=self.use_stopvar,
            workers=self.workers,
        )
        return Recommendation(
            state=result.best_state,
            result=result,
            store=self.store,
            schema=self.schema,
            entailment=self.entailment,
        )
