"""The relational view-selection strategies of Theodoratos et al. [21],
as described in Section 6.1, used as experimental competitors.

All three follow a divide-and-conquer scheme:

1. **Per-query phase** — break the workload into one-query states and
   exhaustively enumerate each query's candidate states (edge removals,
   i.e. SC/JC, then view breaks).
2. **Combination phase** — put states back together, one per workload
   query, fusing views when possible. Every combination is a valid
   state, so the number of combined states explodes combinatorially.

They differ in what they keep:

* **Pruning** keeps all partial combinations, discarding only dominated
  ones (same query coverage, worse cost).
* **Greedy** keeps a single best combination at each step.
* **Heuristic** restricts each per-query pool to the minimal-cost state
  plus states offering view-fusion opportunities with other queries.

The paper reports these strategies exhaust memory before producing any
full candidate view set once queries have ~10 atoms. We reproduce that
failure mode with an explicit state budget: when the number of states
created exceeds it, :class:`MemoryBudgetExceeded` is raised — the
strategy "fails to produce a solution".
"""

from __future__ import annotations


from repro.query.containment import is_isomorphic
from repro.selection.costs import CostModel
from repro.selection.search import (
    SearchBudget,
    SearchCore,
    SearchResult,
    SearchStats,
    avf_closure,
)
from repro.selection.state import State, initial_state
from repro.selection.transitions import STRATIFIED_ORDER, TransitionEnumerator


class MemoryBudgetExceeded(RuntimeError):
    """The strategy outgrew its state budget before finding a solution.

    Models the out-of-memory failures of the relational strategies on
    RDF-sized workloads (Section 6.2).
    """

    def __init__(self, states_created: int) -> None:
        super().__init__(
            f"relational strategy exhausted its memory budget after creating "
            f"{states_created} states without covering the workload"
        )
        self.states_created = states_created


def _states_exceeded(run: SearchCore) -> bool:
    budget = run.budget
    return budget.max_states is not None and run.stats.created > budget.max_states


def _time_exceeded(run: SearchCore) -> bool:
    budget = run.budget
    if budget.time_limit is not None and run.elapsed() > budget.time_limit:
        run.completed = False
        return True
    return False


def _enumerate_query_pool(
    query_state: State,
    run: SearchCore,
    enumerator: TransitionEnumerator,
    max_pool: int,
    max_depth: int,
) -> list[State]:
    """The candidate states of a one-query sub-problem.

    Following [21]'s description ("apply all possible edge removals,
    then all possible view breaks on each such state"), the pool is the
    breadth-``max_depth`` neighbourhood of the one-query initial state
    rather than the full transition closure — the divide-and-conquer
    design banks on per-query pools being small. With RDF-sized queries
    they are not: a 10-atom query has dozens of applicable transitions
    and the pool (and, worse, the cross-product of pools during
    combination) outgrows the memory budget, which raises
    :class:`MemoryBudgetExceeded` — the paper's observed failure mode.
    """
    seen: set[tuple] = {query_state.key}
    pool = [query_state]
    stack: list[tuple[State, int, int]] = [(query_state, 0, 0)]
    while stack:
        if _time_exceeded(run):
            return pool
        state, stage, depth = stack.pop()
        if depth >= max_depth:
            continue
        run.stats.explored += 1
        for kind_index in range(stage, len(STRATIFIED_ORDER)):
            kind = STRATIFIED_ORDER[kind_index]
            for transition in enumerator.transitions(state, [kind]):
                run.stats.created += 1
                run.stats.transitions += 1
                successor = transition.result
                if successor.key in seen:
                    run.stats.duplicates += 1
                    continue
                seen.add(successor.key)
                pool.append(successor)
                stack.append((successor, kind_index, depth + 1))
                if len(pool) > max_pool or _states_exceeded(run):
                    raise MemoryBudgetExceeded(run.stats.created)
            if _time_exceeded(run):
                return pool
    return pool


def _combine(left: State, right: State, run: SearchCore) -> State:
    """Union of two partial states over disjoint query subsets."""
    views = left.views + right.views
    rewritings = dict(left.rewritings)
    for query_name, rewriting in right.rewritings.items():
        if query_name in rewritings:
            raise ValueError(f"query {query_name!r} covered by both sides")
        rewritings[query_name] = rewriting
    run.stats.created += 1
    return State(views, rewritings)


def _relational_search(
    queries,
    cost_model: CostModel,
    keep: str,
    enumerator: TransitionEnumerator | None = None,
    budget: SearchBudget | None = None,
    max_pool_per_query: int = 2_000,
    max_pool_depth: int = 2,
) -> SearchResult:
    enumerator = enumerator or TransitionEnumerator()
    budget = budget or SearchBudget(max_states=200_000)
    whole = initial_state(queries, enumerator.namer)
    run = SearchCore(
        whole, cost_model, enumerator, budget,
        use_avf=False, use_stoptt=False, use_stopvar=False,
    )
    # Phase 1: per-query pools.
    pools: list[list[State]] = []
    for query in queries:
        query_state = initial_state([query], enumerator.namer)
        run.stats.created += 1
        pools.append(
            _enumerate_query_pool(
                query_state, run, enumerator, max_pool_per_query, max_pool_depth
            )
        )
    if keep == "heuristic":
        pools = _heuristic_filter(pools, cost_model)
    # Phase 2: combine pools query by query.
    combined: list[State] = pools[0]
    if keep == "greedy":
        combined = [min(combined, key=cost_model.total_cost)]
    for pool in pools[1:]:
        next_round: list[State] = []
        for partial in combined:
            for candidate in pool:
                if _states_exceeded(run):
                    raise MemoryBudgetExceeded(run.stats.created)
                if _time_exceeded(run):
                    break
                merged = _combine(partial, candidate, run)
                merged = avf_closure(merged, enumerator, run)
                next_round.append(merged)
        if keep == "greedy":
            next_round = [min(next_round, key=cost_model.total_cost)]
        else:
            next_round = _discard_dominated(next_round, cost_model, run.stats)
        combined = next_round
    for state in combined:
        # Only full candidate view sets (covering every query) count.
        if len(state.rewritings) == len(list(queries)):
            run.offer(state, cost_model.total_cost(state))
    return run.result(strategy=keep)


def _discard_dominated(
    states: list[State], cost_model: CostModel, stats: SearchStats
) -> list[State]:
    """Pruning's dominance test: "comparing two states and discarding the
    less interesting one" (Section 6.1).

    Two partial states covering the same queries are compared on
    estimated cost and on total view atoms (a space proxy); a state
    worse or equal on both is dominated and dropped. The survivors form
    a small Pareto frontier, which is what lets Pruning combine pools at
    all — and why it still dies when the per-query pools themselves
    outgrow memory.
    """
    scored = sorted(
        ((cost_model.total_cost(state), state.total_atoms(), state) for state in states),
        key=lambda entry: (entry[0], entry[1]),
    )
    frontier: list[tuple[float, int, State]] = []
    seen_keys: set[tuple] = set()
    best_atoms = None
    for cost, atoms, state in scored:
        if state.key in seen_keys:
            stats.discarded += 1
            continue
        if best_atoms is not None and atoms >= best_atoms:
            stats.discarded += 1  # dominated: worse cost, no smaller
            continue
        seen_keys.add(state.key)
        frontier.append((cost, atoms, state))
        best_atoms = atoms if best_atoms is None else min(best_atoms, atoms)
    return [state for _, _, state in frontier]


def _heuristic_filter(
    pools: list[list[State]], cost_model: CostModel
) -> list[list[State]]:
    """Heuristic of [21]: keep each query's minimal-cost state plus any
    state containing a view isomorphic to a view of another query."""
    kept: list[list[State]] = []
    for index, pool in enumerate(pools):
        best = min(pool, key=cost_model.total_cost)
        other_views = [
            view
            for other_index, other_pool in enumerate(pools)
            if other_index != index
            for view in other_pool[0].views  # the other query's initial views
        ]
        fusable = [
            state
            for state in pool
            if any(
                is_isomorphic(view, other)
                for view in state.views
                for other in other_views
            )
        ]
        filtered = [best]
        seen = {best.key}
        for state in fusable:
            if state.key not in seen:
                seen.add(state.key)
                filtered.append(state)
        kept.append(filtered)
    return kept


def pruning_relational_search(
    queries, cost_model: CostModel, enumerator=None, budget=None, **kwargs
) -> SearchResult:
    """The Pruning strategy of [21] (keeps non-dominated combinations)."""
    return _relational_search(
        queries, cost_model, "pruning", enumerator, budget, **kwargs
    )


def greedy_relational_search(
    queries, cost_model: CostModel, enumerator=None, budget=None, **kwargs
) -> SearchResult:
    """The Greedy strategy of [21] (keeps one best combination)."""
    return _relational_search(
        queries, cost_model, "greedy", enumerator, budget, **kwargs
    )


def heuristic_relational_search(
    queries, cost_model: CostModel, enumerator=None, budget=None, **kwargs
) -> SearchResult:
    """The Heuristic strategy of [21] (min-cost + fusable states)."""
    return _relational_search(
        queries, cost_model, "heuristic", enumerator, budget, **kwargs
    )
