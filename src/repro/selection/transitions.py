"""The four state transitions of Section 3.2: SC, JC, VB, VF.

Each transition replaces one view (or fuses two) and substitutes the old
view symbol in every rewriting with an equivalent expression over the new
views, exactly as Definitions 3.2–3.5 prescribe:

* **Selection Cut (SC)** promotes a constant to a head variable;
  rewritings re-apply the selection: ``π_head(v)(σ_e(v'))``.
* **Join Cut (JC)** renames one occurrence of a join variable; if the
  view stays connected the rewriting re-applies the join predicate as a
  selection, otherwise the view splits in two and the rewriting joins
  them back: ``π_head(v)(v'1 ⋈_e v'2)``.
* **View Break (VB)** splits a view along two connected, covering,
  mutually non-included node sets; the rewriting is a natural join.
  The new heads export, besides the old head variables present in each
  part, *all* variables shared between the two parts (this includes the
  variables of overlap atoms the paper's definition lists, and is what
  the natural join needs to be lossless).
* **View Fusion (VF)** merges two views with isomorphic bodies into one
  whose head is the union of heads (Definition 3.5); rewritings project
  (and rename) the fused view back to each original shape.

All produced plan nodes carry the conjunctive query they compute, so the
cost model prices every intermediate result consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Sequence

from repro.query.algebra import (
    EqualsColumn,
    EqualsConstant,
    Join,
    Plan,
    Project,
    Rename,
    Scan,
    Select,
    replace_scan,
)
from repro.query.cq import (
    ATTRIBUTES,
    Atom,
    ConjunctiveQuery,
    Variable,
    fresh_variable,
)
from repro.query.containment import find_isomorphism
from repro.rdf.terms import Term
from repro.selection.state import State, StateDelta, ViewNamer
from repro.selection.stategraph import view_adjacency


class TransitionKind(Enum):
    """Transition types, in stratification order VB < SC < JC < VF."""

    VB = "VB"
    SC = "SC"
    JC = "JC"
    VF = "VF"


#: The stratified application order of Definition 5.3.
STRATIFIED_ORDER = (
    TransitionKind.VB,
    TransitionKind.SC,
    TransitionKind.JC,
    TransitionKind.VF,
)


@dataclass(frozen=True)
class Transition:
    """One applied transition: its kind, a label, and the state reached.

    ``delta`` records which views and rewriting plans the transition
    actually touched (everything else is shared by identity with the
    source state); the incremental cost model re-prices only the delta.
    """

    kind: TransitionKind
    description: str
    result: State
    delta: StateDelta | None = None


def _scan(view: ConjunctiveQuery) -> Scan:
    """A scan of a view; the schema is the view's head variable names."""
    return Scan(view.name, tuple(term.name for term in view.head), query=view)


def _head_with(
    head: tuple, extra: Sequence[Variable]
) -> tuple[Variable, ...]:
    """Extend a head with new variables, keeping order and uniqueness."""
    result = list(head)
    for variable in extra:
        if variable not in result:
            result.append(variable)
    return tuple(result)


def _ordered_vars(atoms: Sequence[Atom], include: set[Variable]) -> list[Variable]:
    """The subset ``include`` of variables, in first-occurrence order."""
    ordered: list[Variable] = []
    for atom in atoms:
        for term in atom:
            if isinstance(term, Variable) and term in include and term not in ordered:
                ordered.append(term)
    return ordered


class TransitionEnumerator:
    """Enumerates and applies transitions on states.

    ``vb_mode`` selects how View Break candidates are generated:
    ``"disjoint"`` (default) splits the atom set in two connected
    halves; ``"overlapping"`` additionally enumerates covers with shared
    atoms, as in the paper's Figure 1 example (more states, slower).
    ``max_vb_per_view`` caps the number of VB candidates per view.
    """

    def __init__(
        self,
        namer: ViewNamer | None = None,
        vb_mode: str = "disjoint",
        max_vb_per_view: int = 64,
    ) -> None:
        if vb_mode not in ("disjoint", "overlapping"):
            raise ValueError(f"unknown vb_mode {vb_mode!r}")
        self.namer = namer or ViewNamer()
        self.vb_mode = vb_mode
        self.max_vb_per_view = max_vb_per_view
        # Per-view-object candidate memos. A view's applicable SC/JC/VB
        # candidates depend only on the (immutable) view and this
        # enumerator's configuration, and the same view object survives
        # into thousands of states during a search — enumerating its
        # candidates once per search instead of once per state visit is
        # one of the larger wins of the incremental search core.
        self._sc_cache: dict[int, tuple[list, ConjunctiveQuery]] = {}
        self._jc_cache: dict[int, tuple[list, ConjunctiveQuery]] = {}
        self._vb_cache: dict[int, tuple[list, ConjunctiveQuery]] = {}

    def _memoized(self, cache: dict, view: ConjunctiveQuery, compute) -> list:
        cached = cache.get(id(view))
        if cached is not None and cached[1] is view:
            return cached[0]
        result = compute(view)
        if len(cache) > 500_000:
            cache.clear()
        cache[id(view)] = (result, view)
        return result

    # ------------------------------------------------------------------
    # Selection Cut
    # ------------------------------------------------------------------

    def apply_sc(
        self, state: State, view_name: str, atom_index: int, attribute: str
    ) -> Transition:
        """Cut the selection edge at ``(atom_index, attribute)`` of a view."""
        view = state.view(view_name)
        constant = view.atoms[atom_index].term_at(attribute)
        if isinstance(constant, Variable):
            raise ValueError(
                f"no constant at {view_name}.n{atom_index}.{attribute} to cut"
            )
        promoted = fresh_variable("C")
        new_atoms = tuple(
            atom.replace_at(attribute, promoted) if index == atom_index else atom
            for index, atom in enumerate(view.atoms)
        )
        new_view = ConjunctiveQuery(
            _head_with(view.head, [promoted]),
            new_atoms,
            name=self.namer.fresh(),
            non_literal=view.non_literal,
        )
        old_schema = tuple(term.name for term in view.head)
        selection = Select(
            _scan(new_view),
            (EqualsConstant(promoted.name, constant),),
            query=view,
        )
        replacement: Plan = Project(selection, old_schema, query=view)
        result, delta = state.replace_views(
            [view_name],
            [new_view],
            lambda plan: replace_scan(plan, view_name, replacement),
        )
        description = f"SC({view_name}.n{atom_index}.{attribute}={constant.n3()})"
        return Transition(TransitionKind.SC, description, result, delta)

    def sc_candidates(self, view: ConjunctiveQuery) -> list[tuple[int, str, Term]]:
        """All selection edges of a view (memoized per view object)."""
        return self._memoized(
            self._sc_cache, view, lambda v: v.constant_occurrences()
        )

    # ------------------------------------------------------------------
    # Join Cut
    # ------------------------------------------------------------------

    def apply_jc(
        self, state: State, view_name: str, atom_index: int, attribute: str
    ) -> Transition:
        """Cut the join variable occurrence at ``(atom_index, attribute)``."""
        view = state.view(view_name)
        variable = view.atoms[atom_index].term_at(attribute)
        if not isinstance(variable, Variable):
            raise ValueError(
                f"no variable at {view_name}.n{atom_index}.{attribute} to cut"
            )
        occurrences = sum(
            1
            for atom in view.atoms
            for term in atom
            if term == variable
        )
        if occurrences < 2:
            raise ValueError(f"{variable} is not a join variable in {view_name}")
        renamed = fresh_variable("J")
        new_atoms = tuple(
            atom.replace_at(attribute, renamed) if index == atom_index else atom
            for index, atom in enumerate(view.atoms)
        )
        probe = ConjunctiveQuery((), new_atoms)
        components = probe.connected_components()
        old_schema = tuple(term.name for term in view.head)
        description = f"JC({view_name}.n{atom_index}.{attribute}:{variable})"
        # A fresh variable standing in for a restricted occurrence keeps
        # the restriction (the position's semantics did not change).
        restriction = view.non_literal
        if variable in restriction:
            restriction = restriction | {renamed}
        if len(components) == 1:
            new_view = ConjunctiveQuery(
                _head_with(view.head, [variable, renamed]),
                new_atoms,
                name=self.namer.fresh(),
                non_literal=restriction,
            )
            selection = Select(
                _scan(new_view),
                (EqualsColumn(renamed.name, variable.name),),
                query=view,
            )
            replacement: Plan = Project(selection, old_schema, query=view)
            result, delta = state.replace_views(
                [view_name],
                [new_view],
                lambda plan: replace_scan(plan, view_name, replacement),
            )
            return Transition(TransitionKind.JC, description, result, delta)
        if len(components) != 2:
            raise AssertionError(
                f"join cut split {view_name} into {len(components)} components"
            )
        first, second = components
        if atom_index not in first:
            first, second = second, first
        head_vars = set(view.head)
        views = []
        for indices, join_var in ((first, renamed), (second, variable)):
            atoms = tuple(new_atoms[i] for i in indices)
            body_vars = set()
            for atom in atoms:
                body_vars.update(atom.variables())
            head = _ordered_vars(atoms, (head_vars & body_vars) | {join_var})
            # Keep the original head order for old head variables.
            ordered_head = [t for t in view.head if t in body_vars]
            ordered_head = _head_with(tuple(ordered_head), head)
            views.append(
                ConjunctiveQuery(
                    ordered_head,
                    atoms,
                    name=self.namer.fresh(),
                    non_literal=restriction,  # trimmed to body vars on init
                )
            )
        left_view, right_view = views
        join = Join(
            _scan(left_view),
            _scan(right_view),
            pairs=((renamed.name, variable.name),),
            query=view,
        )
        replacement = Project(join, old_schema, query=view)
        result, delta = state.replace_views(
            [view_name],
            [left_view, right_view],
            lambda plan: replace_scan(plan, view_name, replacement),
        )
        return Transition(TransitionKind.JC, description, result, delta)

    def jc_candidates(self, view: ConjunctiveQuery) -> list[tuple[int, str]]:
        """All cuttable join-variable occurrences ``(atom index, attribute)``."""
        return self._memoized(self._jc_cache, view, _jc_candidates)

    # ------------------------------------------------------------------
    # View Break
    # ------------------------------------------------------------------

    def apply_vb(
        self,
        state: State,
        view_name: str,
        part1: Sequence[int],
        part2: Sequence[int],
    ) -> Transition:
        """Break a view along two covering, connected node sets."""
        view = state.view(view_name)
        set1, set2 = set(part1), set(part2)
        if set1 | set2 != set(range(len(view.atoms))):
            raise ValueError("view break parts must cover all atoms")
        if set1 <= set2 or set2 <= set1:
            raise ValueError("view break parts must be mutually non-included")
        if len(view.atoms) <= 2:
            raise ValueError("view break requires more than two atoms")
        bodies = []
        variable_sets = []
        for indices in (sorted(set1), sorted(set2)):
            atoms = tuple(view.atoms[i] for i in indices)
            if not ConjunctiveQuery((), atoms).is_connected():
                raise ValueError(f"view break part {indices} is not connected")
            bodies.append(atoms)
            variables: set[Variable] = set()
            for atom in atoms:
                variables.update(atom.variables())
            variable_sets.append(variables)
        shared = variable_sets[0] & variable_sets[1]
        views = []
        for atoms, variables in zip(bodies, variable_sets):
            ordered_head = [t for t in view.head if t in variables]
            extra = _ordered_vars(atoms, shared)
            views.append(
                ConjunctiveQuery(
                    _head_with(tuple(ordered_head), extra),
                    atoms,
                    name=self.namer.fresh(),
                    non_literal=view.non_literal,  # trimmed to body vars
                )
            )
        left_view, right_view = views
        old_schema = tuple(term.name for term in view.head)
        join = Join(_scan(left_view), _scan(right_view), query=view)
        replacement = Project(join, old_schema, query=view)
        result, delta = state.replace_views(
            [view_name],
            [left_view, right_view],
            lambda plan: replace_scan(plan, view_name, replacement),
        )
        description = f"VB({view_name}:{sorted(set1)}|{sorted(set2)})"
        return Transition(TransitionKind.VB, description, result, delta)

    def vb_candidates(
        self, view: ConjunctiveQuery
    ) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Candidate (part1, part2) splits for a view (memoized, capped)."""
        return self._memoized(self._vb_cache, view, self._vb_candidates)

    def _vb_candidates(
        self, view: ConjunctiveQuery
    ) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        n = len(view.atoms)
        if n <= 2:
            return []
        adjacency = view_adjacency(view)
        connected = _connected_subsets(n, adjacency)
        candidates: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        all_atoms = frozenset(range(n))
        connected_set = set(connected)
        if self.vb_mode == "disjoint":
            for subset in connected:
                if 0 not in subset or len(subset) == n:
                    continue  # fix 0 in part1 to enumerate unordered pairs once
                complement = frozenset(all_atoms - subset)
                if complement in connected_set:
                    candidates.append((tuple(sorted(subset)), tuple(sorted(complement))))
                if len(candidates) >= self.max_vb_per_view:
                    break
            return candidates
        seen_pairs: set[frozenset[frozenset[int]]] = set()
        for subset1 in connected:
            if len(subset1) == n:
                continue
            for subset2 in connected:
                if subset1 | subset2 != all_atoms:
                    continue
                if subset1 <= subset2 or subset2 <= subset1:
                    continue
                pair = frozenset((subset1, subset2))
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                candidates.append((tuple(sorted(subset1)), tuple(sorted(subset2))))
                if len(candidates) >= self.max_vb_per_view:
                    return candidates
        return candidates

    # ------------------------------------------------------------------
    # View Fusion
    # ------------------------------------------------------------------

    def apply_vf(self, state: State, name1: str, name2: str) -> Transition:
        """Fuse two views with isomorphic bodies (Definition 3.5)."""
        view1, view2 = state.view(name1), state.view(name2)
        mapping = find_isomorphism(view1, view2)
        if mapping is None:
            raise ValueError(f"views {name1} and {name2} are not isomorphic")
        if {mapping[v] for v in view2.non_literal} != set(view1.non_literal):
            raise ValueError(
                f"views {name1} and {name2} differ in non-literal restrictions"
            )
        mapped_head2 = tuple(mapping[term] for term in view2.head)
        fused_head = _head_with(view1.head, mapped_head2)
        fused = ConjunctiveQuery(
            fused_head,
            view1.atoms,
            name=self.namer.fresh(),
            non_literal=view1.non_literal,
        )
        schema1 = tuple(term.name for term in view1.head)
        schema2 = tuple(term.name for term in view2.head)
        replacement1: Plan = Project(_scan(fused), schema1, query=view1)
        projected2 = Project(
            _scan(fused), tuple(term.name for term in mapped_head2), query=view2
        )
        replacement2: Plan = Rename(projected2, schema2, query=view2)

        def substitute(plan: Plan) -> Plan:
            plan = replace_scan(plan, name1, replacement1)
            return replace_scan(plan, name2, replacement2)

        result, delta = state.replace_views([name1, name2], [fused], substitute)
        description = f"VF({name1},{name2})"
        return Transition(TransitionKind.VF, description, result, delta)

    def vf_candidates(self, state: State) -> list[tuple[str, str]]:
        """Pairs of views with isomorphic bodies, cheap filters first."""
        signatures: dict[tuple, list[ConjunctiveQuery]] = {}
        for view in state.views:
            signatures.setdefault(_body_signature(view), []).append(view)
        pairs = []
        for group in signatures.values():
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    mapping = find_isomorphism(group[i], group[j])
                    if mapping is None:
                        continue
                    mapped = {mapping[v] for v in group[j].non_literal}
                    if mapped != set(group[i].non_literal):
                        continue
                    pairs.append((group[i].name, group[j].name))
        return pairs

    # ------------------------------------------------------------------
    # Uniform enumeration
    # ------------------------------------------------------------------

    def transitions(
        self, state: State, kinds: Sequence[TransitionKind] = STRATIFIED_ORDER
    ) -> Iterator[Transition]:
        """Lazily yield applicable transitions of the given kinds, in order."""
        for kind in kinds:
            if kind is TransitionKind.VB:
                for view in state.views:
                    for part1, part2 in self.vb_candidates(view):
                        yield self.apply_vb(state, view.name, part1, part2)
            elif kind is TransitionKind.SC:
                for view in state.views:
                    for atom_index, attribute, _ in self.sc_candidates(view):
                        yield self.apply_sc(state, view.name, atom_index, attribute)
            elif kind is TransitionKind.JC:
                for view in state.views:
                    for atom_index, attribute in self.jc_candidates(view):
                        yield self.apply_jc(state, view.name, atom_index, attribute)
            else:
                for name1, name2 in self.vf_candidates(state):
                    yield self.apply_vf(state, name1, name2)


#: Per-view-object body signature cache; views are immutable and shared
#: across many states, and avf_closure recomputes signatures constantly.
_SIGNATURE_CACHE: dict[int, tuple[tuple, ConjunctiveQuery]] = {}


def _body_signature(view: ConjunctiveQuery) -> tuple:
    """A cheap isomorphism-invariant filter key for a view body."""
    cached = _SIGNATURE_CACHE.get(id(view))
    if cached is not None and cached[1] is view:
        return cached[0]
    signature = tuple(
        sorted(
            tuple(
                term.n3() if not isinstance(term, Variable) else "?"
                for term in atom
            )
            for atom in view.atoms
        )
    )
    if len(_SIGNATURE_CACHE) > 500_000:
        _SIGNATURE_CACHE.clear()
    _SIGNATURE_CACHE[id(view)] = (signature, view)
    return signature


def _jc_candidates(view: ConjunctiveQuery) -> list[tuple[int, str]]:
    counts: dict[Variable, int] = {}
    for atom in view.atoms:
        for term in atom:
            if isinstance(term, Variable):
                counts[term] = counts.get(term, 0) + 1
    candidates = []
    for index, atom in enumerate(view.atoms):
        for attribute, term in zip(ATTRIBUTES, atom):
            if isinstance(term, Variable) and counts[term] >= 2:
                candidates.append((index, attribute))
    return candidates


def _connected_subsets(n: int, adjacency: dict[int, set[int]]) -> list[frozenset[int]]:
    """All non-empty connected subsets of atom indices.

    Standard enumeration: grow each subset only with neighbours greater
    than its smallest excluded vertex barrier — here a simple recursive
    expansion with dedup, adequate for the paper's view sizes (≤ ~12
    atoms).
    """
    found: set[frozenset[int]] = set()

    def grow(subset: frozenset[int], frontier: set[int]) -> None:
        found.add(subset)
        for vertex in sorted(frontier):
            extended = subset | {vertex}
            if extended in found:
                continue
            new_frontier = (frontier | adjacency[vertex]) - extended
            grow(extended, new_frontier)

    for start in range(n):
        grow(frozenset({start}), set(adjacency[start]))
    return sorted(found, key=lambda s: (len(s), sorted(s)))
