"""Statistics collection for the cost model (Sections 3.3 and 4.3).

The cost model needs, for every atom a view may ever contain during the
search (the workload atoms and all their SC relaxations):

* the exact number of triples matching the atom's constant pattern;
* per-column distinct-value counts (for join selectivities);
* the average term size (for space estimates).

:class:`StoreStatistics` reads them from a (possibly saturated) store.
:class:`ReformulationAwareStatistics` implements the post-reformulation
twist of Section 4.3: each atom is reformulated against the RDF Schema
and its cardinality is the number of distinct matches of the resulting
union on the *non-saturated* store — "the same statistics as if the
database was saturated", without saturating it.
"""

from __future__ import annotations

from typing import Protocol

from repro.query.cq import Atom, ConjunctiveQuery, Variable
from repro.query.evaluation import evaluate_union
from repro.rdf.schema import RDFSchema
from repro.rdf.store import TripleStore
from repro.rdf.terms import Term


class Statistics(Protocol):
    """What the cost model needs to know about the data."""

    def atom_count(self, atom: Atom) -> int:
        """Exact number of triples matching the atom's constants."""

    def distinct_values(self, column: str) -> int:
        """Distinct values in triple-table column ``'s'``/``'p'``/``'o'``."""

    def total_triples(self) -> int:
        """Size of the data set (the cardinality of an all-variable atom)."""

    def average_term_size(self) -> float:
        """Average rendered size of one term (the width unit)."""


def _atom_pattern(atom: Atom) -> tuple[Term | None, Term | None, Term | None]:
    """The atom's constants, with None at variable positions.

    A repeated variable inside one atom (e.g. ``t(X, p, X)``) is rare and
    ignored by the pattern count — an overestimate, which is safe for a
    cost model.
    """
    return tuple(
        None if isinstance(term, Variable) else term for term in atom
    )  # type: ignore[return-value]


class StoreStatistics:
    """Exact pattern counts read straight from a triple store.

    Counts are cached per constant pattern: the search asks for the same
    atoms over and over (Section 3.3 gathers them once per workload; the
    cache achieves the same effect lazily).
    """

    def __init__(self, store: TripleStore) -> None:
        self._store = store
        self._cache: dict[tuple, int] = {}

    def atom_count(self, atom: Atom) -> int:
        pattern = _atom_pattern(atom)
        cached = self._cache.get(pattern)
        if cached is None:
            s, p, o = pattern
            cached = self._store.count(s, p, o)
            self._cache[pattern] = cached
        return cached

    def distinct_values(self, column: str) -> int:
        return self._store.distinct_values(column)

    def total_triples(self) -> int:
        return len(self._store)

    def average_term_size(self) -> float:
        return self._store.average_term_size()


class ReformulationAwareStatistics:
    """Post-reformulation statistics (Section 4.3).

    For each atom ``vi``, ``|vi|`` is replaced by
    ``|Reformulate(vi, S)|``: the atom is turned into a one-atom query
    projecting all its terms, reformulated with Algorithm 1, and the
    union is evaluated on the plain (non-saturated) store; the count of
    distinct matches is cached. Theorem 4.2 guarantees this equals the
    atom's count on the saturated store.
    """

    def __init__(self, store: TripleStore, schema: RDFSchema) -> None:
        self._store = store
        self._schema = schema
        self._cache: dict[tuple, int] = {}

    def atom_count(self, atom: Atom) -> int:
        pattern = _atom_pattern(atom)
        cached = self._cache.get(pattern)
        if cached is not None:
            return cached
        # Import here: reformulation builds on the query layer, and the
        # selection layer builds on both; this keeps import order acyclic.
        from repro.reformulation.reformulate import reformulate

        head = tuple(term for term in atom if isinstance(term, Variable))
        query = ConjunctiveQuery(head, (atom,), name="stat")
        union = reformulate(query, self._schema)
        count = len(evaluate_union(union, self._store))
        self._cache[pattern] = count
        return count

    def distinct_values(self, column: str) -> int:
        return self._store.distinct_values(column)

    def total_triples(self) -> int:
        return len(self._store)

    def average_term_size(self) -> float:
        return self._store.average_term_size()


class ZipfStatistics:
    """Deterministic skewed statistics for dataset-free benchmarks.

    Real RDF datasets (Barton included) have heavily skewed property
    extents: a few record-keeping properties carry most triples, the
    long tail is rare. This provider assigns each constant a stable
    pseudo-random selectivity on a log scale, so atoms over different
    constants differ by orders of magnitude — which is what makes
    breaking views along rare-property atoms worthwhile.
    """

    def __init__(
        self,
        total: int = 1_000_000,
        seed: int = 0,
        min_selectivity: float = 1e-4,
        max_selectivity: float = 5e-2,
        distinct: dict[str, int] | None = None,
        term_size: float = 16.0,
    ) -> None:
        self._total = total
        self._seed = seed
        self._min = min_selectivity
        self._max = max_selectivity
        self._distinct = distinct or {"s": 50_000, "p": 100, "o": 40_000}
        self._term_size = term_size

    def _selectivity(self, constant, position: int) -> float:
        import hashlib
        import math

        digest = hashlib.sha256(
            f"{self._seed}:{position}:{constant.n3()}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64
        log_min, log_max = math.log(self._min), math.log(self._max)
        return math.exp(log_min + unit * (log_max - log_min))

    def atom_count(self, atom: Atom) -> int:
        count = float(self._total)
        for position, term in enumerate(atom):
            if not isinstance(term, Variable):
                count *= self._selectivity(term, position)
        return max(1, int(count))

    def distinct_values(self, column: str) -> int:
        return self._distinct[column]

    def total_triples(self) -> int:
        return self._total

    def average_term_size(self) -> float:
        return self._term_size


class FixedStatistics:
    """Deterministic synthetic statistics for unit tests and search
    benchmarks that should not depend on a data set.

    ``atom_count`` scales the data-set size down by a fixed factor per
    constant in the atom, a crude but monotone stand-in for selectivity.
    """

    def __init__(
        self,
        total: int = 1_000_000,
        selectivity: float = 0.01,
        distinct: dict[str, int] | None = None,
        term_size: float = 16.0,
    ) -> None:
        self._total = total
        self._selectivity = selectivity
        self._distinct = distinct or {"s": 50_000, "p": 100, "o": 40_000}
        self._term_size = term_size

    def atom_count(self, atom: Atom) -> int:
        constants = sum(1 for term in atom if not isinstance(term, Variable))
        count = self._total * (self._selectivity**constants)
        return max(1, int(count))

    def distinct_values(self, column: str) -> int:
        return self._distinct[column]

    def total_triples(self) -> int:
        return self._total

    def average_term_size(self) -> float:
        return self._term_size
