"""Statistics for the cost model (Sections 3.3 and 4.3) — thin adapters.

Since the ``repro.stats`` refactor, all base figures live in the store's
incrementally maintained :class:`~repro.stats.catalog.StatisticsCatalog`
and the shared providers of :mod:`repro.stats.provider`; this module
keeps the historical import path plus the one provider that genuinely
belongs to the selection layer:

* :class:`StoreStatistics` — exact counts from a (possibly saturated)
  store, now a named alias of
  :class:`~repro.stats.provider.CatalogStatistics` bound to the store's
  catalog;
* :class:`ReformulationAwareStatistics` — the post-reformulation twist
  of Section 4.3: each atom is reformulated against the RDF Schema and
  its cardinality is the number of distinct matches of the resulting
  union on the *non-saturated* store — "the same statistics as if the
  database was saturated", without saturating it. It lives here (not in
  ``repro.stats``) because it builds on the reformulation machinery.

``Statistics`` (the protocol), ``FixedStatistics`` and
``ZipfStatistics`` are re-exported from :mod:`repro.stats` for
compatibility.
"""

from __future__ import annotations

from repro.query.cq import ConjunctiveQuery, Variable
from repro.query.evaluation import evaluate_union
from repro.rdf.schema import RDFSchema
from repro.rdf.store import TripleStore
from repro.stats.provider import (
    CatalogStatistics,
    FixedStatistics,
    Statistics,
    ZipfStatistics,
    atom_pattern as _atom_pattern,
)

__all__ = [
    "FixedStatistics",
    "ReformulationAwareStatistics",
    "Statistics",
    "StoreStatistics",
    "ZipfStatistics",
]


class StoreStatistics(CatalogStatistics):
    """Exact pattern counts read straight from a triple store.

    A thin adapter over the store's incrementally maintained catalog
    (``store.stats``): pattern counts are memoized there per constant
    pattern and refreshed through the store's ``version`` counter, so
    the search's repeated lookups stay O(1) without ever recounting
    from scratch (Section 3.3 gathers them once per workload; the
    version-aware memo achieves the same effect lazily).
    """

    def __init__(self, store: TripleStore) -> None:
        super().__init__(store.stats)


class ReformulationAwareStatistics:
    """Post-reformulation statistics (Section 4.3).

    For each atom ``vi``, ``|vi|`` is replaced by
    ``|Reformulate(vi, S)|``: the atom is turned into a one-atom query
    projecting all its terms, reformulated with Algorithm 1, and the
    union is evaluated on the plain (non-saturated) store; the count of
    distinct matches is cached. Theorem 4.2 guarantees this equals the
    atom's count on the saturated store. Column distincts, totals and
    term sizes come from the store's catalog like everywhere else.

    Reformulation unions overlap heavily, so ``evaluate_union`` runs
    them through the engine's multi-query optimizer
    (:mod:`repro.engine.mqo`): shared join subtrees across the
    disjuncts execute once (one pushed-down ``SELECT ... UNION``
    statement on SQL-capable backends) — this provider inherits that
    speedup without holding any MQO state of its own.
    """

    def __init__(self, store: TripleStore, schema: RDFSchema) -> None:
        self._store = store
        self._catalog = store.stats
        self._schema = schema
        self._cache: dict[tuple, int] = {}
        self._cache_version = self._catalog.version

    @property
    def version(self) -> int:
        """The store's mutation counter — lets downstream memos (the
        shared estimator, the cost model's cross-state price caches)
        detect staleness exactly like every other provider."""
        return self._catalog.version

    def atom_count(self, atom) -> int:
        if self._catalog.version != self._cache_version:
            self._cache.clear()
            self._cache_version = self._catalog.version
        pattern = _atom_pattern(atom)
        cached = self._cache.get(pattern)
        if cached is not None:
            return cached
        # Import here: reformulation builds on the query layer, and the
        # selection layer builds on both; this keeps import order acyclic.
        from repro.reformulation.reformulate import reformulate

        head = tuple(term for term in atom if isinstance(term, Variable))
        query = ConjunctiveQuery(head, (atom,), name="stat")
        union = reformulate(query, self._schema)
        count = len(evaluate_union(union, self._store))
        self._cache[pattern] = count
        return count

    def distinct_values(self, column: str) -> int:
        return self._catalog.distinct_values(column)

    def total_triples(self) -> int:
        return self._catalog.total_triples()

    def average_term_size(self) -> float:
        return self._catalog.average_term_size()
