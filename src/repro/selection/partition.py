"""Workload partitioning — the paper's Section 8 future-work direction.

"As future work, we consider parallelizing our view search algorithms by
identifying workload queries that do not have many commonalities and
running the search in parallel for each group."

Two queries interact during the search only if their views can ever fuse
or share structure, which requires shared constants (properties,
classes, values). :func:`partition_workload` splits the workload into
the connected components of the commonality graph;
:func:`partitioned_search` runs an independent search per group and
merges the recommended states. Since the groups share no vocabulary, no
cross-group fusion opportunity is lost, and the merged state's cost is
the sum of the group costs (the cost function is additive over views and
rewritings).

The searches run sequentially here (pure Python), but each group's
search is independent, so a process pool could run them in parallel
without any algorithmic change.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.query.cq import ConjunctiveQuery
from repro.rdf.terms import Term
from repro.selection.costs import CostModel
from repro.selection.search import SearchBudget, SearchResult, dfs_search
from repro.selection.state import State, ViewNamer, initial_state
from repro.selection.transitions import TransitionEnumerator


def partition_workload(
    queries: Sequence[ConjunctiveQuery],
    min_shared_constants: int = 1,
) -> list[list[ConjunctiveQuery]]:
    """Group queries into components of the commonality graph.

    Queries are connected when they share at least
    ``min_shared_constants`` constants. Raising the threshold splits
    more aggressively (weakly related queries stop interacting), at the
    price of possibly missing some fusion opportunities.
    """
    vocabularies: list[set[Term]] = [set(q.constants()) for q in queries]
    parent = list(range(len(queries)))

    def find(index: int) -> int:
        while parent[index] != index:
            parent[index] = parent[parent[index]]
            index = parent[index]
        return index

    for i in range(len(queries)):
        for j in range(i + 1, len(queries)):
            if len(vocabularies[i] & vocabularies[j]) >= min_shared_constants:
                parent[find(i)] = find(j)
    groups: dict[int, list[ConjunctiveQuery]] = {}
    for index, query in enumerate(queries):
        groups.setdefault(find(index), []).append(query)
    # Deterministic group order: by first query's position.
    return [group for _, group in sorted(groups.items())]


def merge_states(states: Sequence[State]) -> State:
    """The union of disjoint partial states (disjoint query coverage)."""
    views: list = []
    rewritings: dict = {}
    for state in states:
        views.extend(state.views)
        for query_name, rewriting in state.rewritings.items():
            if query_name in rewritings:
                raise ValueError(f"query {query_name!r} covered by two groups")
            rewritings[query_name] = rewriting
    return State(tuple(views), rewritings)


def partitioned_search(
    queries: Sequence[ConjunctiveQuery],
    cost_model: CostModel,
    strategy: Callable = dfs_search,
    budget: SearchBudget | None = None,
    enumerator: TransitionEnumerator | None = None,
    min_shared_constants: int = 1,
    **strategy_options,
) -> tuple[State, list[SearchResult]]:
    """Search each commonality group independently and merge the results.

    The time budget is divided evenly across groups. Returns the merged
    recommended state and the per-group search results.
    """
    if not queries:
        raise ValueError("the workload must contain at least one query")
    enumerator = enumerator or TransitionEnumerator(ViewNamer())
    groups = partition_workload(queries, min_shared_constants)
    per_group_budget = budget
    if budget is not None and budget.time_limit is not None and groups:
        per_group_budget = SearchBudget(
            time_limit=budget.time_limit / len(groups),
            max_states=budget.max_states,
        )
    results = []
    partial_states = []
    for group in groups:
        start = initial_state(group, enumerator.namer)
        result = strategy(
            start, cost_model, enumerator, per_group_budget, **strategy_options
        )
        results.append(result)
        partial_states.append(result.best_state)
    return merge_states(partial_states), results
