"""Engine-wide observability: metrics, tracing spans, EXPLAIN ANALYZE.

Three cooperating layers (see ``docs/observability.md``):

``repro.obs.metrics``
    A process-wide registry of counters, gauges, and timing histograms
    with a module-level ``enabled`` flag. Call sites guard with
    ``if metrics.enabled:`` so the disabled overhead is one attribute
    load and a branch — unmeasurable on the Figure 8 hot loop.

``repro.obs.tracing``
    Nested spans (``with span("engine.run_query", query=q):``) emitting
    one JSONL event per span to a configured sink.

``repro.obs.analyze`` / ``repro.obs.render``
    EXPLAIN ANALYZE — instrumented execution where every physical
    operator records rows-in/rows-out/batches/wall-time — plus the one
    plan-tree renderer shared by ``--explain`` and ``--analyze``.

``metrics`` and ``tracing`` are leaf modules (no ``repro`` imports) so
the engine can import them without cycles; ``analyze`` and ``render``
sit above the engine and are imported by the CLI and benchmarks.
"""

from repro.obs import metrics, tracing
from repro.obs.render import PlanNode, operator_tree, render
from repro.obs.tracing import span

__all__ = [
    "PlanNode",
    "metrics",
    "operator_tree",
    "render",
    "span",
    "tracing",
]
