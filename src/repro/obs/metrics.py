"""Process-wide metrics registry: counters, gauges, timing histograms.

Design constraints, in order:

1. **Disabled must be free.** Every call site in the engine guards with
   ``if metrics.enabled:`` — one module-attribute load and a branch.
   Nothing here may run on the hot path while disabled, and the guard
   sits at per-query / per-plan granularity, never per row or batch.
2. **Mergeable across processes.** The fork pool in ``engine/parallel``
   runs tasks in worker processes whose registry state was inherited at
   fork time. :func:`collect` gives a task a fresh registry and returns
   a picklable dump the parent merges, so worker counts neither leak
   nor double-count (serial totals == merged worker totals).
3. **Deterministic.** Histograms keep exact count/sum/min/max and a
   bounded sample list decimated with a fixed stride — no randomness,
   no wall-clock reads beyond the timings themselves.

>>> from repro.obs import metrics
>>> metrics.reset()
>>> with metrics.enabled_registry():
...     metrics.inc("engine.plan_cache.hit")
...     metrics.observe("engine.query_ms", 2.5)
>>> metrics.snapshot()["counters"]["engine.plan_cache.hit"]
1
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager

#: Global switch read by every instrumented call site. Off by default:
#: library users pay one attribute load + branch per touchpoint.
enabled = False

#: When not ``None``, ``engine.run_query`` logs a warning through the
#: ``repro.engine`` logger for any query slower than this many
#: milliseconds (the CLI sets it; see ``--slow-query-ms``).
slow_query_ms: float | None = None

#: Cap on retained histogram samples; on overflow the sample list is
#: decimated 2:1 and the keep-stride doubles. count/sum/min/max stay
#: exact regardless.
_SAMPLE_LIMIT = 4096


class Histogram:
    """Timing/size distribution with exact totals and bounded samples."""

    __slots__ = ("count", "maximum", "minimum", "samples", "stride", "total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self.samples: list[float] = []
        self.stride = 1

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if self.count % self.stride == 0:
            self.samples.append(value)
            if len(self.samples) > _SAMPLE_LIMIT:
                self.samples = self.samples[::2]
                self.stride *= 2

    def merge(self, dump: dict) -> None:
        self.count += dump["count"]
        self.total += dump["total"]
        for bound, pick in (("min", min), ("max", max)):
            other = dump[bound]
            if other is None:
                continue
            ours = self.minimum if bound == "min" else self.maximum
            merged = other if ours is None else pick(ours, other)
            if bound == "min":
                self.minimum = merged
            else:
                self.maximum = merged
        self.samples.extend(dump["samples"])
        if len(self.samples) > _SAMPLE_LIMIT:
            self.samples = self.samples[::2]
            self.stride *= 2

    def dump(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "samples": list(self.samples),
        }

    def percentile(self, fraction: float) -> float | None:
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by dotted metric name."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- recording ------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> dict:
        """Rendered, JSON-ready view (histograms as percentile summaries)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: self.histograms[name].summary()
                for name in sorted(self.histograms)
            },
        }

    def dump(self) -> dict:
        """Lossless, mergeable, picklable form (raw histogram samples)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: histogram.dump()
                for name, histogram in self.histograms.items()
            },
        }

    def merge(self, dump: dict) -> None:
        """Fold another registry's :meth:`dump` into this one. Counters
        and histogram totals add; gauges take the incoming value."""
        for name, value in dump.get("counters", {}).items():
            self.inc(name, value)
        self.gauges.update(dump.get("gauges", {}))
        for name, payload in dump.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.merge(payload)

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _REGISTRY


def enable() -> None:
    global enabled
    enabled = True


def disable() -> None:
    global enabled
    enabled = False


# -- module-level conveniences (what instrumented call sites use) -------


def inc(name: str, value: int = 1) -> None:
    _REGISTRY.inc(name, value)


def gauge(name: str, value: float) -> None:
    _REGISTRY.gauge(name, value)


def observe(name: str, value: float) -> None:
    _REGISTRY.observe(name, value)


def snapshot() -> dict:
    return _REGISTRY.snapshot()


def dump() -> dict:
    """Lossless, mergeable form of the process-wide registry."""
    return _REGISTRY.dump()


def reset() -> None:
    _REGISTRY.reset()


def merge(dump: dict) -> None:
    _REGISTRY.merge(dump)


def export_json(path: str | None = None) -> str:
    """Serialize the current snapshot; optionally write it to ``path``."""
    text = json.dumps(snapshot(), indent=2, sort_keys=True)
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return text


@contextmanager
def timer(name: str):
    """Record a wall-clock histogram sample (milliseconds) around a block.

    Callers still guard with ``if metrics.enabled:`` — this does not
    re-check, so an unguarded use records even while disabled.
    """
    started = time.perf_counter()
    try:
        yield
    finally:
        _REGISTRY.observe(name, (time.perf_counter() - started) * 1000.0)


@contextmanager
def enabled_registry():
    """Enable metrics for a block, restoring the previous flag after.

    The registry contents persist (tests/benchmarks read them after the
    block); call :func:`reset` first for a clean slate.
    """
    global enabled
    previous = enabled
    enabled = True
    try:
        yield _REGISTRY
    finally:
        enabled = previous


def collect(function, /, *args, **kwargs):
    """Run ``function`` against a fresh, enabled registry.

    Returns ``(result, dump)`` where ``dump`` is the fresh registry's
    picklable :meth:`MetricsRegistry.dump`. This is what the parallel
    layer ships to fork-pool workers: whatever registry state the
    worker inherited at fork time is set aside for the duration, so the
    parent can merge exactly the counts this one task produced.
    """
    global _REGISTRY, enabled
    outer_registry, outer_enabled = _REGISTRY, enabled
    fresh = MetricsRegistry()
    _REGISTRY, enabled = fresh, True
    try:
        result = function(*args, **kwargs)
    finally:
        _REGISTRY, enabled = outer_registry, outer_enabled
    return result, fresh.dump()


def disabled_overhead_ns(iterations: int = 200_000) -> float:
    """Measure the real per-call-site cost of disabled instrumentation.

    Times the exact guard the engine's instrumentation wrappers use
    (two module attribute loads plus a branch — with both metrics and
    tracing off no call site ever constructs a span or touches the
    registry, they early-return before either) and returns nanoseconds
    per touchpoint. The Figure 8 smoke benchmark multiplies this by the
    touchpoints per query to gate the disabled overhead below 5%.
    """
    from repro.obs import tracing

    global enabled
    previous_enabled = enabled
    previous_sink = tracing.sink
    enabled = False
    tracing.sink = None
    try:
        started = time.perf_counter()
        for _ in range(iterations):
            if enabled or tracing.sink is not None:  # pragma: no cover
                _REGISTRY.inc("obs.overhead.probe")
        elapsed = time.perf_counter() - started
    finally:
        enabled = previous_enabled
        tracing.sink = previous_sink
    return elapsed / iterations * 1e9
