"""Tracing spans: nested, structured, one JSONL event per span.

Usage::

    from repro.obs import tracing

    tracing.configure("trace.jsonl")          # or any .write()-able
    with tracing.span("engine.run_query", query="q1", engine="auto"):
        ...

Each span closes by appending one JSON line to the sink::

    {"name": "engine.run_query", "span_id": 2, "parent_id": 1,
     "start_ms": 12.031, "duration_ms": 4.118,
     "attrs": {"query": "q1", "engine": "auto"}}

``span_id``/``parent_id`` reconstruct the nesting; ``start_ms`` is
relative to :func:`configure` so a trace is self-contained. With no
sink configured :func:`span` returns a shared no-op context manager —
the disabled path is one attribute load, a branch, and a constant
``with`` — cheap enough for per-query granularity (the Figure 8 smoke
gate measures it; see ``metrics.disabled_overhead_ns``).

Spans are process-local and single-threaded by design: fork-pool
workers do not trace (their metrics travel back via
``metrics.collect`` dumps instead), so sink lines never interleave.
"""

from __future__ import annotations

import json
import os
import time

#: Destination for span events: anything with ``write(str)``. ``None``
#: disables tracing (the common case).
sink = None

_origin = 0.0
_next_id = 1
_stack: list[int] = []
_owned_handle = None


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("attrs", "name", "parent_id", "span_id", "started")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs

    def __enter__(self):
        global _next_id
        self.parent_id = _stack[-1] if _stack else None
        self.span_id = _next_id
        _next_id += 1
        _stack.append(self.span_id)
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        finished = time.perf_counter()
        if _stack and _stack[-1] == self.span_id:
            _stack.pop()
        out = sink
        if out is not None:
            event = {
                "name": self.name,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "start_ms": round((self.started - _origin) * 1000.0, 3),
                "duration_ms": round((finished - self.started) * 1000.0, 3),
            }
            if self.attrs:
                event["attrs"] = {
                    key: value
                    if isinstance(value, (str, int, float, bool, type(None)))
                    else str(value)
                    for key, value in self.attrs.items()
                }
            out.write(json.dumps(event) + "\n")
        return False


def span(name: str, **attrs):
    """Open a span. No-op (and allocation-free) when no sink is set."""
    if sink is None:
        return _NOOP
    return _Span(name, attrs)


def configure(destination) -> None:
    """Point tracing at ``destination`` (path or writable object).

    Resets the span-id counter and the relative clock so each trace
    file stands alone. Passing ``None`` turns tracing off and closes a
    previously opened path.
    """
    global sink, _origin, _next_id, _owned_handle
    if _owned_handle is not None:
        _owned_handle.close()
        _owned_handle = None
    if destination is None:
        sink = None
        return
    if isinstance(destination, (str, os.PathLike)):
        _owned_handle = open(os.fspath(destination), "w", encoding="utf-8")
        sink = _owned_handle
    else:
        sink = destination
    _origin = time.perf_counter()
    _next_id = 1
    _stack.clear()
