"""The one plan-tree renderer behind ``--explain`` and ``--analyze``.

Historically the CLI printed plans through three disjoint code paths —
``Operator.explain()`` for interpreted trees, ``CompiledQuery.describe()``
for pushed-down SQL, and ``describe_union_sharing`` for MQO routes.
They now all funnel into :class:`PlanNode`, a plain tree of
``label [key=value ...]`` lines with optional verbatim detail lines
(SQL text, EXPLAIN QUERY PLAN rows), rendered by :func:`render` with
two-space indentation per level. ``--analyze`` reuses the same shapes
with rows/batches/time annotations filled in, so the two modes read
identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PlanNode:
    """One rendered plan line plus its children.

    ``annotations`` become the bracketed ``[key=value ...]`` suffix;
    ``details`` are verbatim lines (e.g. SQL) indented under the node;
    ``header`` nodes (query titles) get a trailing colon, matching the
    CLI's historical ``q2 [engine=hash ...]:`` framing.
    """

    label: str
    annotations: dict = field(default_factory=dict)
    children: list = field(default_factory=list)
    details: tuple = ()
    header: bool = False

    def line(self) -> str:
        text = self.label
        if self.annotations:
            rendered = " ".join(
                f"{key}={format_value(value)}"
                for key, value in self.annotations.items()
            )
            text = f"{text} [{rendered}]"
        if self.header:
            text += ":"
        return text

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


def format_value(value) -> str:
    """Annotation values: floats trimmed, everything else ``str()``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN — an estimator should never produce one
            return "nan"
        if value >= 100 or value == int(value):
            return str(int(value))
        return f"{value:.2f}"
    return str(value)


def render(node: PlanNode, indent: int = 0, step: int = 2) -> str:
    """The node and its subtree as indented text (no trailing newline)."""
    pad = " " * indent
    lines = [pad + node.line()]
    for detail in node.details:
        lines.append(" " * (indent + step) + detail)
    for child in node.children:
        lines.append(render(child, indent + step, step))
    return "\n".join(lines)


def operator_tree(op, annotate=None) -> PlanNode:
    """A :class:`PlanNode` mirror of a physical operator tree.

    ``annotate`` maps an operator to its annotation dict — ``--analyze``
    passes the probe-stats lookup; plain ``--explain`` passes nothing
    and reproduces ``Operator.explain()`` labels line for line.
    """
    return PlanNode(
        op._describe(),
        dict(annotate(op)) if annotate is not None else {},
        [operator_tree(child, annotate) for child in op._children()],
    )


def sql_tree(compiled, annotations=None, plan_rows=()) -> PlanNode:
    """A pushed-down statement as a plan node.

    ``plan_rows`` are SQLite ``EXPLAIN QUERY PLAN`` ``(id, parent,
    detail)`` rows; they reconstruct the backend's own operator tree as
    children, so the pushdown route renders with per-operator structure
    just like the interpreted one.
    """
    node = PlanNode(
        "SQLPushdown",
        dict(annotations or {}),
        details=tuple(compiled.describe().splitlines()),
    )
    by_id: dict[int, PlanNode] = {}
    for row_id, parent, detail in plan_rows:
        child = PlanNode(str(detail))
        by_id[row_id] = child
        (by_id.get(parent) or node).children.append(child)
    return node


def query_header(name: str, **annotations) -> PlanNode:
    """The ``qN [engine=... pushdown=...]:`` framing line."""
    return PlanNode(name, annotations, header=True)
