"""EXPLAIN ANALYZE: instrumented execution with per-operator accounting.

:func:`analyze_query` (and :func:`analyze_union` / :func:`analyze_batch`
for the MQO routes) executes a query for real while every physical
operator records rows-out, batches and inclusive wall-clock time
through a :class:`_Probe` wrapper, then renders the annotated plan tree
through the shared :mod:`repro.obs.render` renderer — the same shapes
``--explain`` prints, with ``rows=/batches=/time_ms=`` and
actual-vs-estimated cardinalities (``est_rows=``) filled in per join
step.

Probes are only ever inserted into **freshly compiled** trees: passing
an explicit statistics provider to :func:`~repro.engine.planner.plan_query`
bypasses the store's prepared-plan cache (the estimator reads the same
catalog, so the plan is identical), which keeps the cached, shared
plans untouched. On the SQL pushdown route the backend's own
``EXPLAIN QUERY PLAN`` tree is attached, and the interpreted equivalent
runs instrumented alongside it so per-join actuals exist on SQLite too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.engine import mqo
from repro.engine.operators import (
    DEFAULT_BATCH_SIZE,
    Empty,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    MergeJoin,
    Operator,
    PartitionedHashJoin,
)
from repro.engine.planner import (
    SQL_PUSHDOWN,
    _check_batch_size,
    _estimator,
    choose_engine,
    plan_pushdown,
    plan_query,
)
from repro.obs.render import PlanNode, operator_tree, query_header, render, sql_tree
from repro.stats.provider import CatalogStatistics

_CHILD_ATTRS = ("child", "left", "right")
_JOINS = (HashJoin, PartitionedHashJoin, MergeJoin, IndexNestedLoopJoin)


@dataclass
class OpStats:
    """What one probe saw: output rows, batches, inclusive wall time."""

    rows_out: int = 0
    batches: int = 0
    wall_ms: float = 0.0
    #: Estimator prediction for this operator's output, when one maps.
    est_rows: float | None = None


class _Probe(Operator):
    """Transparent operator wrapper recording its subtree's output.

    Preserves ``schema``/``sorted_on`` and delegates the prebuilt-index
    fast paths (``hash_index``/``hash_tails``), so wrapped plans execute
    the exact code paths unwrapped ones do; the recorded wall time is
    inclusive of the subtree below (children are probed too, so
    per-operator self-time is the difference).
    """

    def __init__(self, inner: Operator) -> None:
        self.inner = inner
        self.schema = inner.schema
        self.sorted_on = inner.sorted_on
        self.stats = OpStats()

    def __iter__(self):
        stats = self.stats
        iterator = iter(self.inner)
        while True:
            started = time.perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                stats.wall_ms += (time.perf_counter() - started) * 1000.0
                return
            stats.wall_ms += (time.perf_counter() - started) * 1000.0
            stats.rows_out += 1
            yield row

    def batches(self, size: int = DEFAULT_BATCH_SIZE):
        stats = self.stats
        iterator = self.inner.batches(size)
        while True:
            started = time.perf_counter()
            try:
                batch = next(iterator)
            except StopIteration:
                stats.wall_ms += (time.perf_counter() - started) * 1000.0
                return
            stats.wall_ms += (time.perf_counter() - started) * 1000.0
            stats.batches += 1
            stats.rows_out += len(batch)
            yield batch

    def column_batches(self, size=DEFAULT_BATCH_SIZE):
        stats = self.stats
        iterator = self.inner.column_batches(size)
        while True:
            started = time.perf_counter()
            try:
                cb = next(iterator)
            except StopIteration:
                stats.wall_ms += (time.perf_counter() - started) * 1000.0
                return
            stats.wall_ms += (time.perf_counter() - started) * 1000.0
            stats.batches += 1
            stats.rows_out += len(cb)
            yield cb

    def hash_index(self, positions):
        started = time.perf_counter()
        table = self.inner.hash_index(positions)
        self._record_prebuilt(table, started)
        return table

    def hash_tails(self, positions, keep):
        started = time.perf_counter()
        table = self.inner.hash_tails(positions, keep)
        self._record_prebuilt(table, started)
        return table

    def _record_prebuilt(self, table, started: float) -> None:
        """A consumer took our prebuilt index instead of pulling rows."""
        self.stats.wall_ms += (time.perf_counter() - started) * 1000.0
        if table is not None:
            self.stats.rows_out += sum(len(bucket) for bucket in table.values())

    def _describe(self) -> str:
        return self.inner._describe()

    def _children(self):
        return self.inner._children()


def instrument(root: Operator) -> _Probe:
    """Wrap every operator of a (freshly compiled) tree in a probe.

    Mutates the tree's child links in place — never call this on a plan
    that came out of the prepared-plan cache.
    """
    for attr in _CHILD_ATTRS:
        child = getattr(root, attr, None)
        if isinstance(child, Operator) and not isinstance(child, _Probe):
            setattr(root, attr, instrument(child))
    return _Probe(root)


def _annotate_estimates(root: _Probe, estimator, query) -> None:
    """Attach estimator predictions along the plan's left-deep spine.

    ``prefix_cardinalities`` prices the output of every join step in
    the estimator's order — the same numbers the engine choice and the
    parallel-partition threshold were decided from — so ``est_rows=``
    next to ``rows=`` is exactly the actual-vs-estimated comparison
    that debugs the estimator.
    """
    atoms = query.atoms
    if not atoms:
        return
    order = estimator.join_order(atoms)
    prefix = estimator.prefix_cardinalities(atoms, order)
    node, step = root, len(order) - 1
    while isinstance(node, _Probe) and step >= 0:
        inner = node.inner
        if isinstance(inner, _JOINS):
            node.stats.est_rows = prefix[step]
            right = getattr(inner, "right", None)
            if isinstance(right, _Probe) and isinstance(right.inner, IndexScan):
                right.stats.est_rows = float(
                    estimator.atom_cardinality(right.inner.atom)
                )
            step -= 1
            node = getattr(inner, "child", None) or getattr(inner, "left", None)
        elif isinstance(inner, IndexScan):
            node.stats.est_rows = prefix[0]
            return
        elif isinstance(inner, Empty):
            node.stats.est_rows = 0.0
            return
        else:  # Selection/Projection/Relabel: pass-through, no estimate
            node = getattr(inner, "child", None)


def _annotations(probe: _Probe) -> dict:
    stats = probe.stats
    annotations: dict = {}
    children = [c for c in probe._children() if isinstance(c, _Probe)]
    if children:
        annotations["rows_in"] = sum(c.stats.rows_out for c in children)
    annotations["rows"] = stats.rows_out
    annotations["batches"] = stats.batches
    annotations["time_ms"] = round(stats.wall_ms, 2)
    if stats.est_rows is not None:
        annotations["est_rows"] = round(stats.est_rows, 1)
    hint = getattr(probe.inner, "preferred_batch_size", None)
    if hint is not None:
        annotations["batch_hint"] = hint
    morsels = getattr(probe.inner, "morsel_workers", 0)
    if morsels > 1:
        annotations["morsel_workers"] = morsels
    return annotations


def _annotate(node) -> dict:
    return _annotations(node) if isinstance(node, _Probe) else {}


def _probe_stats(root: _Probe) -> list[tuple[str, OpStats]]:
    out = [(root._describe(), root.stats)]
    for child in root._children():
        if isinstance(child, _Probe):
            out.extend(_probe_stats(child))
    return out


@dataclass
class AnalyzeReport:
    """One analyzed execution: the annotated tree plus its actuals."""

    tree: PlanNode
    answers: set
    #: Distinct encoded head images (== answer count; decode is 1:1).
    distinct_images: int
    #: The plan root's total output rows (pre head-projection).
    root_rows: int
    wall_ms: float
    route: str
    operators: list = field(default_factory=list)

    @property
    def answer_count(self) -> int:
        return len(self.answers)

    def text(self, indent: int = 0) -> str:
        return render(self.tree, indent)


def _run_instrumented(query, store, probe: _Probe, batch_size: int):
    """Execute a probed tree through the head-projection path.

    Mirrors ``run_query``'s batched route: deduplicate encoded head
    images, decode each distinct image once — so the analyzed answer
    set equals ``run_query``'s on every plan.
    """
    started = time.perf_counter()
    images = mqo._images_from_root(query, probe, batch_size)
    answers = mqo.decode_images(images, store)
    wall_ms = (time.perf_counter() - started) * 1000.0
    return images, answers, wall_ms


def _interpreted_report(
    query, store, engine: str, batch_size: int, workers: int
) -> AnalyzeReport:
    resolved = (
        choose_engine(query, store, pushdown=False)
        if engine == "auto"
        else engine
    )
    # An explicit statistics provider bypasses the prepared-plan cache:
    # same catalog, same plan, but a private tree we may mutate.
    root = plan_query(
        query,
        store,
        engine=engine,
        statistics=CatalogStatistics(store.stats),
        workers=workers,
    )
    probe = instrument(root)
    _annotate_estimates(probe, _estimator(store, None), query)
    images, answers, wall_ms = _run_instrumented(query, store, probe, batch_size)
    header = query_header(
        query.name, engine=resolved, pushdown=False,
        rows=len(answers), time_ms=round(wall_ms, 2),
    )
    header.children.append(operator_tree(probe, _annotate))
    return AnalyzeReport(
        tree=header,
        answers=answers,
        distinct_images=len(images),
        root_rows=probe.stats.rows_out,
        wall_ms=wall_ms,
        route="interpreted",
        operators=_probe_stats(probe),
    )


def _query_plan_rows(compiled, store) -> list[tuple[int, int, str]]:
    """SQLite's own ``EXPLAIN QUERY PLAN`` tree for a compiled statement."""
    if compiled.sql is None:
        return []
    try:
        rows = store.backend.execute_sql_plan(
            f"EXPLAIN QUERY PLAN {compiled.sql}", compiled.params
        )
    except Exception:  # pragma: no cover - EQP support varies by build
        return []
    return [(row[0], row[1], row[3]) for row in rows]


def analyze_query(
    query,
    store,
    engine: str = "auto",
    batch_size: int | None = DEFAULT_BATCH_SIZE,
    workers: int = 1,
    pushdown: bool = True,
) -> AnalyzeReport:
    """EXPLAIN ANALYZE one query: execute it instrumented, return the
    annotated plan tree plus the actual answers.

    Routes exactly like :func:`~repro.engine.planner.run_query`: on a
    SQL-capable backend under ``engine="auto"`` the pushed-down
    statement executes (timed, with the backend's ``EXPLAIN QUERY
    PLAN`` attached) *and* the interpreted equivalent runs instrumented
    beneath it, so per-operator actuals and estimator comparisons exist
    on every backend. ``parity=yes`` on the header confirms both routes
    agreed on the answer set.
    """
    batch_size = _check_batch_size(batch_size) or DEFAULT_BATCH_SIZE
    compiled = None
    if pushdown and engine == "auto":
        compiled = plan_pushdown(query, store, workers)
    if compiled is None:
        return _interpreted_report(query, store, engine, batch_size, workers)
    started = time.perf_counter()
    answers = compiled.execute(store)
    wall_ms = (time.perf_counter() - started) * 1000.0
    estimator = _estimator(store, None)
    atoms = query.atoms
    est_rows = None
    if atoms:
        order = estimator.join_order(atoms)
        est_rows = round(estimator.prefix_cardinalities(atoms, order)[-1], 1)
    interpreted = _interpreted_report(query, store, engine, batch_size, workers)
    sql_annotations = {"rows": len(answers), "time_ms": round(wall_ms, 2)}
    if est_rows is not None:
        sql_annotations["est_rows"] = est_rows
    header = query_header(
        query.name,
        engine=SQL_PUSHDOWN,
        pushdown=True,
        rows=len(answers),
        time_ms=round(wall_ms, 2),
        parity=answers == interpreted.answers,
    )
    header.children.append(
        sql_tree(compiled, sql_annotations, _query_plan_rows(compiled, store))
    )
    equivalent = PlanNode("interpreted equivalent", header=True)
    equivalent.children.extend(interpreted.tree.children)
    header.children.append(equivalent)
    return AnalyzeReport(
        tree=header,
        answers=answers,
        distinct_images=len(answers),
        root_rows=interpreted.root_rows,
        wall_ms=wall_ms,
        route=SQL_PUSHDOWN,
        operators=interpreted.operators,
    )


def _analyze_dag(queries, store, batch_size: int, workers: int):
    """Instrumented shared-DAG execution over distinct queries.

    Compiles a **fresh** (uncached) batch of operator trees, probes
    them, and replays :func:`repro.engine.mqo._batch_images`'s
    materialization order: shared nodes shortest-first, then consumers
    over the longest applicable node. Returns the per-node/per-branch
    plan nodes, one encoded image set per query, and the probe stats.
    """
    batch = mqo.plan_batch(queries, store)
    compiled = mqo._compile_batch(batch, store)
    estimator = _estimator(store, None)
    node_probes: list[_Probe] = []
    for node in compiled.nodes:
        probe = instrument(node.root)
        node.root = probe
        node_probes.append(probe)
    for consumer in compiled.consumers:
        if consumer.root is not None:
            consumer.root = instrument(consumer.root)

    children: list[PlanNode] = []
    operators: list[tuple[str, OpStats]] = []
    materialized: dict[tuple, list] = {}
    for node, shared, probe in zip(compiled.nodes, batch.nodes, node_probes):
        if node.leaf is not None:
            node.leaf._rows = materialized[node.leaf_key]
        started = time.perf_counter()
        rows = probe.rows_batched(batch_size)
        node_ms = (time.perf_counter() - started) * 1000.0
        materialized[node.key] = rows
        title = query_header(
            f"shared node[{shared.length} atoms]",
            consumers=shared.consumers,
            rows=len(rows),
            est_rows=round(shared.est_rows, 1),
            time_ms=round(node_ms, 2),
        )
        title.children.append(operator_tree(probe, _annotate))
        children.append(title)
        operators.extend(_probe_stats(probe))

    image_sets: list[set] = []
    for consumer, qplan in zip(compiled.consumers, batch.plans):
        query = consumer.query
        if consumer.root is None:
            root = instrument(
                plan_query(
                    query,
                    store,
                    engine="auto",
                    statistics=CatalogStatistics(store.stats),
                    workers=workers,
                )
            )
            _annotate_estimates(root, estimator, query)
            shared_with = "none"
        else:
            consumer.leaf._rows = materialized[consumer.leaf_key]
            root = consumer.root
            shared_with = f"{len(consumer.leaf.schema)}-col node"
        started = time.perf_counter()
        images = mqo._images_from_root(query, root, batch_size)
        branch_ms = (time.perf_counter() - started) * 1000.0
        image_sets.append(images)
        title = query_header(
            f"branch {query.name}",
            shared=shared_with,
            images=len(images),
            time_ms=round(branch_ms, 2),
        )
        title.children.append(operator_tree(root, _annotate))
        children.append(title)
        operators.extend(_probe_stats(root))
    for node in compiled.nodes:
        if node.leaf is not None:
            node.leaf._rows = ()
    for consumer in compiled.consumers:
        if consumer.leaf is not None:
            consumer.leaf._rows = ()
    return batch, children, image_sets, operators


def analyze_union(
    disjuncts,
    store,
    batch_size: int | None = DEFAULT_BATCH_SIZE,
    workers: int = 1,
) -> AnalyzeReport:
    """EXPLAIN ANALYZE a union: MQO shared-node fan-out accounting.

    Always executes the instrumented shared DAG (that is the accounting
    being explained); when the store's real route is the compound
    ``SELECT ... UNION`` statement, that statement also executes, timed
    and parity-checked against the DAG's answers.
    """
    batch_size = _check_batch_size(batch_size) or DEFAULT_BATCH_SIZE
    distinct, compound, _singles = mqo._union_route(
        tuple(disjuncts), store, workers
    )
    batch, children, image_sets, operators = _analyze_dag(
        distinct, store, batch_size, workers
    )
    images: set = set()
    for image_set in image_sets:
        images |= image_set
    answers = mqo.decode_images(images, store)
    nodes, consuming = batch.sharing_summary()
    route = "interpreted-dag"
    if compound is not None:
        route = "compound-statement"
    elif getattr(store.backend, "supports_sql_plans", False):
        route = "per-branch-statements"
    header = query_header(
        "union",
        disjuncts=len(tuple(disjuncts)),
        distinct=len(distinct),
        shared_nodes=nodes,
        consuming=consuming,
        route=route,
        rows=len(answers),
    )
    if compound is not None:
        started = time.perf_counter()
        compound_answers = compound.execute(store)
        compound_ms = (time.perf_counter() - started) * 1000.0
        header.children.append(
            sql_tree(
                compound,
                {
                    "rows": len(compound_answers),
                    "time_ms": round(compound_ms, 2),
                    "parity": compound_answers == answers,
                },
            )
        )
    header.children.extend(children)
    return AnalyzeReport(
        tree=header,
        answers=answers,
        distinct_images=len(images),
        root_rows=sum(len(image_set) for image_set in image_sets),
        wall_ms=sum(stats.wall_ms for _, stats in operators),
        route=route,
        operators=operators,
    )


def analyze_batch(
    queries,
    store,
    batch_size: int | None = DEFAULT_BATCH_SIZE,
    workers: int = 1,
) -> tuple[PlanNode, list[set]]:
    """EXPLAIN ANALYZE a workload batch: the shared-subplan DAG across
    queries, with per-query answer sets (``run_query_batch``'s route).

    Returns the annotated tree and one decoded answer set per distinct
    query, in batch order.
    """
    batch_size = _check_batch_size(batch_size) or DEFAULT_BATCH_SIZE
    distinct = mqo._dedupe(queries)
    batch, children, image_sets, _operators = _analyze_dag(
        distinct, store, batch_size, workers
    )
    answers = [mqo.decode_images(images, store) for images in image_sets]
    nodes, consuming = batch.sharing_summary()
    header = query_header(
        "workload batch",
        queries=len(distinct),
        shared_nodes=nodes,
        consuming=consuming,
    )
    header.children.extend(children)
    return header, answers
