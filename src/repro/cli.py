"""Command-line interface: ``python -m repro``.

Runs the full pipeline from files, the way a storage-tuning wizard would
(the paper's companion demo RDFViewS was exactly that): load an
N-Triples dataset and a datalog-style workload, search for views, and
print the recommended views, the rewritings, and the cost summary.

Example::

    python -m repro --data catalog.nt --queries workload.dq \
        --strategy dfs --entailment post_reformulation --time-limit 10

A second verb, ``serve``, turns a saved store snapshot into a
multi-process query server (see ``docs/server.md``)::

    python -m repro serve --db kb.snapshot --workers 4

prints the socket address + auth key and serves until interrupted;
with ``--replay workload.dq`` it instead replays the workload through
concurrent clients against itself, verifies every served answer
against single-process evaluation, and reports sustained QPS with
latency percentiles (``--json`` writes the report).

The workload file holds one query per line (continuations allowed), in
the syntax of :mod:`repro.query.parser`::

    q1(X, Z) :- t(X, <http://e/hasPainted>, <http://e/starry>), t(X, <http://e/parentOf>, Z)

With ``--schema`` pointing at an N-Triples file of RDFS statements (or
when the data file itself contains ``rdfs:subClassOf`` & co.), the
entailment modes of Section 4.3 become available.

Status chatter routes through stdlib :mod:`logging` (logger ``repro``,
INFO to stdout, WARNING and above to stderr): ``-q`` silences it,
``--log-level debug`` raises it, and ``--slow-query-ms`` makes the
engine warn on every query slower than the threshold. Observability
flags: ``--explain`` prints physical plans, ``--analyze`` executes them
instrumented (per-operator rows/batches/time and actual-vs-estimated
cardinalities), ``--metrics-json`` dumps the metrics registry and
``--trace`` writes structured tracing spans as JSONL.
"""

from __future__ import annotations

import argparse
import json
import logging
import sqlite3
import sys
import time
from pathlib import Path

from repro.engine import (
    ADAPTIVE_BATCH_SIZE,
    DEFAULT_BATCH_SIZE,
    ENGINES,
    PartitionedHashJoin,
    choose_engine,
    describe_union_sharing,
    plan_batch,
    plan_pushdown,
    plan_query,
)
from repro.obs import metrics, tracing
from repro.obs.analyze import analyze_batch, analyze_query, analyze_union
from repro.obs.render import PlanNode, operator_tree, query_header, render, sql_tree
from repro.query.parser import parse_queries
from repro.rdf.ntriples import NTriplesParseError, parse_ntriples
from repro.rdf.schema import RDFSchema
from repro.rdf.store import TripleStore
from repro.selection.recommender import ENTAILMENT_MODES, ViewSelector
from repro.selection.search import STRATEGY_FACTORIES, SearchBudget
from repro.storage import BACKENDS, SnapshotError, SqliteBackend

_LOG = logging.getLogger("repro.cli")

_LOG_LEVELS = ("debug", "info", "warning", "error")


def _setup_logging(level_name: str) -> None:
    """Fresh handlers on the ``repro`` logger for this ``main()`` run.

    INFO and below go to stdout (they are the CLI's status narration),
    WARNING and above to stderr — so piping stdout captures results
    while slow-query warnings and errors still reach the terminal.
    Handlers are replaced, not appended: tests call ``main()`` many
    times in one process.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level_name.upper()))
    logger.propagate = False
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    formatter = logging.Formatter("%(message)s")
    out = logging.StreamHandler(sys.stdout)
    out.addFilter(lambda record: record.levelno < logging.WARNING)
    out.setFormatter(formatter)
    err = logging.StreamHandler(sys.stderr)
    err.setLevel(logging.WARNING)
    err.setFormatter(formatter)
    logger.addHandler(out)
    logger.addHandler(err)


def _non_negative_int(value: str) -> int:
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {value}"
        )
    return number


def _batch_size_arg(value: str) -> int | str:
    """``--batch-size`` values: a non-negative row count or ``adaptive``
    (planner-derived per-operator sizes)."""
    if value == ADAPTIVE_BATCH_SIZE:
        return ADAPTIVE_BATCH_SIZE
    try:
        return _non_negative_int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer or 'adaptive', got {value}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Recommend materialized views for an RDF query workload "
        "(View Selection in Semantic Web Databases, VLDB 2011).",
    )
    parser.add_argument("--data", type=Path, default=None,
                        help="N-Triples file with the RDF data (optional when "
                        "--db points at a saved store snapshot)")
    parser.add_argument("--backend", choices=BACKENDS, default="memory",
                        help="storage backend holding the triple table "
                        "(default: memory; sqlite keeps it on disk)")
    parser.add_argument("--db", type=Path, default=None,
                        help="store snapshot file: with --data the loaded "
                        "store is saved here; without --data the snapshot is "
                        "opened instead of parsing N-Triples (with --backend "
                        "sqlite the file is served in place, no load)")
    parser.add_argument("--queries", required=True, type=Path,
                        help="workload file, one datalog-style query per line")
    parser.add_argument("--schema", type=Path, default=None,
                        help="N-Triples file with RDFS statements "
                        "(default: extracted from --data)")
    parser.add_argument("--strategy", choices=sorted(STRATEGY_FACTORIES),
                        default="dfs")
    parser.add_argument("--entailment", choices=ENTAILMENT_MODES, default="none")
    parser.add_argument("--time-limit", type=float, default=30.0,
                        help="stoptime budget in seconds (default 30); "
                        "alias of --search-budget-seconds")
    parser.add_argument("--search-budget-seconds", type=float, default=None,
                        metavar="SECONDS",
                        help="stoptime budget for the view-selection search "
                        "(overrides --time-limit)")
    parser.add_argument("--search-budget-states", type=_non_negative_int,
                        default=None, metavar="STATES",
                        help="bound the number of states the search may "
                        "create (a memory stand-in; default: unlimited)")
    parser.add_argument("--namespace", default="http://example.org/",
                        help="default namespace for bare query constants")
    parser.add_argument("--show-answers", action="store_true",
                        help="materialize the views and print each query's "
                        "answer count")
    parser.add_argument("--engine", choices=ENGINES, default="auto",
                        help="join strategy of the execution engine used to "
                        "materialize views and answer queries "
                        "(default: auto = cost-based per query)")
    parser.add_argument("--explain", action="store_true",
                        help="print each workload query's physical plan on "
                        "the store (engine chosen by the cost-based "
                        "selection, batch size, worker count, parallel "
                        "partitioned join, whole-plan SQL pushdown with the "
                        "generated SQL on SQL-capable backends), the "
                        "multi-query optimizer's shared-subplan counts per "
                        "reformulation union (with --schema) and across the "
                        "workload batch, plus the search's Figure-5 state "
                        "accounting after the recommendation")
    parser.add_argument("--analyze", action="store_true",
                        help="EXPLAIN ANALYZE: execute each workload query "
                        "instrumented and print the annotated plan tree — "
                        "per-operator rows in/out, batches, wall time, and "
                        "actual-vs-estimated cardinalities per join step; "
                        "covers the SQL pushdown route (with the backend's "
                        "EXPLAIN QUERY PLAN and an answer-parity check), the "
                        "MQO shared-node fan-out per reformulation union "
                        "(with --schema) and the workload batch")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for the parallel partitioned "
                        "hash join and for the search's parallel frontier "
                        "pricing (default 1 = serial; only join plans above "
                        "the cost-based cardinality threshold partition, "
                        "and only large search frontiers fan out)")
    parser.add_argument("--batch-size", type=_batch_size_arg,
                        default=DEFAULT_BATCH_SIZE,
                        metavar="ROWS",
                        help="rows per operator batch in the execution "
                        f"engine (default {DEFAULT_BATCH_SIZE}; 0 selects "
                        "the tuple-at-a-time path; 'adaptive' lets the "
                        "planner size each operator's batches from its "
                        "estimated cardinality)")
    parser.add_argument("--log-level", choices=_LOG_LEVELS, default="info",
                        help="verbosity of the status narration on the "
                        "'repro' logger (default info)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress status narration (same as "
                        "--log-level warning); results still print")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        metavar="MS",
                        help="warn (on stderr) about every engine query "
                        "slower than this many milliseconds")
    parser.add_argument("--metrics-json", type=Path, default=None,
                        metavar="PATH",
                        help="enable the metrics registry and write its "
                        "JSON snapshot to PATH on exit")
    parser.add_argument("--trace", type=Path, default=None, metavar="PATH",
                        help="write structured tracing spans (JSON lines) "
                        "to PATH")
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve a saved store snapshot to concurrent clients "
        "from a pool of worker processes (read-only; zero writes to the "
        "snapshot).",
    )
    parser.add_argument("--db", required=True, type=Path,
                        help="store snapshot file to serve (written by "
                        "TripleStore.save or python -m repro --db)")
    parser.add_argument("--backend", choices=("sqlite", "memory"),
                        default="sqlite",
                        help="how each worker opens the snapshot: sqlite "
                        "serves the file in place through a read-only "
                        "connection (default); memory bulk-loads it per "
                        "worker")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="worker processes answering queries "
                        "(default 2); each holds its own connection and "
                        "prepared-plan cache")
    parser.add_argument("--window-ms", type=float, default=2.0, metavar="MS",
                        help="batching window: queries arriving within MS "
                        "of each other execute as one shared batch, so "
                        "multi-query optimization spans clients "
                        "(default 2.0; 0 disables cross-request batching)")
    parser.add_argument("--batch-size", type=_batch_size_arg,
                        default=DEFAULT_BATCH_SIZE, metavar="ROWS",
                        help="rows per operator batch inside each worker "
                        f"(default {DEFAULT_BATCH_SIZE}; 0 selects the "
                        "tuple-at-a-time path; 'adaptive' sizes batches "
                        "per operator)")
    parser.add_argument("--engine", choices=ENGINES, default="auto",
                        help="join strategy inside each worker "
                        "(default: auto)")
    parser.add_argument("--replay", type=Path, default=None, metavar="PATH",
                        help="instead of serving forever: replay this "
                        "workload file through concurrent clients, verify "
                        "answers against single-process evaluation, report "
                        "QPS and latency percentiles, then exit")
    parser.add_argument("--clients", type=int, default=4, metavar="N",
                        help="concurrent client connections during "
                        "--replay (default 4)")
    parser.add_argument("--repeat", type=int, default=4, metavar="N",
                        help="times each workload query appears in the "
                        "replay schedule (default 4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="shuffle seed of the replay schedule")
    parser.add_argument("--namespace", default="http://example.org/",
                        help="default namespace for bare query constants "
                        "in the replay workload")
    parser.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="write the replay report (QPS, percentiles, "
                        "merged server metrics) as JSON to PATH")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the answer verification against "
                        "single-process evaluation during --replay")
    parser.add_argument("--log-level", choices=_LOG_LEVELS, default="info")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress status narration")
    return parser


def _run_serve(args) -> int:
    from repro.engine import run_query
    from repro.query.parser import parse_queries as _parse_workload
    from repro.server import Server, ServerConfig, ServerError, replay
    from repro.workload.generator import replay_schedule

    if not args.db.is_file():
        _LOG.error(f"snapshot {args.db} does not exist")
        return 2
    config = ServerConfig(
        workers=args.workers,
        backend=args.backend,
        window_ms=args.window_ms,
        batch_size=None if args.batch_size == 0 else args.batch_size,
        engine=args.engine,
    )
    try:
        server = Server(args.db, config)
    except ServerError as exc:
        _LOG.error(str(exc))
        return 2
    with server:
        _LOG.info(
            f"serving {args.db} [{args.backend} backend, "
            f"{args.workers} workers, window {args.window_ms}ms] "
            f"pids={server.worker_pids()}"
        )
        if args.replay is None:
            # Foreground mode: announce the connection coordinates and
            # serve until interrupted.
            print(f"address {server.address}")
            print(f"authkey {server.authkey.hex()}")
            sys.stdout.flush()
            try:
                while True:
                    time.sleep(0.5)
            except KeyboardInterrupt:
                _LOG.info("interrupted; shutting down")
            return 0
        queries = _parse_workload(
            args.replay.read_text(), namespace=args.namespace
        )
        if not queries:
            _LOG.error("the replay workload contains no queries")
            return 2
        schedule = replay_schedule(
            queries, repeats=max(1, args.repeat), seed=args.seed
        )
        reference = None
        if not args.no_verify:
            reference_store = TripleStore.open(
                args.db, backend=args.backend,
                read_only=True if args.backend == "sqlite" else None,
            )
            try:
                reference = {
                    str(query): frozenset(
                        run_query(query, reference_store, engine=args.engine)
                    )
                    for query in queries
                }
            finally:
                reference_store.close()
        report = replay(
            server.address, server.authkey, schedule,
            clients=max(1, args.clients), reference=reference,
        )
        summary = report.summary()
        metrics_snapshot = server.metrics_snapshot()
    verified = "verified" if reference is not None else "unverified"
    print(f"replayed {summary['queries']} queries "
          f"({len(queries)} distinct x {max(1, args.repeat)}) "
          f"over {summary['clients']} clients [{verified}]")
    print(f"  qps     {summary['qps']:.1f}")
    latency = summary["latency_ms"]
    print(f"  latency p50 {latency['p50']:.2f}ms  "
          f"p95 {latency['p95']:.2f}ms  p99 {latency['p99']:.2f}ms")
    print(f"  errors {summary['errors']}  mismatches {summary['mismatches']}")
    if args.json is not None:
        payload = {
            "snapshot": str(args.db),
            "backend": args.backend,
            "workers": args.workers,
            "window_ms": args.window_ms,
            "verified": reference is not None,
            "replay": summary,
            "server_metrics": metrics_snapshot,
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        _LOG.info(f"wrote replay report to {args.json}")
    if report.errors or report.mismatches:
        for message in report.error_messages[:5]:
            _LOG.error(f"replay error: {message}")
        return 1
    return 0


def _uses_partitioned_join(root) -> bool:
    """True when the compiled plan contains a PartitionedHashJoin."""
    if isinstance(root, PartitionedHashJoin):
        return True
    return any(_uses_partitioned_join(child) for child in root._children())


def _load_store(args) -> TripleStore | None:
    """Build the store from --data / --db; None (and a message) on misuse."""
    if args.data is None:
        if args.db is None or not args.db.is_file():
            _LOG.error(
                "either --data or --db pointing at an existing snapshot "
                "is required"
            )
            return None
        try:
            store = TripleStore.open(args.db, backend=args.backend)
        except SnapshotError as exc:
            _LOG.error(f"cannot open {args.db}: {exc}")
            return None
        _LOG.info(
            f"opened {len(store)} triples from {args.db} "
            f"[{store.backend_name} backend]"
        )
        return store
    if args.db is not None and args.db.exists():
        _LOG.error(
            f"refusing to overwrite existing {args.db}; "
            "drop --data to open it, or pick a fresh --db path"
        )
        return None
    if args.backend == "sqlite":
        try:
            store = TripleStore(
                backend=SqliteBackend(args.db) if args.db is not None else "sqlite"
            )
        except sqlite3.Error as exc:
            _LOG.error(f"cannot create database {args.db}: {exc}")
            return None
    else:
        store = TripleStore()
    try:
        store.add_all(parse_ntriples(args.data.read_text()))
    except (OSError, NTriplesParseError) as exc:
        _LOG.error(f"cannot load {args.data}: {exc}")
        store.backend.close()
        if args.db is not None:
            # Don't leave a half-loaded stub blocking the next attempt.
            args.db.unlink(missing_ok=True)
        return None
    _LOG.info(
        f"loaded {len(store)} triples from {args.data} "
        f"[{store.backend_name} backend]"
    )
    if args.db is not None:
        store.save(args.db)
        _LOG.info(f"saved store snapshot to {args.db}")
    return store


def _plan_annotations(args):
    """Static per-operator annotations for ``--explain`` trees.

    With ``--batch-size adaptive`` every operator shows the batch size
    the planner derived from its estimated cardinality
    (``batch_hint=``); with ``--workers N>1`` scans running
    morsel-parallel show ``morsel_workers=``. Plain invocations return
    None so the historical unannotated rendering is unchanged.
    """
    adaptive = args.batch_size == ADAPTIVE_BATCH_SIZE
    if not adaptive and args.workers <= 1:
        return None

    def annotate(op) -> dict:
        notes: dict = {}
        if adaptive:
            hint = getattr(op, "preferred_batch_size", None)
            if hint is not None:
                notes["batch_hint"] = hint
        morsels = getattr(op, "morsel_workers", 0)
        if morsels > 1:
            notes["morsel_workers"] = morsels
        return notes

    return annotate


def _explain_plan(query, store, args) -> PlanNode:
    """The ``--explain`` plan tree for one query (no execution)."""
    # The pushdown route only runs under engine=auto on a batch
    # path; --batch-size 0 (tuple-at-a-time) stays interpreted.
    pushdown_route = args.engine == "auto" and args.batch_size != 0
    chosen = (
        choose_engine(query, store, pushdown=pushdown_route)
        if args.engine == "auto"
        else args.engine
    )
    compiled = (
        plan_pushdown(query, store, args.workers) if pushdown_route else None
    )
    if compiled is not None:
        header = query_header(query.name, engine=chosen, pushdown=True)
        header.children.append(sql_tree(compiled))
        return header
    root = plan_query(query, store, engine=args.engine, workers=args.workers)
    header = query_header(
        query.name,
        engine=chosen,
        **{"partitioned-join": _uses_partitioned_join(root)},
        pushdown=False,
    )
    header.children.append(operator_tree(root, _plan_annotations(args)))
    return header


def _print_explain(queries, store, schema, args) -> None:
    batch = "tuple-at-a-time" if args.batch_size == 0 else str(args.batch_size)
    title = query_header(
        "physical plans on the store",
        **{"batch-size": batch, "workers": args.workers},
    )
    print(title.line())
    for query in queries:
        print(render(_explain_plan(query, store, args), indent=2))
    # Shared-subplan accounting (multi-query optimization): per
    # reformulation union when a schema is present, and across the
    # workload batch. Both only apply on the batched auto route.
    if args.engine == "auto" and args.batch_size != 0:
        if schema is not None:
            from repro.reformulation.reformulate import reformulate

            sharing = PlanNode(
                "shared subplans per reformulation union", header=True
            )
            for query in queries:
                union = reformulate(query, schema)
                line = describe_union_sharing(union.disjuncts, store)
                sharing.children.append(PlanNode(f"{query.name}: {line}"))
            print(render(sharing, indent=2))
        if len(queries) > 1:
            nodes, consuming = plan_batch(queries, store).sharing_summary()
            print(f"  workload batch: {nodes} shared subplans "
                  f"covering {consuming} of {len(queries)} queries")
    print()


def _print_analyze(queries, store, schema, args) -> None:
    batch = "tuple-at-a-time" if args.batch_size == 0 else str(args.batch_size)
    batch_size = None if args.batch_size == 0 else args.batch_size
    title = query_header(
        "explain analyze on the store",
        **{"batch-size": batch, "workers": args.workers},
    )
    print(title.line())
    pushdown_route = args.engine == "auto" and args.batch_size != 0
    for query in queries:
        report = analyze_query(
            query,
            store,
            engine=args.engine,
            batch_size=batch_size,
            workers=args.workers,
            pushdown=pushdown_route,
        )
        print(report.text(indent=2))
    if args.engine == "auto" and args.batch_size != 0:
        if schema is not None:
            from repro.reformulation.reformulate import reformulate

            print("  analyzed reformulation unions:")
            for query in queries:
                union = reformulate(query, schema)
                report = analyze_union(
                    union.disjuncts,
                    store,
                    batch_size=batch_size,
                    workers=args.workers,
                )
                report.tree.label = f"{query.name} {report.tree.label}"
                print(report.text(indent=4))
        if len(queries) > 1:
            tree, _answers = analyze_batch(
                queries, store, batch_size=batch_size, workers=args.workers
            )
            print(render(tree, indent=2))
    print()


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        serve_args = build_serve_parser().parse_args(argv[1:])
        _setup_logging(
            "warning" if serve_args.quiet else serve_args.log_level
        )
        return _run_serve(serve_args)
    args = build_parser().parse_args(argv)
    _setup_logging("warning" if args.quiet else args.log_level)
    if args.trace is not None:
        tracing.configure(args.trace)
    if args.metrics_json is not None:
        metrics.reset()
        metrics.enable()
    if args.slow_query_ms is not None:
        metrics.slow_query_ms = args.slow_query_ms
    try:
        return _run(args)
    finally:
        if args.slow_query_ms is not None:
            metrics.slow_query_ms = None
        if args.metrics_json is not None:
            metrics.export_json(args.metrics_json)
            metrics.disable()
            _LOG.info(f"wrote metrics registry to {args.metrics_json}")
        if args.trace is not None:
            tracing.configure(None)
            _LOG.info(f"wrote tracing spans to {args.trace}")


def _run(args) -> int:
    store = _load_store(args)
    if store is None:
        return 2

    schema = None
    if args.schema is not None:
        schema = RDFSchema.from_triples(parse_ntriples(args.schema.read_text()))
    elif args.entailment != "none":
        schema = RDFSchema.from_triples(iter(store))
    if schema is not None:
        _LOG.info(f"schema: {len(schema)} RDFS statements")

    queries = parse_queries(args.queries.read_text(), namespace=args.namespace)
    if not queries:
        _LOG.error("the workload file contains no queries")
        return 2
    _LOG.info(f"workload: {len(queries)} queries, "
              f"{sum(len(q) for q in queries)} atoms\n")

    if args.explain:
        _print_explain(queries, store, schema, args)
    if args.analyze:
        _print_analyze(queries, store, schema, args)

    time_limit = (
        args.search_budget_seconds
        if args.search_budget_seconds is not None
        else args.time_limit
    )
    selector = ViewSelector(
        store,
        schema=schema,
        strategy=args.strategy,
        entailment=args.entailment,
        budget=SearchBudget(
            time_limit=time_limit, max_states=args.search_budget_states
        ),
        workers=args.workers,
    )
    recommendation = selector.recommend(queries)
    result = recommendation.result

    print("recommended views:")
    for view in recommendation.views:
        print(f"  {view}")
    print("\nrewritings:")
    for name, rewriting in sorted(recommendation.state.rewritings.items()):
        rendered = " UNION ".join(str(d.plan) for d in rewriting)
        print(f"  {name} = {rendered}")
    print()
    print(f"initial cost  {result.initial_cost:.1f}")
    print(f"best cost     {result.best_cost:.1f}")
    print(f"cost reduction {result.rcr:.1%} "
          f"({result.stats.created} states in {result.runtime:.1f}s)")

    if args.explain:
        stats = result.stats
        rate = stats.created / result.runtime if result.runtime > 0 else 0.0
        print()
        print(f"search accounting [strategy={result.strategy or args.strategy} "
              f"completed={'yes' if result.completed else 'no (budget)'}]:")
        print(f"  created    {stats.created}")
        print(f"  duplicates {stats.duplicates}")
        print(f"  discarded  {stats.discarded}")
        print(f"  explored   {stats.explored}")
        print(f"  states/sec {rate:.0f}")

    if args.show_answers:
        batch_size = None if args.batch_size == 0 else args.batch_size
        extents = recommendation.materialize(
            engine=args.engine, batch_size=batch_size, workers=args.workers
        )
        print(f"\nanswers from the materialized views ({args.engine} engine):")
        for query in queries:
            answers = recommendation.answer(
                query.name, extents, engine=args.engine, batch_size=batch_size
            )
            print(f"  {query.name}: {len(answers)} answers")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    raise SystemExit(main())
