"""Worker-pool plumbing of the parallel operators.

Two parallel execution paths share the cached fork pools here:

* the **partitioned hash join** —
  :class:`~repro.engine.operators.PartitionedHashJoin` splits both join
  inputs into disjoint partitions by join-key hash and hands each
  partition to :func:`join_partition`, a self-contained, picklable
  function over plain row lists, so it runs identically in-process and
  in a worker process;
* **morsel-driven scans** — :func:`scan_morsels` fans the fixed-size
  encoded-triple morsels of one base scan
  (:class:`~repro.engine.operators.IndexScan`) across the pool, each
  worker projecting and equality-filtering its morsel through
  :func:`scan_morsel`, with results streamed back *in submission
  order* so the parallel scan's answer sequence is identical to the
  serial one. A bounded in-flight window keeps memory proportional to
  the worker count, not the scan size.

Process pools are cached per worker count (:func:`get_executor`):
forking a pool costs tens of milliseconds, which must be paid once per
session, not once per join. Pools use the ``fork`` start method where
available (rows need not be shipped back through module re-imports) and
are shut down at interpreter exit.

Everything crossing the process boundary is plain data — lists of
tuples of dictionary codes plus position tuples — never an operator,
store, or database connection.
"""

from __future__ import annotations

import atexit
import multiprocessing
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from operator import itemgetter

from repro.obs import metrics

#: Live executors, keyed by worker count.
_executors: dict[int, ProcessPoolExecutor] = {}

#: Rows per scan morsel — the unit of work a pool worker pulls. Large
#: enough that the pickle round-trip amortizes over thousands of rows,
#: small enough that a scan splits into many independently schedulable
#: pieces (the morsel-driven scheduling idea).
MORSEL_SIZE = 8192


def fork_context():
    """The ``fork`` multiprocessing context, or the platform default.

    Shared by the join/frontier fork pool below and by the server-mode
    worker pool (:mod:`repro.server.pool`): forked workers inherit the
    parent's modules and code, so tasks need no re-imports, and child
    start-up stays in the tens of milliseconds.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _is_broken(executor: ProcessPoolExecutor) -> bool:
    """True when the pool can no longer accept work (a worker died)."""
    return bool(getattr(executor, "_broken", False))


def get_executor(workers: int) -> ProcessPoolExecutor:
    """The cached process pool for ``workers`` worker processes.

    A cached pool that broke (a worker was killed — OOM is plausible on
    exactly the large joins this serves) is discarded and replaced, so
    one dead worker never poisons every later parallel join.
    """
    executor = _executors.get(workers)
    if executor is not None and _is_broken(executor):
        executor.shutdown(wait=False, cancel_futures=True)
        executor = None
    if executor is None:
        executor = ProcessPoolExecutor(
            max_workers=workers, mp_context=fork_context()
        )
        _executors[workers] = executor
    return executor


def shutdown_executors() -> None:
    """Shut down every cached pool (registered at interpreter exit)."""
    for executor in _executors.values():
        executor.shutdown(wait=False, cancel_futures=True)
    _executors.clear()


atexit.register(shutdown_executors)


def map_chunks(function, common, chunks, workers: int) -> list:
    """Run ``function(common, chunk)`` for every chunk on the cached pool.

    The generic fan-out primitive behind both the partitioned hash join
    and the view-selection search's parallel frontier pricing: ``common``
    (shipped once per chunk) carries the shared context — a cost model, a
    statistics snapshot — and each chunk is an independent slice of the
    work list. Results come back in chunk order. Everything crossing the
    boundary must be picklable; a pool broken mid-flight surfaces as
    :class:`BrokenProcessPool` for the caller to handle (the search falls
    back to serial evaluation).
    """
    executor = get_executor(workers)
    if metrics.enabled:
        metrics.inc("engine.parallel.tasks", len(chunks))
        futures = [
            executor.submit(instrumented_call, function, common, chunk)
            for chunk in chunks
        ]
        results = []
        for future in futures:
            result, dump = future.result()
            metrics.merge(dump)
            results.append(result)
        return results
    futures = [executor.submit(function, common, chunk) for chunk in chunks]
    return [future.result() for future in futures]


def instrumented_call(function, /, *args):
    """Pool-task wrapper when metrics are enabled: run ``function``
    against a fresh worker-local registry and return ``(result, dump)``.

    Fork-pool workers inherit whatever registry state the parent had at
    fork time; :func:`repro.obs.metrics.collect` sets it aside for the
    task's duration, so the dump the parent merges holds exactly the
    counts this one task produced — serial totals equal merged worker
    totals. Submitted only when ``metrics.enabled``; the disabled path
    is byte-identical to the uninstrumented one.
    """
    return metrics.collect(function, *args)


def join_partition(
    left_rows: list,
    right_rows: list,
    left_positions: tuple[int, ...],
    right_positions: tuple[int, ...],
    keep_positions: tuple[int, ...],
) -> list:
    """Hash-join one partition: build on the right, probe with the left.

    Pure function over plain row lists — the unit of work a pool worker
    executes. Returns the joined rows (left row + kept right columns),
    in left-row order then right build order per key, matching the
    serial hash join's output order partition-locally.
    """
    if metrics.enabled:
        metrics.inc(
            "engine.parallel.join.rows_in", len(left_rows) + len(right_rows)
        )
        metrics.inc("engine.parallel.join.partitions")
    table: dict[tuple, list] = {}
    get = table.get
    for row in right_rows:
        key = tuple(row[position] for position in right_positions)
        tails = get(key)
        tail = tuple(row[position] for position in keep_positions)
        if tails is None:
            table[key] = [tail]
        else:
            tails.append(tail)
    joined: list = []
    extend = joined.extend
    for row in left_rows:
        tails = get(tuple(row[position] for position in left_positions))
        if tails:
            extend([row + tail for tail in tails])
    if metrics.enabled:
        metrics.inc("engine.parallel.join.rows_out", len(joined))
    return joined


def scan_morsel(
    morsel: list,
    out_positions: tuple[int, ...],
    eqs: tuple[tuple[int, int], ...],
) -> list:
    """Project (and equality-filter) one morsel of encoded triples.

    Pure function over plain data — a list of ``(s, p, o)`` code
    triples, the output positions, and the intra-atom equality pairs —
    so it runs identically in-process and in a pool worker. Literal
    filters (``non_literal`` variables) need the dictionary and are
    therefore *not* morsel-eligible; the planner never parallelizes
    those scans.
    """
    if eqs:
        morsel = [
            triple
            for triple in morsel
            if not any(triple[i] != triple[j] for i, j in eqs)
        ]
    width = len(out_positions)
    if width == 1:
        position = out_positions[0]
        return [(triple[position],) for triple in morsel]
    if width == 0:
        return [()] * len(morsel)
    project = itemgetter(*out_positions)
    return [project(triple) for triple in morsel]


def scan_morsels(
    morsels,
    out_positions: tuple[int, ...],
    eqs: tuple[tuple[int, int], ...],
    workers: int,
):
    """Fan one scan's morsels across the pool; yield projected row lists.

    Results stream back **in submission order**, so the parallel scan
    yields exactly the serial row sequence. At most ``2 × workers``
    morsels are in flight at once (a bounded window): memory stays
    proportional to the worker count while the pool always has work
    queued. A pool that breaks mid-scan (a worker killed under memory
    pressure) degrades to computing the remaining morsels in-process —
    still in order, because every pending entry keeps its input morsel
    for recomputation.
    """
    window = max(2, workers * 2)
    pending: deque = deque()
    executor = None
    broken = False
    nmorsels = nrows = 0

    def submit(morsel):
        nonlocal broken, executor
        if broken:
            return None
        try:
            if executor is None:
                executor = get_executor(workers)
            return executor.submit(scan_morsel, morsel, out_positions, eqs)
        except (OSError, BrokenProcessPool):
            broken = True
            return None

    def resolve(future, morsel):
        nonlocal broken
        if future is not None:
            try:
                return future.result()
            except BrokenProcessPool:
                broken = True
        return scan_morsel(morsel, out_positions, eqs)

    for morsel in morsels:
        pending.append((submit(morsel), morsel))
        if len(pending) < window:
            continue
        future, first = pending.popleft()
        rows = resolve(future, first)
        nmorsels += 1
        nrows += len(rows)
        if rows:
            yield rows
    while pending:
        future, morsel = pending.popleft()
        rows = resolve(future, morsel)
        nmorsels += 1
        nrows += len(rows)
        if rows:
            yield rows
    if metrics.enabled:
        metrics.inc("engine.morsel.count", nmorsels)
        metrics.inc("engine.morsel.rows", nrows)
        if broken:
            metrics.inc("engine.morsel.fallback")
