"""Hash-indexed materialized view extents.

A :class:`ViewExtent` is a ``list`` of rows (tuples of decoded RDF
terms) that lazily builds and caches hash indexes keyed on column
positions. Rewriting plans probe view extents on their join attributes
over and over — once per join execution in the seed, once per *workload
lifetime* here: the first hash join keyed on a position tuple builds the
index, every later execution reuses it.

Extents subclass ``list`` so every existing consumer (``len``,
iteration, ``sorted``, equality against plain lists) keeps working.
Extents are write-once: mutating the row list after an index was built
is unsupported and would desynchronize the cached indexes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

#: One materialized row: a tuple of decoded RDF terms.
Row = tuple


class ViewExtent(list):
    """A materialized view extent with cached hash indexes."""

    def __init__(self, rows: Iterable[Row] = ()) -> None:
        super().__init__(rows)
        self._indexes: dict[tuple[int, ...], dict[tuple, list[Row]]] = {}
        self._tails: dict[tuple, dict[tuple, list[tuple]]] = {}

    def index_on(self, positions: Sequence[int]) -> dict[tuple, list[Row]]:
        """Rows grouped by their values at ``positions`` (dict-of-lists).

        Built on first request and cached; the empty position tuple maps
        every row under ``()``, which makes keyless (cross) joins fall
        out of the same code path.
        """
        key_positions = tuple(positions)
        index = self._indexes.get(key_positions)
        if index is None:
            index = {}
            for row in self:
                key = tuple(row[p] for p in key_positions)
                index.setdefault(key, []).append(row)
            self._indexes[key_positions] = index
        return index

    def tails_on(
        self, positions: Sequence[int], keep: Sequence[int]
    ) -> dict[tuple, list[tuple]]:
        """Pre-projected join tails grouped by key (dict-of-lists).

        Like :meth:`index_on`, but each bucket holds the rows already
        projected to the ``keep`` positions — exactly what a hash join
        appends to matching probe rows. The batched hash join asks for
        this first, so repeated workload executions skip both the build
        phase *and* the per-probe projection. Built once per
        ``(positions, keep)`` pair and cached; bucket order is row
        order, preserving the seed's join output order.
        """
        cache_key = (tuple(positions), tuple(keep))
        tails = self._tails.get(cache_key)
        if tails is None:
            key_positions, keep_positions = cache_key
            tails = {}
            for row in self:
                key = tuple(row[p] for p in key_positions)
                tail = tuple(row[p] for p in keep_positions)
                tails.setdefault(key, []).append(tail)
            self._tails[cache_key] = tails
        return tails
