"""Whole-plan SQL pushdown: compile a conjunctive query to one statement.

The interpreted operator tree executes joins in Python above per-probe /
per-batch SELECTs, which on the SQLite backend pays one driver crossing
per batch *per join step*. For a conjunctive query every step is a
self-join of the one ``triples`` table, so the entire plan — joins,
constant selections, head projection, DISTINCT — is expressible as a
single SQL statement:

.. code-block:: sql

    SELECT DISTINCT t0.s, t1.o
    FROM triples t0, triples t1
    WHERE t0.p = ? AND t1.s = t0.o AND t1.p = ?

Executed inside the backend, SQLite evaluates the whole join pipeline in
its VM against the SPO/POS/OSP covering indexes (every constant binding
is an index-prefix predicate; ``ANALYZE`` keeps its join-order choice
honest), and Python touches exactly one row per *distinct head image* —
"move the computation to the data".

Compilation is pure text generation over dictionary codes:

* each atom becomes one alias of the ``triples`` table, in body order
  (SQLite's own planner reorders comma joins freely, so the emitted
  order carries no cost information and the text is deterministic);
* a constant becomes ``tN.col = ?`` with its dictionary code as a bound
  parameter — an index-prefix range predicate on SPO/POS/OSP;
* a repeated variable becomes an equality against its first occurrence
  (across atoms: the join condition; within an atom: the self-join
  filter of ``t(X, p, X)``);
* head variables become the ``SELECT DISTINCT`` projection; constant
  head terms are re-attached per answer after decoding.

The rule-4 ``non_literal`` restriction needs the dictionary (only
Python knows which codes encode literals), so it cannot run inside
SQLite. Two cases:

* a restricted variable that occurs in some subject or predicate
  position is *implied* non-literal — stored triples are well-formed
  RDF, so those columns never hold literal codes — and compiles to
  nothing;
* a restricted variable confined to object positions is appended to the
  projection and every fetched row binding it to a literal code is
  dropped before decoding (answers are re-deduplicated by the result
  set, so the widened DISTINCT stays invisible).

:func:`compile_query` returns ``None`` for the shapes one statement
cannot (or should not) express — more joined tables than SQLite's
64-way limit, more constants than the bound-parameter budget — and the
caller falls back to the interpreted operator tree. Plans over
materialized view extents never reach this module: extents live in
Python lists, not in the backend, so the rewriting route
(:func:`repro.engine.planner.run_plan`) is interpreted by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import metrics
from repro.query.cq import ConjunctiveQuery, Variable
from repro.rdf.store import TripleStore
from repro.rdf.terms import Term

__all__ = [
    "CompiledQuery",
    "CompiledUnion",
    "UnionBranch",
    "UnionCTE",
    "compile_query",
    "compile_union",
    "MAX_PUSHDOWN_TABLES",
    "MAX_UNION_BRANCHES",
]

#: Most atoms one pushed-down statement may join. SQLite refuses joins
#: of more than 64 tables; staying a little below leaves headroom for
#: SQLite-internal rewrites that add tables (flattening, stat4 probes).
MAX_PUSHDOWN_TABLES = 60

#: Bound-parameter budget per statement — one parameter per constant
#: occurrence. Matches the backend's probe budget: below 999, the
#: SQLITE_MAX_VARIABLE_NUMBER default of the oldest supported builds.
MAX_PUSHDOWN_PARAMS = 900

#: Most branches one pushed-down UNION statement may hold. SQLite's
#: compound-select term limit defaults to 500; staying below leaves
#: headroom, and unions beyond it fall back to the interpreted shared
#: DAG (which has no size ceiling).
MAX_UNION_BRANCHES = 400

#: Column names of the triple table, in atom-position order.
_COLUMNS = ("s", "p", "o")


@dataclass(frozen=True)
class CompiledQuery:
    """One conjunctive query compiled to a single SQL statement.

    ``sql is None`` marks a query that is *provably empty* on the store
    it was compiled against (a constant the dictionary has never seen):
    execution returns no answers without touching the backend. The
    compiled form is only valid for the store version it was compiled
    on — the prepared-plan cache it lives in is flushed on mutation.
    """

    #: The statement text, or None when the query is provably empty.
    sql: str | None
    #: Dictionary codes bound to the statement's ``?`` placeholders.
    params: tuple[int, ...]
    #: Per head position: index into the fetched row, or None for a
    #: constant head term (re-attached from ``head_constants``).
    head_slots: tuple[int | None, ...]
    #: Per head position: the constant term, or None for a variable.
    head_constants: tuple[Term | None, ...]
    #: Fetched-row indexes that must not hold literal codes (the rule-4
    #: residue SQL cannot check); rows violating any are dropped.
    restricted_slots: tuple[int, ...]

    def describe(self) -> str:
        """The statement with its bound parameters, for ``--explain``.

        Parameters are dictionary codes (plain integers), so inlining
        them for display is unambiguous; the executed statement always
        binds them as parameters.
        """
        if self.sql is None:
            return "EMPTY (a query constant never occurs in the store)"
        text = self.sql
        for code in self.params:
            text = text.replace("?", str(code), 1)
        return text

    def images(self, store: TripleStore) -> set[tuple]:
        """Distinct *encoded* head images: codes for variable positions,
        the constant term for constant positions.

        The multi-query optimizer merges images across a whole union of
        disjuncts before decoding, so each distinct answer is decoded
        once per union instead of once per disjunct
        (:func:`repro.engine.mqo.decode_images` is the inverse).
        """
        if self.sql is None:
            return set()
        rows = store.backend.execute_sql_plan(self.sql, self.params)
        restricted = self.restricted_slots
        if restricted:
            is_literal = store.dictionary.is_literal_code
            rows = (
                row
                for row in rows
                if not any(is_literal(row[slot]) for slot in restricted)
            )
        slots = self.head_slots
        if all(slot is not None for slot in slots):
            return {tuple(row[slot] for slot in slots) for row in rows}
        constants = self.head_constants
        return {
            tuple(
                constant if slot is None else row[slot]
                for slot, constant in zip(slots, constants)
            )
            for row in rows
        }

    def execute(self, store: TripleStore) -> set[tuple[Term, ...]]:
        """Run the statement in the backend and decode the answers.

        One backend call evaluates the whole plan; Python work is one
        pass over the distinct result rows — a literal-code filter for
        the restricted slots, then decoding with each code decoded once.
        """
        if self.sql is None:
            return set()
        decode = store.dictionary.decode
        answers: set[tuple[Term, ...]] = set()
        cache: dict[int, Term] = {}
        for image in self.images(store):
            answer = []
            for part in image:
                if isinstance(part, int):
                    term = cache.get(part)
                    if term is None:
                        term = decode(part)
                        cache[part] = term
                    answer.append(term)
                else:
                    answer.append(part)
            answers.add(tuple(answer))
        return answers


def _implied_non_literal(query: ConjunctiveQuery, variable: Variable) -> bool:
    """True when well-formedness alone keeps ``variable`` off literals.

    Stored triples are well-formed RDF (enforced by
    :class:`~repro.rdf.triples.Triple`): subjects and predicates are
    never literals. A restricted variable occurring in any subject or
    predicate position therefore only ever binds non-literal codes.
    """
    for atom in query.atoms:
        if atom.s == variable or atom.p == variable:
            return True
    return False


def compile_query(
    query: ConjunctiveQuery, store: TripleStore
) -> CompiledQuery | None:
    """Compile ``query`` into one SQL statement over the triple table.

    Returns ``None`` when the query is not expressible within the
    pushdown limits (see the module docstring for the eligibility
    rules); the caller then falls back to the interpreted operator
    tree. Constants are encoded against ``store``'s dictionary — a
    constant the store has never seen yields the provably-empty
    compiled form.

    >>> from repro.query.parser import parse_query
    >>> from repro.rdf.ntriples import parse_ntriples
    >>> from repro.rdf.store import TripleStore
    >>> store = TripleStore(backend="sqlite")
    >>> _ = store.add_all(parse_ntriples('''
    ... <http://e/a> <http://e/knows> <http://e/b> .
    ... <http://e/b> <http://e/knows> <http://e/c> .
    ... '''))
    >>> query = parse_query(
    ...     "q(X, Z) :- t(X, <http://e/knows>, Y), t(Y, <http://e/knows>, Z)")
    >>> compiled = compile_query(query, store)
    >>> print(compiled.sql)
    SELECT DISTINCT t0.s, t1.o
    FROM triples t0, triples t1
    WHERE t0.p = ? AND t1.s = t0.o AND t1.p = ?
    >>> sorted((s.n3(), o.n3()) for s, o in compiled.execute(store))
    [('<http://e/a>', '<http://e/c>')]
    >>> store.close()
    """
    if not metrics.enabled:
        return _compile_query_statement(query, store)
    with metrics.timer("storage.sqlite.pushdown.compile_ms"):
        compiled = _compile_query_statement(query, store)
    metrics.inc(
        "storage.sqlite.pushdown.compiled"
        if compiled is not None
        else "storage.sqlite.pushdown.ineligible"
    )
    return compiled


def _compile_query_statement(
    query: ConjunctiveQuery, store: TripleStore
) -> CompiledQuery | None:
    """The uninstrumented compilation behind :func:`compile_query`."""
    atoms = query.atoms
    if len(atoms) > MAX_PUSHDOWN_TABLES:
        return None
    conditions: list[str] = []
    params: list[int] = []
    first_occurrence: dict[Variable, str] = {}
    empty = False
    for index, atom in enumerate(atoms):
        alias = f"t{index}"
        for column, term in zip(_COLUMNS, atom):
            expression = f"{alias}.{column}"
            if isinstance(term, Variable):
                known = first_occurrence.get(term)
                if known is None:
                    first_occurrence[term] = expression
                else:
                    conditions.append(f"{expression} = {known}")
            else:
                code = store.encode_term(term)
                if code is None:
                    # A constant the data never mentions: provably empty
                    # (until the store mutates, which flushes the cache).
                    empty = True
                else:
                    conditions.append(f"{expression} = ?")
                    params.append(code)
    if len(params) > MAX_PUSHDOWN_PARAMS:
        return None

    # Projection: one column per distinct head variable, plus the
    # restricted variables SQL cannot check (object-only occurrences).
    select: list[str] = []
    slot_of: dict[Variable, int] = {}
    head_slots: list[int | None] = []
    head_constants: list[Term | None] = []
    for term in query.head:
        if isinstance(term, Variable):
            slot = slot_of.get(term)
            if slot is None:
                slot = len(select)
                select.append(first_occurrence[term])
                slot_of[term] = slot
            head_slots.append(slot)
            head_constants.append(None)
        else:
            head_slots.append(None)
            head_constants.append(term)
    restricted_slots: list[int] = []
    for variable in sorted(query.non_literal, key=lambda v: v.name):
        if _implied_non_literal(query, variable):
            continue
        slot = slot_of.get(variable)
        if slot is None:
            slot = len(select)
            select.append(first_occurrence[variable])
            slot_of[variable] = slot
        restricted_slots.append(slot)

    if empty:
        return CompiledQuery(
            sql=None,
            params=(),
            head_slots=tuple(head_slots),
            head_constants=tuple(head_constants),
            restricted_slots=(),
        )

    tables = ", ".join(f"triples t{index}" for index in range(len(atoms)))
    where = f"\nWHERE {' AND '.join(conditions)}" if conditions else ""
    if select:
        sql = f"SELECT DISTINCT {', '.join(select)}\nFROM {tables}{where}"
    else:
        # No variable to project (an all-constant head): existence test.
        sql = f"SELECT 1\nFROM {tables}{where}\nLIMIT 1"
    return CompiledQuery(
        sql=sql,
        params=tuple(params),
        head_slots=tuple(head_slots),
        head_constants=tuple(head_constants),
        restricted_slots=tuple(restricted_slots),
    )


# ----------------------------------------------------------------------
# Union pushdown: one SELECT ... UNION statement with shared CTEs
# ----------------------------------------------------------------------
#
# Reformulation turns one query into a union of conjunctive queries
# whose bodies overlap heavily. On a SQL-capable backend the whole
# union — every branch *and* the work they share — is expressible as a
# single compound statement: each shared join-subtree the multi-query
# optimizer (:mod:`repro.engine.mqo`) detects becomes one non-recursive
# CTE, each disjunct becomes one SELECT arm reading its covered prefix
# from the CTE, and UNION deduplicates the merged head images inside
# the backend. The sharing decisions (which prefixes, which disjuncts
# consume them) are made upstream and arrive here as plain data
# (:class:`UnionCTE` / :class:`UnionBranch`); this module stays pure
# text generation over dictionary codes.
#
# Two encodings keep the compound statement uniform across branches:
#
# * a *constant head term* is projected as its dictionary code (an
#   integer literal in the SELECT list). A constant the store has never
#   seen still names a valid answer — reformulation binds head
#   variables to schema constants that may be absent from the data —
#   so it gets a fresh *negative* placeholder code (real codes are
#   dense non-negative) recorded in the ``overlay`` decode map;
# * the rule-4 residue (restricted variables confined to object
#   positions) is appended per branch as extra columns, NULL-padded to
#   a uniform width. Rows whose non-NULL extras decode to literals are
#   dropped in Python; head images are then re-deduplicated, so the
#   widened UNION stays invisible.


@dataclass(frozen=True)
class UnionCTE:
    """One shared join subtree, compiled as a CTE of the union statement.

    ``columns`` maps each variable of the representative subtree to its
    canonical column id — branch arms address CTE output as ``sN.c<id>``
    through their own variables' ids, so isomorphic prefixes from
    different disjuncts meet on the same columns.
    """

    #: The representative prefix body, in its join order.
    atoms: tuple[Atom, ...]
    #: ``(variable, canonical column id)`` for every prefix variable.
    columns: tuple[tuple[Variable, int], ...]


@dataclass(frozen=True)
class UnionBranch:
    """One disjunct of the union, as a SELECT arm of the statement."""

    #: The disjunct (head, ``non_literal`` restriction).
    query: ConjunctiveQuery
    #: The disjunct's body in its join order.
    atoms: tuple[Atom, ...]
    #: Index into the CTE list, or None when nothing is shared.
    cte: int | None
    #: Number of leading ``atoms`` served by the CTE.
    covered: int
    #: ``(variable, canonical column id)`` for the covered prefix.
    columns: tuple[tuple[Variable, int], ...]


@dataclass(frozen=True)
class CompiledUnion:
    """A union of conjunctive queries compiled to one SQL statement.

    ``sql is None`` marks a union that is provably empty on the store it
    was compiled against (every branch mentions a body constant the
    dictionary has never seen). Like :class:`CompiledQuery`, the
    compiled form is only valid for the store version it was compiled
    on; the prepared-plan cache it lives in is flushed on mutation.
    """

    #: The compound statement, or None when provably empty.
    sql: str | None
    #: Dictionary codes bound to ``?`` placeholders, in textual order
    #: (CTEs first, then branch arms).
    params: tuple[int, ...]
    #: Head width — fetched rows are ``arity`` head codes followed by
    #: ``extra`` rule-4 residue columns.
    arity: int
    #: Number of NULL-padded residue columns per row.
    extra: int
    #: ``(negative placeholder code, term)`` for head constants absent
    #: from the dictionary.
    overlay: tuple[tuple[int, Term], ...]
    #: Number of SELECT arms (non-empty disjuncts).
    branches: int
    #: Number of shared-subtree CTEs the arms read from.
    shared_ctes: int

    def describe(self) -> str:
        """The statement with its bound parameters, for ``--explain``."""
        if self.sql is None:
            return (
                "EMPTY (every union branch mentions a constant "
                "absent from the store)"
            )
        text = self.sql
        for code in self.params:
            text = text.replace("?", str(code), 1)
        return text

    def images(self, store: TripleStore) -> set[tuple]:
        """Distinct encoded head images across the whole union.

        One backend call evaluates every branch and the shared CTEs;
        Python drops rows whose rule-4 residue binds a literal, strips
        the residue columns, and re-deduplicates the head images.
        """
        if self.sql is None:
            return set()
        rows = store.backend.execute_sql_plan(self.sql, self.params)
        arity = self.arity
        if self.extra:
            is_literal = store.dictionary.is_literal_code
            rows = (
                row
                for row in rows
                if not any(
                    code is not None and is_literal(code)
                    for code in row[arity:]
                )
            )
            return {tuple(row[:arity]) for row in rows}
        return {tuple(row) for row in rows}

    def execute(self, store: TripleStore) -> set[tuple[Term, ...]]:
        """Run the statement and decode each distinct answer once."""
        decode = store.dictionary.decode
        overlay = dict(self.overlay)
        cache: dict[int, Term] = dict(overlay)
        answers: set[tuple[Term, ...]] = set()
        for image in self.images(store):
            answer = []
            for code in image:
                term = cache.get(code)
                if term is None:
                    term = decode(code)
                    cache[code] = term
                answer.append(term)
            answers.add(tuple(answer))
        return answers


def _cte_select(cte: UnionCTE, store: TripleStore):
    """``(select text, params, empty)`` for one shared-subtree CTE.

    ``empty`` flags a prefix constant the dictionary has never seen:
    the CTE (and every branch reading it) is provably empty.
    """
    first: dict[Variable, str] = {}
    conditions: list[str] = []
    params: list[int] = []
    empty = False
    for index, atom in enumerate(cte.atoms):
        alias = f"t{index}"
        for column, term in zip(_COLUMNS, atom):
            expression = f"{alias}.{column}"
            if isinstance(term, Variable):
                known = first.get(term)
                if known is None:
                    first[term] = expression
                else:
                    conditions.append(f"{expression} = {known}")
            else:
                code = store.encode_term(term)
                if code is None:
                    empty = True
                else:
                    conditions.append(f"{expression} = ?")
                    params.append(code)
    select = ", ".join(
        f"{first[variable]} AS c{column}"
        for variable, column in sorted(cte.columns, key=lambda vc: vc[1])
    )
    tables = ", ".join(f"triples t{index}" for index in range(len(cte.atoms)))
    where = f"\nWHERE {' AND '.join(conditions)}" if conditions else ""
    return f"SELECT {select}\nFROM {tables}{where}", params, empty


def compile_union(
    branches: "list[UnionBranch] | tuple[UnionBranch, ...]",
    ctes: "list[UnionCTE] | tuple[UnionCTE, ...]",
    store: TripleStore,
) -> CompiledUnion | None:
    """Compile a union of conjunctive queries into one SQL statement.

    ``branches`` carry the disjuncts (with their join order and shared-
    prefix coverage) and ``ctes`` the shared subtrees, both produced by
    the multi-query optimizer (:func:`repro.engine.mqo.plan_union_pushdown`
    is the cached entry point). Returns ``None`` when the union is not
    expressible within the pushdown limits — a 0-arity (boolean) head,
    more branches than :data:`MAX_UNION_BRANCHES`, a branch beyond the
    table or parameter budgets — and the caller falls back to the
    interpreted shared-DAG route, which has no such ceilings.
    """
    if not metrics.enabled:
        return _compile_union_statement(branches, ctes, store)
    with metrics.timer("storage.sqlite.pushdown.compile_ms"):
        compiled = _compile_union_statement(branches, ctes, store)
    metrics.inc(
        "storage.sqlite.pushdown.union_compiled"
        if compiled is not None
        else "storage.sqlite.pushdown.union_ineligible"
    )
    return compiled


def _compile_union_statement(
    branches: "list[UnionBranch] | tuple[UnionBranch, ...]",
    ctes: "list[UnionCTE] | tuple[UnionCTE, ...]",
    store: TripleStore,
) -> CompiledUnion | None:
    """The uninstrumented compilation behind :func:`compile_union`."""
    if not branches:
        return None
    arity = len(branches[0].query.head)
    if arity == 0:
        # A boolean union projects no column; SELECT needs at least one
        # and the interpreted route answers it with an early exit anyway.
        return None
    if len(branches) > MAX_UNION_BRANCHES:
        return None

    cte_texts: list[str | None] = []
    cte_params: list[list[int]] = []
    for cte in ctes:
        if len(cte.atoms) > MAX_PUSHDOWN_TABLES:
            return None
        text, params, empty = _cte_select(cte, store)
        cte_texts.append(None if empty else text)
        cte_params.append(params)

    overlay: dict[Term, int] = {}
    compiled_arms: list[tuple[str, list[int], int | None]] = []
    widths: list[int] = []
    arms: list[tuple[list[str], list[str], list[str], list[str], list[int], int | None]] = []
    for branch in branches:
        if any(
            store.encode_term(constant) is None
            for atom in branch.atoms
            for constant in atom.constants()
        ):
            continue  # provably empty disjunct: contribute no arm
        cte_id = branch.cte
        if cte_id is not None and cte_texts[cte_id] is None:
            continue
        first: dict[Variable, str] = {}
        tables: list[str] = []
        conditions: list[str] = []
        params: list[int] = []
        remaining = branch.atoms
        if cte_id is not None:
            name = f"s{cte_id}"
            tables.append(name)
            for variable, column in branch.columns:
                first[variable] = f"{name}.c{column}"
            remaining = branch.atoms[branch.covered:]
        if len(remaining) + len(tables) > MAX_PUSHDOWN_TABLES:
            return None
        for index, atom in enumerate(remaining):
            alias = f"t{index}"
            tables.append(f"triples {alias}")
            for column, term in zip(_COLUMNS, atom):
                expression = f"{alias}.{column}"
                if isinstance(term, Variable):
                    known = first.get(term)
                    if known is None:
                        first[term] = expression
                    else:
                        conditions.append(f"{expression} = {known}")
                else:
                    conditions.append(f"{expression} = ?")
                    params.append(store.encode_term(term))
        select: list[str] = []
        for term in branch.query.head:
            if isinstance(term, Variable):
                select.append(first[term])
            else:
                code = store.encode_term(term)
                if code is None:
                    code = overlay.get(term)
                    if code is None:
                        # Real codes are dense non-negative; a negative
                        # placeholder can never collide with one.
                        code = -(len(overlay) + 1)
                        overlay[term] = code
                select.append(str(code))
        extras: list[str] = []
        for variable in sorted(branch.query.non_literal, key=lambda v: v.name):
            if _implied_non_literal(branch.query, variable):
                continue
            extras.append(first[variable])
        widths.append(len(extras))
        arms.append((select, extras, tables, conditions, params, cte_id))

    if not arms:
        return CompiledUnion(
            sql=None, params=(), arity=arity, extra=0, overlay=(),
            branches=0, shared_ctes=0,
        )

    extra = max(widths)
    used_ctes = sorted({cte_id for *_, cte_id in arms if cte_id is not None})
    all_params: list[int] = []
    with_clauses: list[str] = []
    for cte_id in used_ctes:
        body = "\n".join(f"  {line}" for line in cte_texts[cte_id].splitlines())
        with_clauses.append(f"s{cte_id} AS (\n{body}\n)")
        all_params.extend(cte_params[cte_id])
    parts: list[str] = []
    for select, extras, tables, conditions, params, _ in arms:
        padded = select + extras + ["NULL"] * (extra - len(extras))
        where = f"\nWHERE {' AND '.join(conditions)}" if conditions else ""
        parts.append(
            f"SELECT DISTINCT {', '.join(padded)}"
            f"\nFROM {', '.join(tables)}{where}"
        )
        all_params.extend(params)
    if len(all_params) > MAX_PUSHDOWN_PARAMS:
        return None
    sql = "\nUNION\n".join(parts)
    if with_clauses:
        sql = "WITH " + ",\n".join(with_clauses) + "\n" + sql
    return CompiledUnion(
        sql=sql,
        params=tuple(all_params),
        arity=arity,
        extra=extra,
        overlay=tuple((code, term) for term, code in overlay.items()),
        branches=len(arms),
        shared_ctes=len(used_ctes),
    )
