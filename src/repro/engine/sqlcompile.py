"""Whole-plan SQL pushdown: compile a conjunctive query to one statement.

The interpreted operator tree executes joins in Python above per-probe /
per-batch SELECTs, which on the SQLite backend pays one driver crossing
per batch *per join step*. For a conjunctive query every step is a
self-join of the one ``triples`` table, so the entire plan — joins,
constant selections, head projection, DISTINCT — is expressible as a
single SQL statement:

.. code-block:: sql

    SELECT DISTINCT t0.s, t1.o
    FROM triples t0, triples t1
    WHERE t0.p = ? AND t1.s = t0.o AND t1.p = ?

Executed inside the backend, SQLite evaluates the whole join pipeline in
its VM against the SPO/POS/OSP covering indexes (every constant binding
is an index-prefix predicate; ``ANALYZE`` keeps its join-order choice
honest), and Python touches exactly one row per *distinct head image* —
"move the computation to the data".

Compilation is pure text generation over dictionary codes:

* each atom becomes one alias of the ``triples`` table, in body order
  (SQLite's own planner reorders comma joins freely, so the emitted
  order carries no cost information and the text is deterministic);
* a constant becomes ``tN.col = ?`` with its dictionary code as a bound
  parameter — an index-prefix range predicate on SPO/POS/OSP;
* a repeated variable becomes an equality against its first occurrence
  (across atoms: the join condition; within an atom: the self-join
  filter of ``t(X, p, X)``);
* head variables become the ``SELECT DISTINCT`` projection; constant
  head terms are re-attached per answer after decoding.

The rule-4 ``non_literal`` restriction needs the dictionary (only
Python knows which codes encode literals), so it cannot run inside
SQLite. Two cases:

* a restricted variable that occurs in some subject or predicate
  position is *implied* non-literal — stored triples are well-formed
  RDF, so those columns never hold literal codes — and compiles to
  nothing;
* a restricted variable confined to object positions is appended to the
  projection and every fetched row binding it to a literal code is
  dropped before decoding (answers are re-deduplicated by the result
  set, so the widened DISTINCT stays invisible).

:func:`compile_query` returns ``None`` for the shapes one statement
cannot (or should not) express — more joined tables than SQLite's
64-way limit, more constants than the bound-parameter budget — and the
caller falls back to the interpreted operator tree. Plans over
materialized view extents never reach this module: extents live in
Python lists, not in the backend, so the rewriting route
(:func:`repro.engine.planner.run_plan`) is interpreted by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.cq import ConjunctiveQuery, Variable
from repro.rdf.store import TripleStore
from repro.rdf.terms import Term

__all__ = ["CompiledQuery", "compile_query", "MAX_PUSHDOWN_TABLES"]

#: Most atoms one pushed-down statement may join. SQLite refuses joins
#: of more than 64 tables; staying a little below leaves headroom for
#: SQLite-internal rewrites that add tables (flattening, stat4 probes).
MAX_PUSHDOWN_TABLES = 60

#: Bound-parameter budget per statement — one parameter per constant
#: occurrence. Matches the backend's probe budget: below 999, the
#: SQLITE_MAX_VARIABLE_NUMBER default of the oldest supported builds.
MAX_PUSHDOWN_PARAMS = 900

#: Column names of the triple table, in atom-position order.
_COLUMNS = ("s", "p", "o")


@dataclass(frozen=True)
class CompiledQuery:
    """One conjunctive query compiled to a single SQL statement.

    ``sql is None`` marks a query that is *provably empty* on the store
    it was compiled against (a constant the dictionary has never seen):
    execution returns no answers without touching the backend. The
    compiled form is only valid for the store version it was compiled
    on — the prepared-plan cache it lives in is flushed on mutation.
    """

    #: The statement text, or None when the query is provably empty.
    sql: str | None
    #: Dictionary codes bound to the statement's ``?`` placeholders.
    params: tuple[int, ...]
    #: Per head position: index into the fetched row, or None for a
    #: constant head term (re-attached from ``head_constants``).
    head_slots: tuple[int | None, ...]
    #: Per head position: the constant term, or None for a variable.
    head_constants: tuple[Term | None, ...]
    #: Fetched-row indexes that must not hold literal codes (the rule-4
    #: residue SQL cannot check); rows violating any are dropped.
    restricted_slots: tuple[int, ...]

    def describe(self) -> str:
        """The statement with its bound parameters, for ``--explain``.

        Parameters are dictionary codes (plain integers), so inlining
        them for display is unambiguous; the executed statement always
        binds them as parameters.
        """
        if self.sql is None:
            return "EMPTY (a query constant never occurs in the store)"
        text = self.sql
        for code in self.params:
            text = text.replace("?", str(code), 1)
        return text

    def execute(self, store: TripleStore) -> set[tuple[Term, ...]]:
        """Run the statement in the backend and decode the answers.

        One backend call evaluates the whole plan; Python work is one
        pass over the distinct result rows — a literal-code filter for
        the restricted slots, then decoding with each code decoded once.
        """
        if self.sql is None:
            return set()
        rows = store.backend.execute_sql_plan(self.sql, self.params)
        decode = store.dictionary.decode
        restricted = self.restricted_slots
        if restricted:
            is_literal = store.dictionary.is_literal_code
            rows = (
                row
                for row in rows
                if not any(is_literal(row[slot]) for slot in restricted)
            )
        answers: set[tuple[Term, ...]] = set()
        cache: dict[int, Term] = {}
        slots = self.head_slots
        constants = self.head_constants
        for row in rows:
            answer = []
            for slot, constant in zip(slots, constants):
                if slot is None:
                    answer.append(constant)
                else:
                    code = row[slot]
                    term = cache.get(code)
                    if term is None:
                        term = decode(code)
                        cache[code] = term
                    answer.append(term)
            answers.add(tuple(answer))
        return answers


def _implied_non_literal(query: ConjunctiveQuery, variable: Variable) -> bool:
    """True when well-formedness alone keeps ``variable`` off literals.

    Stored triples are well-formed RDF (enforced by
    :class:`~repro.rdf.triples.Triple`): subjects and predicates are
    never literals. A restricted variable occurring in any subject or
    predicate position therefore only ever binds non-literal codes.
    """
    for atom in query.atoms:
        if atom.s == variable or atom.p == variable:
            return True
    return False


def compile_query(
    query: ConjunctiveQuery, store: TripleStore
) -> CompiledQuery | None:
    """Compile ``query`` into one SQL statement over the triple table.

    Returns ``None`` when the query is not expressible within the
    pushdown limits (see the module docstring for the eligibility
    rules); the caller then falls back to the interpreted operator
    tree. Constants are encoded against ``store``'s dictionary — a
    constant the store has never seen yields the provably-empty
    compiled form.

    >>> from repro.query.parser import parse_query
    >>> from repro.rdf.ntriples import parse_ntriples
    >>> from repro.rdf.store import TripleStore
    >>> store = TripleStore(backend="sqlite")
    >>> _ = store.add_all(parse_ntriples('''
    ... <http://e/a> <http://e/knows> <http://e/b> .
    ... <http://e/b> <http://e/knows> <http://e/c> .
    ... '''))
    >>> query = parse_query(
    ...     "q(X, Z) :- t(X, <http://e/knows>, Y), t(Y, <http://e/knows>, Z)")
    >>> compiled = compile_query(query, store)
    >>> print(compiled.sql)
    SELECT DISTINCT t0.s, t1.o
    FROM triples t0, triples t1
    WHERE t0.p = ? AND t1.s = t0.o AND t1.p = ?
    >>> sorted((s.n3(), o.n3()) for s, o in compiled.execute(store))
    [('<http://e/a>', '<http://e/c>')]
    >>> store.close()
    """
    atoms = query.atoms
    if len(atoms) > MAX_PUSHDOWN_TABLES:
        return None
    conditions: list[str] = []
    params: list[int] = []
    first_occurrence: dict[Variable, str] = {}
    empty = False
    for index, atom in enumerate(atoms):
        alias = f"t{index}"
        for column, term in zip(_COLUMNS, atom):
            expression = f"{alias}.{column}"
            if isinstance(term, Variable):
                known = first_occurrence.get(term)
                if known is None:
                    first_occurrence[term] = expression
                else:
                    conditions.append(f"{expression} = {known}")
            else:
                code = store.encode_term(term)
                if code is None:
                    # A constant the data never mentions: provably empty
                    # (until the store mutates, which flushes the cache).
                    empty = True
                else:
                    conditions.append(f"{expression} = ?")
                    params.append(code)
    if len(params) > MAX_PUSHDOWN_PARAMS:
        return None

    # Projection: one column per distinct head variable, plus the
    # restricted variables SQL cannot check (object-only occurrences).
    select: list[str] = []
    slot_of: dict[Variable, int] = {}
    head_slots: list[int | None] = []
    head_constants: list[Term | None] = []
    for term in query.head:
        if isinstance(term, Variable):
            slot = slot_of.get(term)
            if slot is None:
                slot = len(select)
                select.append(first_occurrence[term])
                slot_of[term] = slot
            head_slots.append(slot)
            head_constants.append(None)
        else:
            head_slots.append(None)
            head_constants.append(term)
    restricted_slots: list[int] = []
    for variable in sorted(query.non_literal, key=lambda v: v.name):
        if _implied_non_literal(query, variable):
            continue
        slot = slot_of.get(variable)
        if slot is None:
            slot = len(select)
            select.append(first_occurrence[variable])
            slot_of[variable] = slot
        restricted_slots.append(slot)

    if empty:
        return CompiledQuery(
            sql=None,
            params=(),
            head_slots=tuple(head_slots),
            head_constants=tuple(head_constants),
            restricted_slots=(),
        )

    tables = ", ".join(f"triples t{index}" for index in range(len(atoms)))
    where = f"\nWHERE {' AND '.join(conditions)}" if conditions else ""
    if select:
        sql = f"SELECT DISTINCT {', '.join(select)}\nFROM {tables}{where}"
    else:
        # No variable to project (an all-constant head): existence test.
        sql = f"SELECT 1\nFROM {tables}{where}\nLIMIT 1"
    return CompiledQuery(
        sql=sql,
        params=tuple(params),
        head_slots=tuple(head_slots),
        head_constants=tuple(head_constants),
        restricted_slots=tuple(restricted_slots),
    )
