"""Plan compilation: one engine for queries-on-stores and plans-on-views.

Two entry families compile into the *same* physical operator algebra
(:mod:`repro.engine.operators`):

* :func:`plan_query` / :func:`run_query` — a
  :class:`~repro.query.cq.ConjunctiveQuery` against a
  :class:`~repro.rdf.store.TripleStore`. Atoms are ordered **once** by
  their exact pattern cardinalities (the Section 3.3 statistics, via any
  :class:`~repro.selection.statistics.Statistics` provider or the
  store's own counts), then compiled into a left-deep join tree.
* :func:`plan_rewriting` / :func:`run_plan` — a rewriting
  :class:`~repro.query.algebra.Plan` against materialized view extents,
  with hash joins that reuse the extents' cached hash indexes.

The ``engine`` knob selects the join algorithm:

* ``index-nested-loop`` — probe the store's pattern indexes per row
  (the seed evaluator's strategy, with the join order frozen at plan
  time instead of re-counted at every recursion step);
* ``hash`` — materialize each atom match and hash-join pairwise;
* ``merge`` — sort-merge joins over dictionary codes, feeding from the
  store's sorted-permutation iterators where the order matches;
* ``auto`` — index-nested-loop for connected join steps, hash joins for
  Cartesian steps (where per-row probing would rescan the store).

Over extents the store-specific strategies degrade gracefully: ``auto``
and ``index-nested-loop`` resolve to hash joins (there is no triple
index to probe), ``merge`` sorts decoded terms by their N-Triples
rendering.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.engine.operators import (
    Empty,
    ExtentScan,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    MergeJoin,
    Operator,
    Projection,
    Relabel,
    Selection,
)
from repro.query import algebra
from repro.query.cq import Atom, ConjunctiveQuery, Variable
from repro.rdf.store import TripleStore
from repro.rdf.terms import Term

#: The selectable join strategies.
ENGINES = ("auto", "index-nested-loop", "hash", "merge")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; pick from {ENGINES}")


# ----------------------------------------------------------------------
# Conjunctive queries against a triple store
# ----------------------------------------------------------------------


def _atom_count(atom: Atom, store: TripleStore, statistics) -> int:
    """The atom's cardinality estimate used for join ordering.

    With a statistics provider this is one cached lookup per atom (the
    cost-model cardinalities of Section 3.3); without one the store's
    exact pattern count is read directly. Either way the count is taken
    once at plan time, never during execution.
    """
    if statistics is not None:
        return statistics.atom_count(atom)
    encoded: list[int | None] = []
    for term in atom:
        if isinstance(term, Variable):
            encoded.append(None)
        else:
            code = store.encode_term(term)
            if code is None:
                return 0
            encoded.append(code)
    return store.count_encoded((encoded[0], encoded[1], encoded[2]))


def _join_order(query: ConjunctiveQuery, store: TripleStore, statistics) -> list[int]:
    """Greedy selectivity order: start from the rarest atom, then always
    expand with the rarest atom connected to the variables bound so far
    (falling back to a Cartesian step only when nothing is connected)."""
    atoms = query.atoms
    counts = [_atom_count(atom, store, statistics) for atom in atoms]
    remaining = set(range(len(atoms)))
    order: list[int] = []
    bound: set[Variable] = set()
    while remaining:
        if bound:
            connected = [i for i in remaining if atoms[i].variables() & bound]
            pool = connected or sorted(remaining)
        else:
            pool = sorted(remaining)
        best = min(pool, key=lambda i: (counts[i], i))
        order.append(best)
        remaining.discard(best)
        bound |= atoms[best].variables()
    return order


def _natural_pairs(
    left_schema: tuple[str, ...], right_schema: tuple[str, ...]
) -> tuple[list[tuple[int, int]], list[int]]:
    """Natural-join position pairs plus the right positions to keep."""
    pairs = [
        (left_schema.index(column), position)
        for position, column in enumerate(right_schema)
        if column in left_schema
    ]
    keep_right = [
        position
        for position, column in enumerate(right_schema)
        if column not in left_schema
    ]
    return pairs, keep_right


#: Flush threshold for a single store's prepared plans (a workload far
#: larger than anything the selection search produces).
_PLAN_CACHE_LIMIT = 4096


def plan_query(
    query: ConjunctiveQuery,
    store: TripleStore,
    engine: str = "auto",
    statistics=None,
) -> Operator:
    """Compile a conjunctive query into a physical operator tree.

    The resulting operator yields rows of dictionary codes whose schema
    covers every body variable (by name); :func:`run_query` adds head
    assembly and decoding.

    Plans compiled without an explicit ``statistics`` provider are
    cached per store (prepared-statement style) and reused until the
    store mutates — repeated workload evaluation pays join ordering and
    operator construction once.
    """
    _check_engine(engine)
    if statistics is None:
        # Prepared plans live *on the store instance* (operator trees
        # reference the store, so an external registry keyed by store
        # could never be collected; the instance attribute only forms a
        # reference cycle, which the garbage collector handles). A
        # version mismatch flushes the whole dictionary.
        entry = getattr(store, "_engine_plan_cache", None)
        version = store.version
        if entry is None or entry["version"] != version:
            entry = {"version": version, "plans": {}}
            store._engine_plan_cache = entry
        plans = entry["plans"]
        key = (query, engine)
        cached = plans.get(key)
        if cached is not None:
            return cached
        root = _compile_query(query, store, engine, None)
        if len(plans) >= _PLAN_CACHE_LIMIT:
            plans.clear()
        plans[key] = root
        return root
    return _compile_query(query, store, engine, statistics)


def _compile_query(
    query: ConjunctiveQuery,
    store: TripleStore,
    engine: str,
    statistics,
) -> Operator:
    non_literal = query.non_literal
    variable_schema = tuple(
        sorted({v.name for v in query.variables()})
    )
    for atom in query.atoms:
        for term in atom:
            if not isinstance(term, Variable) and store.encode_term(term) is None:
                # A constant the data never mentions: the whole query is
                # unsatisfiable, no operator needs to run.
                return Empty(variable_schema)
    order = _join_order(query, store, statistics)
    atoms = query.atoms
    root: Operator = IndexScan(store, atoms[order[0]], non_literal)
    for index in order[1:]:
        atom = atoms[index]
        if engine == "index-nested-loop":
            root = IndexNestedLoopJoin(root, store, atom, non_literal)
            continue
        if engine == "auto":
            connected = any(
                isinstance(term, Variable) and term.name in root.schema for term in atom
            )
            if connected:
                root = IndexNestedLoopJoin(root, store, atom, non_literal)
                continue
        right: Operator = IndexScan(store, atom, non_literal)
        pairs, keep_right = _natural_pairs(root.schema, right.schema)
        if engine == "merge":
            if len(pairs) == 1:
                column = right.schema[pairs[0][1]]
                # Feed the merge from the store's sorted permutations
                # when a leaf can produce the order natively.
                if isinstance(root, IndexScan) and root.sort_by != column:
                    root = IndexScan(store, root.atom, non_literal, sort_by=column)
                right = IndexScan(store, atom, non_literal, sort_by=column)
                pairs, keep_right = _natural_pairs(root.schema, right.schema)
            root = MergeJoin(root, right, pairs, keep_right)
        else:
            root = HashJoin(root, right, pairs, keep_right)
    return root


def run_query(
    query: ConjunctiveQuery,
    store: TripleStore,
    engine: str = "auto",
    statistics=None,
) -> set[tuple[Term, ...]]:
    """All answers of the query on the store (set semantics, decoded)."""
    root = plan_query(query, store, engine=engine, statistics=statistics)
    schema = root.schema
    slots: list[int | None] = []
    constants: list[Term | None] = []
    for term in query.head:
        if isinstance(term, Variable):
            slots.append(schema.index(term.name))
            constants.append(None)
        else:
            slots.append(None)
            constants.append(term)
    decode = store.dictionary.decode
    answers: set[tuple[Term, ...]] = set()
    decoded_cache: dict[int, Term] = {}
    for row in root:
        answer = []
        for slot, constant in zip(slots, constants):
            if slot is None:
                answer.append(constant)
            else:
                code = row[slot]
                term = decoded_cache.get(code)
                if term is None:
                    term = decode(code)
                    decoded_cache[code] = term
                answer.append(term)
        answers.add(tuple(answer))
    return answers


# ----------------------------------------------------------------------
# Rewriting plans against materialized view extents
# ----------------------------------------------------------------------


def _compile_conditions(
    conditions: Sequence[algebra.Condition], schema: tuple[str, ...]
):
    index = {column: position for position, column in enumerate(schema)}
    checks: list[tuple[int, object, int | None]] = []
    for condition in conditions:
        if isinstance(condition, algebra.EqualsConstant):
            checks.append((index[condition.column], condition.value, None))
        else:
            checks.append((index[condition.left], None, index[condition.right]))

    def predicate(row) -> bool:
        for position, value, other in checks:
            if other is None:
                if row[position] != value:
                    return False
            elif row[position] != row[other]:
                return False
        return True

    return predicate


def _term_sort_key(term: Term) -> str:
    return term.n3()


def plan_rewriting(
    plan: algebra.Plan,
    extents: Mapping[str, Sequence[tuple]],
    engine: str = "auto",
) -> Operator:
    """Compile a rewriting plan into a physical operator tree over extents."""
    _check_engine(engine)
    if isinstance(plan, algebra.Scan):
        try:
            rows = extents[plan.view]
        except KeyError as exc:
            raise KeyError(f"no extent provided for view {plan.view!r}") from exc
        return ExtentScan(plan.view, rows, plan.schema)
    if isinstance(plan, algebra.Select):
        child = plan_rewriting(plan.child, extents, engine)
        return Selection(child, _compile_conditions(plan.conditions, child.schema))
    if isinstance(plan, algebra.Project):
        child = plan_rewriting(plan.child, extents, engine)
        positions = [child.schema.index(column) for column in plan.columns]
        return Projection(child, positions, tuple(plan.columns), distinct=True)
    if isinstance(plan, algebra.Rename):
        child = plan_rewriting(plan.child, extents, engine)
        return Relabel(child, tuple(plan.columns))
    left = plan_rewriting(plan.left, extents, engine)
    right = plan_rewriting(plan.right, extents, engine)
    left_schema, right_schema = plan.left.schema, plan.right.schema
    pairs = [
        (left_schema.index(l), right_schema.index(r)) for l, r in plan.all_pairs
    ]
    keep_right = [
        position
        for position, column in enumerate(right_schema)
        if column not in left_schema
    ]
    if engine == "merge":
        return MergeJoin(left, right, pairs, keep_right, value_key=_term_sort_key)
    # auto / index-nested-loop / hash: extents carry no triple indexes to
    # probe, so everything funnels into the (extent-indexed) hash join.
    return HashJoin(left, right, pairs, keep_right)


def run_plan(
    plan: algebra.Plan,
    extents: Mapping[str, Sequence[tuple]],
    engine: str = "auto",
) -> list[tuple]:
    """Execute a rewriting plan over view extents.

    Matches the historical ``algebra.execute`` contract: duplicates are
    preserved except through ``Project``, and with the default engine
    the row order is exactly the seed's (scan order, hash joins
    streaming the left input).
    """
    return list(plan_rewriting(plan, extents, engine))
