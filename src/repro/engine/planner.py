"""Plan compilation: one engine for queries-on-stores and plans-on-views.

Two entry families compile into the *same* physical operator algebra
(:mod:`repro.engine.operators`):

* :func:`plan_query` / :func:`run_query` — a
  :class:`~repro.query.cq.ConjunctiveQuery` against a
  :class:`~repro.rdf.store.TripleStore`. Atoms are ordered **once** by
  the shared :class:`~repro.stats.estimator.CardinalityEstimator` (over
  the store's incrementally maintained catalog, or any explicit
  :class:`~repro.stats.provider.Statistics` provider), then compiled
  into a left-deep join tree.
* :func:`plan_rewriting` / :func:`run_plan` — a rewriting
  :class:`~repro.query.algebra.Plan` against materialized view extents,
  with hash joins that reuse the extents' cached hash indexes.

The ``engine`` knob selects the join algorithm:

* ``index-nested-loop`` — probe the store's pattern indexes per row
  (the seed evaluator's strategy, with the join order frozen at plan
  time instead of re-counted at every recursion step);
* ``hash`` — materialize each atom match and hash-join pairwise;
* ``merge`` — sort-merge joins over dictionary codes, feeding from the
  store's sorted-permutation iterators where the order matches;
* ``auto`` — **cost-based selection**: the estimator prices each fixed
  strategy — plus, on queries mixing connected and Cartesian steps, a
  hybrid plan (index probes + hash joins) — from the estimated
  input/output cardinality of every join step (see
  :func:`choose_engine`) and the cheapest one is compiled. The choice
  is cached in the prepared-plan cache alongside the plan, so repeated
  workloads pay the selection once per store version.

On storage backends that are SQL engines themselves (the SQLite
backend), ``auto`` gains a third physical route next to the operator
tree: **whole-plan SQL pushdown**. :func:`plan_pushdown` compiles the
entire conjunctive query — self-joins, constant selections, head
projection, DISTINCT — into one SQL statement
(:mod:`repro.engine.sqlcompile`) executed inside the backend, and
:func:`run_query` prefers it whenever the query is expressible; shapes
SQL cannot express (and every explicit fixed engine, kept as the
interpreted baseline) fall back to the operator tree. Compiled
statements live in the same prepared-plan cache as operator trees,
under the ``(query, engine, workers)`` keying scheme with
:data:`SQL_PUSHDOWN` in the engine slot, and are flushed with it when
the store mutates.

Over extents the store-specific strategies degrade gracefully: ``auto``
and ``index-nested-loop`` resolve to hash joins (there is no triple
index to probe), ``merge`` sorts decoded terms by their N-Triples
rendering; extent rows live in Python lists, so the rewriting route
never pushes down.

Execution is batched by default — columnar layout
(:meth:`~repro.engine.operators.Operator.column_batches`) with
``layout="row"`` kept as the ablation baseline; see
:mod:`repro.engine.operators` for both batch contracts. Compilation
annotates every operator with an adaptive batch size derived from the
same estimated cardinalities the engine choice prices (used when
``batch_size="adaptive"``). With ``workers > 1``, hash-join steps
whose estimated cardinalities clear :data:`PARALLEL_ROW_THRESHOLD`
run as parallel partitioned hash joins over a cached process pool,
and unsorted leaf scans clearing :data:`MORSEL_PARALLEL_THRESHOLD`
pull their matches as pool-projected morsels.
"""

from __future__ import annotations

import logging
import math
import time
from typing import Iterable, Mapping, Sequence

from repro.engine.operators import (
    ADAPTIVE_BATCH_SIZE,
    DEFAULT_BATCH_SIZE,
    Empty,
    ExtentScan,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    MergeJoin,
    Operator,
    PartitionedHashJoin,
    Projection,
    Relabel,
    Selection,
    _projector,
)
from repro.engine.sqlcompile import CompiledQuery, compile_query
from repro.obs import metrics, tracing
from repro.query import algebra
from repro.query.cq import ConjunctiveQuery, Variable
from repro.rdf.store import TripleStore
from repro.rdf.terms import Term
from repro.stats.estimator import CardinalityEstimator
from repro.stats.provider import CatalogStatistics

_LOG = logging.getLogger("repro.engine")

#: The selectable join strategies.
ENGINES = ("auto", "index-nested-loop", "hash", "merge")

#: The fixed (pure) strategies cost-based selection chooses among.
FIXED_ENGINES = ("index-nested-loop", "hash", "merge")

#: Internal candidate for queries mixing connected and Cartesian steps:
#: index probes for connected joins, hash joins for Cartesian ones.
#: Not user-selectable (``engine=`` rejects it); ``choose_engine`` may
#: return it when it prices below every pure strategy.
HYBRID = "hybrid"

#: The whole-plan SQL pushdown route: the entire conjunctive query runs
#: as one SQL statement inside the storage backend. Not user-selectable
#: (``engine=`` rejects it — the fixed engines stay the interpreted
#: baseline); ``choose_engine`` returns it when ``auto`` resolves to a
#: pushdown-eligible plan on a SQL-capable backend, and it is the
#: engine-slot token under which compiled statements are cached.
SQL_PUSHDOWN = "sql-pushdown"


#: Estimated rows (join input + build side) a hash-join step must reach
#: before the planner swaps in the parallel :class:`PartitionedHashJoin`.
#: Below it, partitioning overhead would cost more than it parallelizes
#: away — small Figure-8-style queries keep their streaming-join latency.
PARALLEL_ROW_THRESHOLD = 50_000

#: Estimated cardinality a base scan must reach before the planner
#: turns on morsel-driven parallel scanning (``workers > 1``). Well
#: below :data:`PARALLEL_ROW_THRESHOLD`: a morsel costs one pickle
#: round-trip, not a full input materialization, so scans parallelize
#: profitably long before partitioned joins do.
MORSEL_PARALLEL_THRESHOLD = 16_384

#: Clamp bounds of the adaptive per-operator batch size.
_ADAPTIVE_MIN_BATCH = 64
_ADAPTIVE_MAX_BATCH = 8_192


def _adaptive_batch_size(estimate: float) -> int:
    """The per-operator batch size for an estimated cardinality.

    The smallest power of two covering the estimate, clamped to
    [``64``, ``8192``]: an operator expected to produce a handful of
    rows gets one small batch (no thousand-slot churn for nothing),
    while a large scan gets wide batches that amortize the per-batch
    hand-off. Powers of two keep the distinct sizes (and thus plan
    variety) tiny.
    """
    size = _ADAPTIVE_MIN_BATCH
    while size < estimate and size < _ADAPTIVE_MAX_BATCH:
        size *= 2
    return size


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; pick from {ENGINES}")


def _check_batch_size(batch_size) -> int | str | None:
    """Normalize a public ``batch_size``: None/0 → tuple path, else ≥ 1.

    The string :data:`~repro.engine.operators.ADAPTIVE_BATCH_SIZE`
    (``"adaptive"``) passes through: each operator then resolves its
    planner-annotated preferred size. Any other string is rejected.

    A negative size would silently produce empty batches downstream
    (``range``/``islice``/``fetchmany`` all treat it as "nothing"), so
    it is rejected here at the API boundary instead.
    """
    if batch_size == ADAPTIVE_BATCH_SIZE:
        return ADAPTIVE_BATCH_SIZE
    if isinstance(batch_size, str):
        raise ValueError(
            f"batch_size must be an int, None or {ADAPTIVE_BATCH_SIZE!r}, "
            f"got {batch_size!r}"
        )
    if not batch_size:  # None or 0: the tuple-at-a-time path
        return None
    if batch_size < 0:
        raise ValueError(f"batch_size must be positive, 0 or None, got {batch_size}")
    return batch_size


# ----------------------------------------------------------------------
# Conjunctive queries against a triple store
# ----------------------------------------------------------------------


def _estimator(store: TripleStore, statistics) -> CardinalityEstimator:
    """The estimator join ordering and engine selection run on.

    Without an explicit provider, estimates read the store's own
    incrementally maintained catalog — exact pattern counts, O(1) per
    lookup, memoized per store version.
    """
    if statistics is None:
        statistics = CatalogStatistics(store.stats)
    return CardinalityEstimator(statistics)


# Per-row work factors of the engine cost model, in "rows touched"
# units. An index-nested-loop probe fills a fresh pattern per input row
# before the index lookup, which costs more than streaming a row past a
# prebuilt hash table; a hash build inserts into a dict. The absolute
# scale cancels out — only the ratios steer the choice.
_INL_PROBE_COST = 2.0
_HASH_BUILD_COST = 1.5


def _strategy_costs(
    query: ConjunctiveQuery, estimator: CardinalityEstimator
) -> dict[str, float]:
    """Estimated execution cost of each fixed strategy for one query.

    Walks the greedy join order once; every step is priced from the
    estimator's input/output cardinalities:

    * index-nested-loop — one index probe per input row plus the output
      (a Cartesian step degrades to re-scanning the atom's matches per
      input row, which is what the compiled operator would do);
    * hash — build the atom's matches, stream the input, emit the
      output;
    * merge — materialize and sort both sides (``n log n``) plus one
      merge pass; the first join over a single shared column feeds
      presorted from the store's permutation indexes, so its sorts are
      free;
    * hybrid (only priced when the order mixes connected and Cartesian
      steps — it degenerates to a pure strategy otherwise) — index
      probes for connected steps, hash joins for Cartesian ones.
    """
    atoms = query.atoms
    order = estimator.join_order(atoms)
    counts = [float(estimator.atom_cardinality(atoms[i])) for i in order]
    prefix = estimator.prefix_cardinalities(atoms, order)
    scan = counts[0]
    costs = {name: scan for name in FIXED_ENGINES + (HYBRID,)}
    step_kinds: set[bool] = set()
    bound = set(atoms[order[0]].variables())
    for step in range(1, len(order)):
        atom = atoms[order[step]]
        matches = counts[step]
        rows_in = prefix[step - 1]
        rows_out = prefix[step]
        shared = atom.variables() & bound
        step_kinds.add(bool(shared))
        if shared:
            inl_step = rows_in * _INL_PROBE_COST + rows_out
        else:
            inl_step = rows_in * max(matches, 1.0) + rows_out
        hash_step = matches * _HASH_BUILD_COST + rows_in + rows_out
        costs["index-nested-loop"] += inl_step
        costs["hash"] += hash_step
        costs[HYBRID] += inl_step if shared else hash_step
        presorted = step == 1 and len(shared) == 1
        sort_cost = 0.0 if presorted else (
            rows_in * math.log2(max(rows_in, 2.0))
            + matches * math.log2(max(matches, 2.0))
        )
        costs["merge"] += sort_cost + rows_in + matches + rows_out
        bound |= atom.variables()
    if step_kinds != {True, False}:
        # All steps connected (or all Cartesian): the hybrid plan is
        # identical to a pure strategy, so don't offer it as a choice.
        del costs[HYBRID]
    return costs


def _select_engine(query: ConjunctiveQuery, estimator: CardinalityEstimator) -> str:
    """The cheapest strategy under the estimator's cost model.

    Candidates are the pure strategies plus, for queries mixing
    connected and Cartesian join steps, the hybrid plan. Ties break in
    candidate order (``min`` is stable), keeping the choice
    deterministic; single-atom queries compile to a bare scan under
    every strategy, so the first fixed engine is returned outright.
    """
    if len(query.atoms) <= 1:
        return FIXED_ENGINES[0]
    costs = _strategy_costs(query, estimator)
    return min(costs, key=costs.__getitem__)


#: Cache marker for "compiled before, not expressible as one statement"
#: — distinguishes a cached negative from a cache miss.
_PUSHDOWN_INELIGIBLE = object()


def plan_pushdown(
    query: ConjunctiveQuery, store: TripleStore, workers: int = 1
) -> CompiledQuery | None:
    """The whole-plan SQL pushdown route for this query, if it exists.

    Returns the compiled single-statement form
    (:class:`~repro.engine.sqlcompile.CompiledQuery`) when the store's
    backend can execute SQL plans (``supports_sql_plans``) and the
    query is expressible as one statement; ``None`` otherwise — the
    caller falls back to the interpreted operator tree. Compilation
    results (including the negative) are cached in the store's
    prepared-plan cache under the ``(query, engine, workers)`` scheme
    with :data:`SQL_PUSHDOWN` in the engine slot, so repeated workloads
    pay SQL generation once per store version; any mutation flushes the
    entry, which also re-validates provably-empty compilations whose
    missing constants may have appeared.
    """
    if not getattr(store.backend, "supports_sql_plans", False):
        return None
    entry = _plan_cache_entry(store)
    plans = entry["plans"]
    key = (query, SQL_PUSHDOWN, workers)
    cached = plans.get(key)
    if cached is not None:
        if metrics.enabled:
            metrics.inc("engine.plan_cache.hit")
        return None if cached is _PUSHDOWN_INELIGIBLE else cached
    if metrics.enabled:
        metrics.inc("engine.plan_cache.miss")
    compiled = compile_query(query, store)
    if len(plans) >= _PLAN_CACHE_LIMIT:
        plans.clear()
    plans[key] = _PUSHDOWN_INELIGIBLE if compiled is None else compiled
    return compiled


def choose_engine(
    query: ConjunctiveQuery,
    store: TripleStore,
    statistics=None,
    pushdown: bool = True,
) -> str:
    """The strategy ``engine="auto"`` resolves to for this query.

    On a backend that executes SQL plans itself, a pushdown-eligible
    query resolves to :data:`SQL_PUSHDOWN` — the whole plan runs as one
    statement inside the backend, which beats any interpreted join
    strategy on a driver-crossing backend. ``pushdown=False`` reports
    the interpreted choice instead (what the operator-tree fallback and
    the tuple-at-a-time path compile). Otherwise the choice is
    cost-based: each candidate — the pure strategies of
    :data:`FIXED_ENGINES` plus, on queries mixing connected and
    Cartesian join steps, the :data:`HYBRID` plan — is priced from the
    estimated input and output cardinality of every join step (see
    :func:`_strategy_costs`). Without an explicit ``statistics``
    provider the choice is cached in the store's prepared-plan cache
    and flushed with it when the store mutates.

    >>> from repro.query.parser import parse_query
    >>> from repro.rdf.ntriples import parse_ntriples
    >>> from repro.rdf.store import TripleStore
    >>> store = TripleStore()
    >>> _ = store.add_all(parse_ntriples('''
    ... <http://e/a> <http://e/knows> <http://e/b> .
    ... <http://e/b> <http://e/knows> <http://e/c> .
    ... '''))
    >>> query = parse_query(
    ...     "q(X, Z) :- t(X, <http://e/knows>, Y), t(Y, <http://e/knows>, Z)")
    >>> choose_engine(query, store) in FIXED_ENGINES + (HYBRID,)
    True
    """
    if statistics is None:
        if pushdown and plan_pushdown(query, store) is not None:
            return SQL_PUSHDOWN
        return _cached_choice(
            _plan_cache_entry(store), query, _estimator(store, None)
        )
    return _select_engine(query, _estimator(store, statistics))


def _cached_choice(
    entry: dict, query: ConjunctiveQuery, estimator: CardinalityEstimator
) -> str:
    """Look up (or derive and cache) the auto choice in a cache entry.

    Shared by :func:`choose_engine` and :func:`plan_query` so the
    lookup/populate/cap logic exists once. Capped like the plan dict:
    a long-lived store serving endless distinct ad-hoc queries must not
    grow the choices dict without bound.
    """
    choices = entry["choices"]
    choice = choices.get(query)
    if choice is None:
        choice = _select_engine(query, estimator)
        if len(choices) >= _PLAN_CACHE_LIMIT:
            choices.clear()
        choices[query] = choice
    return choice


def _natural_pairs(
    left_schema: tuple[str, ...], right_schema: tuple[str, ...]
) -> tuple[list[tuple[int, int]], list[int]]:
    """Natural-join position pairs plus the right positions to keep."""
    pairs = [
        (left_schema.index(column), position)
        for position, column in enumerate(right_schema)
        if column in left_schema
    ]
    keep_right = [
        position
        for position, column in enumerate(right_schema)
        if column not in left_schema
    ]
    return pairs, keep_right


#: Flush threshold for a single store's prepared plans (a workload far
#: larger than anything the selection search produces).
_PLAN_CACHE_LIMIT = 4096


def _plan_cache_entry(store: TripleStore) -> dict:
    """The store's prepared-plan cache entry for its current version.

    Prepared plans live *on the store instance* (operator trees
    reference the store, so an external registry keyed by store could
    never be collected; the instance attribute only forms a reference
    cycle, which the garbage collector handles). A version mismatch
    flushes the whole entry — compiled plans and cost-based engine
    choices alike, since both derive from the statistics of the old
    contents.
    """
    entry = getattr(store, "_engine_plan_cache", None)
    version = store.version
    if entry is None or entry["version"] != version:
        if metrics.enabled and entry is not None:
            metrics.inc("engine.plan_cache.flush")
        entry = {"version": version, "plans": {}, "choices": {}}
        store._engine_plan_cache = entry
    return entry


def plan_query(
    query: ConjunctiveQuery,
    store: TripleStore,
    engine: str = "auto",
    statistics=None,
    workers: int = 1,
) -> Operator:
    """Compile a conjunctive query into a physical operator tree.

    The resulting operator yields rows of dictionary codes whose schema
    covers every body variable (by name); :func:`run_query` adds head
    assembly and decoding. ``engine="auto"`` resolves to the cheapest
    fixed strategy under the cost model (:func:`choose_engine`).

    With ``workers > 1``, hash-join steps whose estimated input and
    build cardinalities reach :data:`PARALLEL_ROW_THRESHOLD` compile to
    the parallel :class:`~repro.engine.operators.PartitionedHashJoin`;
    everything below the threshold keeps the streaming operators, so
    requesting workers never penalizes small queries.

    Plans compiled without an explicit ``statistics`` provider are
    cached per store (prepared-statement style) and reused until the
    store mutates — repeated workload evaluation pays join ordering,
    engine selection and operator construction once.
    """
    _check_engine(engine)
    if statistics is None:
        entry = _plan_cache_entry(store)
        plans = entry["plans"]
        key = (query, engine, workers)
        cached = plans.get(key)
        if cached is not None:
            if metrics.enabled:
                metrics.inc("engine.plan_cache.hit")
            return cached
        if metrics.enabled:
            metrics.inc("engine.plan_cache.miss")
        with tracing.span("engine.plan_query", query=query.name, engine=engine):
            estimator = _estimator(store, None)
            resolved = engine
            if engine == "auto":
                resolved = _cached_choice(entry, query, estimator)
            root = _compile_query(query, store, resolved, estimator, workers)
        if len(plans) >= _PLAN_CACHE_LIMIT:
            plans.clear()
        plans[key] = root
        if metrics.enabled:
            metrics.gauge("engine.plan_cache.size", len(plans))
        return root
    estimator = _estimator(store, statistics)
    resolved = _select_engine(query, estimator) if engine == "auto" else engine
    return _compile_query(query, store, resolved, estimator, workers)


def _compile_query(
    query: ConjunctiveQuery,
    store: TripleStore,
    engine: str,
    estimator: CardinalityEstimator,
    workers: int = 1,
) -> Operator:
    """Compile under one resolved strategy — a fixed engine or
    :data:`HYBRID` (``auto`` is resolved upstream).

    Besides building the tree, compilation annotates every operator
    with its adaptive batch size (from the same estimated cardinalities
    the engine choice prices — consulted only when the caller runs with
    ``batch_size="adaptive"``) and turns on morsel-parallel scanning
    for unsorted leaf scans whose estimate clears
    :data:`MORSEL_PARALLEL_THRESHOLD` when ``workers > 1``. Both
    annotations ride the prepared-plan cache with the tree.
    """
    non_literal = query.non_literal
    variable_schema = tuple(
        sorted({v.name for v in query.variables()})
    )
    for atom in query.atoms:
        for term in atom:
            if not isinstance(term, Variable) and store.encode_term(term) is None:
                # A constant the data never mentions: the whole query is
                # unsatisfiable, no operator needs to run.
                return Empty(variable_schema)
    order = estimator.join_order(query.atoms)
    atoms = query.atoms
    counts = [float(estimator.atom_cardinality(atoms[i])) for i in order]
    prefix = estimator.prefix_cardinalities(atoms, order)
    parallel_steps: set[int] = set()
    if workers > 1 and len(order) > 1:
        # A hash-join step goes parallel-partitioned only when the
        # estimated work (probe input + build side) clears the
        # threshold; small queries keep their streaming joins.
        for step in range(1, len(order)):
            if prefix[step - 1] + counts[step] >= PARALLEL_ROW_THRESHOLD:
                parallel_steps.add(step)

    def scan(atom, estimate: float, sort_by: str | None = None) -> IndexScan:
        leaf = IndexScan(store, atom, non_literal, sort_by=sort_by)
        leaf.preferred_batch_size = _adaptive_batch_size(estimate)
        if (
            workers > 1
            and sort_by is None
            and not leaf._nl
            and estimate >= MORSEL_PARALLEL_THRESHOLD
        ):
            # Morsel-parallel scanning: the scan pulls its matches as
            # pool-projected morsels. Literal-filtered scans stay
            # serial (the filter needs the dictionary in-process).
            leaf.morsel_workers = workers
        return leaf

    def sized(operator: Operator, estimate: float) -> Operator:
        operator.preferred_batch_size = _adaptive_batch_size(estimate)
        return operator

    root: Operator = scan(atoms[order[0]], counts[0])
    for step, index in enumerate(order[1:], start=1):
        atom = atoms[index]
        if engine == "index-nested-loop":
            root = sized(
                IndexNestedLoopJoin(root, store, atom, non_literal), prefix[step]
            )
            continue
        if engine == HYBRID:
            connected = any(
                isinstance(term, Variable) and term.name in root.schema
                for term in atom
            )
            if connected:
                root = sized(
                    IndexNestedLoopJoin(root, store, atom, non_literal),
                    prefix[step],
                )
                continue
            # Cartesian step: fall through to a hash join.
        right: Operator = scan(atom, counts[step])
        pairs, keep_right = _natural_pairs(root.schema, right.schema)
        if engine == "merge":
            if len(pairs) == 1:
                column = right.schema[pairs[0][1]]
                # Feed the merge from the store's sorted permutations
                # when a leaf can produce the order natively.
                if isinstance(root, IndexScan) and root.sort_by != column:
                    root = scan(root.atom, counts[0], sort_by=column)
                right = scan(atom, counts[step], sort_by=column)
                pairs, keep_right = _natural_pairs(root.schema, right.schema)
            root = sized(MergeJoin(root, right, pairs, keep_right), prefix[step])
        elif step in parallel_steps:
            root = sized(
                PartitionedHashJoin(root, right, pairs, keep_right, workers=workers),
                prefix[step],
            )
        else:
            root = sized(HashJoin(root, right, pairs, keep_right), prefix[step])
    return root


def run_query(
    query: ConjunctiveQuery,
    store: TripleStore,
    engine: str = "auto",
    statistics=None,
    batch_size: int | str | None = DEFAULT_BATCH_SIZE,
    workers: int = 1,
    pushdown: bool = True,
    layout: str = "columnar",
) -> set[tuple[Term, ...]]:
    """All answers of the query on the store (set semantics, decoded).

    With ``engine="auto"`` on a SQL-capable backend, an eligible query
    runs as **one pushed-down SQL statement** inside the backend
    (:func:`plan_pushdown`) — the whole join pipeline evaluates next to
    the data and Python decodes one row per distinct head image.
    ``pushdown=False`` forces the interpreted operator tree (the
    measured ablation baseline), as do explicit fixed engines, an
    explicit ``statistics`` provider, and the tuple-at-a-time path
    (``batch_size=None``) — both baselines stay observable.

    Otherwise execution is batched by default: ``layout="columnar"``
    (the default) drives the plan through the vectorized
    ``column_batches`` path and folds whole column batches into the
    answer-image set; ``layout="row"`` keeps the row-list batches of
    PR 4 as the measured ablation baseline. ``batch_size`` sets the
    rows per operator hand-off — an int, or ``"adaptive"`` to let each
    operator use its planner-annotated size; ``batch_size=None``
    selects the tuple-at-a-time path, kept as the measured baseline of
    the batched engine. The answer set is identical on every route.
    ``workers`` enables the parallel partitioned hash join and
    morsel-parallel scans on plans the cost model deems big enough
    (see :func:`plan_query`).

    >>> from repro.query.parser import parse_query
    >>> from repro.rdf.ntriples import parse_ntriples
    >>> from repro.rdf.store import TripleStore
    >>> store = TripleStore()
    >>> _ = store.add_all(parse_ntriples('''
    ... <http://e/a> <http://e/knows> <http://e/b> .
    ... <http://e/b> <http://e/knows> <http://e/c> .
    ... '''))
    >>> query = parse_query(
    ...     "q(X, Z) :- t(X, <http://e/knows>, Y), t(Y, <http://e/knows>, Z)")
    >>> answers = run_query(query, store)
    >>> sorted((s.n3(), o.n3()) for s, o in answers)
    [('<http://e/a>', '<http://e/c>')]
    >>> run_query(query, store, batch_size=None) == answers  # tuple path
    True
    """
    # Observability detour, costing one flag check per query when off:
    # a span, a latency histogram sample, and the slow-query warning.
    if (
        metrics.enabled
        or metrics.slow_query_ms is not None
        or tracing.sink is not None
    ):
        started = time.perf_counter()
        with tracing.span("engine.run_query", query=query.name, engine=engine):
            answers = _run_query(
                query, store, engine, statistics, batch_size, workers,
                pushdown, layout,
            )
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        if metrics.enabled:
            metrics.inc("engine.queries")
            metrics.observe("engine.query_ms", elapsed_ms)
        threshold = metrics.slow_query_ms
        if threshold is not None and elapsed_ms > threshold:
            _LOG.warning(
                "slow query %s: %.1f ms (threshold %.0f ms)",
                query.name, elapsed_ms, threshold,
            )
        return answers
    return _run_query(
        query, store, engine, statistics, batch_size, workers, pushdown, layout
    )


#: The selectable batch layouts of the interpreted batched path.
LAYOUTS = ("columnar", "row")


def _check_layout(layout: str) -> None:
    if layout not in LAYOUTS:
        raise ValueError(f"unknown layout {layout!r}; pick from {LAYOUTS}")


def _run_query(
    query: ConjunctiveQuery,
    store: TripleStore,
    engine: str,
    statistics,
    batch_size,
    workers: int,
    pushdown: bool,
    layout: str = "columnar",
) -> set[tuple[Term, ...]]:
    batch_size = _check_batch_size(batch_size)
    _check_layout(layout)
    if (
        pushdown
        and engine == "auto"
        and statistics is None
        and batch_size is not None
    ):
        compiled = plan_pushdown(query, store, workers)
        if compiled is not None:
            if metrics.enabled:
                metrics.inc("engine.route.pushdown")
            return compiled.execute(store)
    if metrics.enabled:
        metrics.inc("engine.route.interpreted")
    root = plan_query(
        query, store, engine=engine, statistics=statistics, workers=workers
    )
    schema = root.schema
    slots: list[int | None] = []
    constants: list[Term | None] = []
    for term in query.head:
        if isinstance(term, Variable):
            slots.append(schema.index(term.name))
            constants.append(None)
        else:
            slots.append(None)
            constants.append(term)
    decode = store.dictionary.decode
    if batch_size is not None and all(slot is not None for slot in slots):
        # Batched fast path for all-variable heads: deduplicate *encoded*
        # head images first, then decode each distinct image once.
        images: set[tuple] = set()
        nbatches = nrows = 0
        if layout == "columnar":
            # Columnar drive: pick the head columns off each batch and
            # fold the whole transposed batch into the image set in one
            # C-speed ``set.update(zip(...))`` — no Python-level row loop.
            for cb in root.column_batches(batch_size):
                nbatches += 1
                nrows += len(cb)
                if slots:
                    images.update(zip(*(cb.columns[slot] for slot in slots)))
                else:
                    images.add(())
        else:
            project = _projector(slots)
            for batch in root.batches(batch_size):
                nbatches += 1
                nrows += len(batch)
                images.update([project(row) for row in batch])
        if metrics.enabled:
            metrics.inc("engine.batch.count", nbatches)
            metrics.inc("engine.batch.rows", nrows)
        decoded_cache: dict[int, Term] = {}
        answers: set[tuple[Term, ...]] = set()
        for image in images:
            answer = []
            for code in image:
                term = decoded_cache.get(code)
                if term is None:
                    term = decode(code)
                    decoded_cache[code] = term
                answer.append(term)
            answers.add(tuple(answer))
        return answers
    rows: Iterable = (
        root
        if batch_size is None
        else (row for batch in root.batches(batch_size) for row in batch)
    )
    answers = set()
    cache: dict[int, Term] = {}
    for row in rows:
        answer = []
        for slot, constant in zip(slots, constants):
            if slot is None:
                answer.append(constant)
            else:
                code = row[slot]
                term = cache.get(code)
                if term is None:
                    term = decode(code)
                    cache[code] = term
                answer.append(term)
        answers.add(tuple(answer))
    return answers


# ----------------------------------------------------------------------
# Rewriting plans against materialized view extents
# ----------------------------------------------------------------------


def _compile_conditions(
    conditions: Sequence[algebra.Condition], schema: tuple[str, ...]
):
    index = {column: position for position, column in enumerate(schema)}
    checks: list[tuple[int, object, int | None]] = []
    for condition in conditions:
        if isinstance(condition, algebra.EqualsConstant):
            checks.append((index[condition.column], condition.value, None))
        else:
            checks.append((index[condition.left], None, index[condition.right]))

    def predicate(row) -> bool:
        for position, value, other in checks:
            if other is None:
                if row[position] != value:
                    return False
            elif row[position] != row[other]:
                return False
        return True

    return predicate


def _term_sort_key(term: Term) -> str:
    return term.n3()


def plan_rewriting(
    plan: algebra.Plan,
    extents: Mapping[str, Sequence[tuple]],
    engine: str = "auto",
) -> Operator:
    """Compile a rewriting plan into a physical operator tree over extents."""
    _check_engine(engine)
    if isinstance(plan, algebra.Scan):
        try:
            rows = extents[plan.view]
        except KeyError as exc:
            raise KeyError(f"no extent provided for view {plan.view!r}") from exc
        return ExtentScan(plan.view, rows, plan.schema)
    if isinstance(plan, algebra.Select):
        child = plan_rewriting(plan.child, extents, engine)
        return Selection(child, _compile_conditions(plan.conditions, child.schema))
    if isinstance(plan, algebra.Project):
        child = plan_rewriting(plan.child, extents, engine)
        positions = [child.schema.index(column) for column in plan.columns]
        return Projection(child, positions, tuple(plan.columns), distinct=True)
    if isinstance(plan, algebra.Rename):
        child = plan_rewriting(plan.child, extents, engine)
        return Relabel(child, tuple(plan.columns))
    left = plan_rewriting(plan.left, extents, engine)
    right = plan_rewriting(plan.right, extents, engine)
    left_schema, right_schema = plan.left.schema, plan.right.schema
    pairs = [
        (left_schema.index(left_col), right_schema.index(right_col))
        for left_col, right_col in plan.all_pairs
    ]
    keep_right = [
        position
        for position, column in enumerate(right_schema)
        if column not in left_schema
    ]
    if engine == "merge":
        return MergeJoin(left, right, pairs, keep_right, value_key=_term_sort_key)
    # auto / index-nested-loop / hash: extents carry no triple indexes to
    # probe, so everything funnels into the (extent-indexed) hash join.
    return HashJoin(left, right, pairs, keep_right)


def run_plan(
    plan: algebra.Plan,
    extents: Mapping[str, Sequence[tuple]],
    engine: str = "auto",
    batch_size: int | str | None = DEFAULT_BATCH_SIZE,
) -> list[tuple]:
    """Execute a rewriting plan over view extents.

    Matches the historical ``algebra.execute`` contract: duplicates are
    preserved except through ``Project``, and with the default engine
    the row order is exactly the seed's (scan order, hash joins
    streaming the left input) — the batched operators preserve that
    order, so ``batch_size`` only moves speed. ``batch_size=None``
    selects the tuple-at-a-time path; ``"adaptive"`` degrades to the
    default size here (rewriting plans carry no cardinality estimates).

    >>> from repro.query.algebra import Join, Scan
    >>> extents = {"v1": [(1, 2), (4, 5)], "v2": [(2, 3)]}
    >>> plan = Join(Scan("v1", ("x", "y")), Scan("v2", ("y", "z")))
    >>> run_plan(plan, extents)
    [(1, 2, 3)]
    """
    batch_size = _check_batch_size(batch_size)
    root = plan_rewriting(plan, extents, engine)
    if batch_size is None:
        return list(root)
    return root.rows_batched(batch_size)
