"""Multi-query optimization: shared-subplan execution across batches.

Reformulation turns one query into a union of conjunctive queries whose
bodies overlap heavily (Section 4.2: every rule rewrites one atom and
keeps the rest), and a served workload is many simultaneous,
highly-overlapping queries. Evaluating each one independently re-runs
identical scans and join subtrees dozens of times. Following the GLADE
MQO design — detect shared work across a batch, execute each shared
subplan once, fan results out — this module:

1. **fingerprints join-tree prefixes**: each query's atoms are put in
   the estimator's join order once (exactly what :func:`plan_query`
   compiles), and every prefix of that order becomes a headless
   subquery whose canonical form
   (:func:`repro.query.containment.canonical_labeling`) is its
   fingerprint. Two prefixes share a fingerprint iff they are
   isomorphic *including* constants and rule-4 restrictions, so
   isomorphic-looking-but-distinct subtrees never unify;
2. **assembles a shared-subplan DAG**: a fingerprint consumed by ≥ 2
   queries becomes a :class:`SharedNode`, cost-gated — re-executing the
   subtree ``n`` times must be priced above materializing its rows once
   (:data:`MATERIALIZE_COST_FACTOR`). Longer nodes start from shorter
   materialized nodes, so sharing nests;
3. **executes each node once** and fans out: node rows are materialized
   as encoded row batches behind an
   :class:`~repro.engine.operators.ExtentScan` (the ordinary batch
   contract), relabeled per consumer through the canonical-index
   correspondence, and each consumer joins only its remaining atoms,
   driven through the columnar batch layout like ``run_query``'s
   fast path;
4. **merges encoded answers**: consumers produce *images* (dictionary
   codes, with constant head terms attached) that are deduplicated
   across the whole batch/union before :func:`decode_images` decodes
   each distinct answer once.

Three consumers sit on top: :func:`run_query_batch` (independent
queries, the server-mode hook), ``evaluate_union`` in
:mod:`repro.query.evaluation` (reformulation unions — and through it
``ReformulationAwareStatistics``), and :func:`plan_union_pushdown`,
which on a SQL-capable backend compiles an eligible union into **one**
``SELECT ... UNION`` statement whose shared subtrees are CTEs
(:func:`repro.engine.sqlcompile.compile_union`). The compound executes
only when the estimator prices the shared-prefix recompute it avoids
above its measured per-arm overhead (:data:`STATEMENT_OVERHEAD_ROWS`);
otherwise the same branches run as per-branch prepared statements with
encoded answers merged union-wide. Union-level artifacts are cached in
the store's prepared-plan cache under the union's canonical signature
and flushed on mutation, like every other prepared plan.

Sharing applies on the cost-based batched route only (``engine="auto"``
with a batch size); fixed engines, the tuple-at-a-time path, explicit
statistics providers, and ``shared=False`` stay fully independent — the
measured ablation baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.engine.operators import (
    DEFAULT_BATCH_SIZE,
    ExtentScan,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    Operator,
)
from repro.engine.planner import (
    _PLAN_CACHE_LIMIT,
    _PUSHDOWN_INELIGIBLE,
    _check_batch_size,
    _estimator,
    _natural_pairs,
    _plan_cache_entry,
    plan_pushdown,
    plan_query,
    run_query,
)
from repro.engine.sqlcompile import (
    CompiledUnion,
    UnionBranch,
    UnionCTE,
    compile_union,
)
from repro.obs import metrics, tracing
from repro.query.cq import Atom, ConjunctiveQuery, Variable
from repro.query.containment import canonical_form, canonical_labeling
from repro.rdf.store import TripleStore
from repro.rdf.terms import Term

__all__ = [
    "BatchPlan",
    "SharedNode",
    "MATERIALIZE_COST_FACTOR",
    "MQO_DAG",
    "UNION_PUSHDOWN",
    "decode_images",
    "evaluate_union_shared",
    "plan_batch",
    "plan_union_pushdown",
    "run_query_batch",
    "union_signature",
]

#: Engine-slot token under which shared-subplan DAGs live in the
#: prepared-plan cache (keyed by the tuple of distinct batch queries).
MQO_DAG = "mqo-dag"

#: Engine-slot token for compiled ``SELECT ... UNION`` statements
#: (keyed by the union's canonical signature).
UNION_PUSHDOWN = "sql-union-pushdown"

#: Engine-slot token for the per-union routing decision
#: (keyed by the raw disjunct tuple, so repeated evaluations of the
#: same union — the statistics collector's access pattern — skip
#: deduplication, signature lookup, and per-disjunct plan lookups).
_UNION_ROUTE = "mqo-union-route"

#: Cost gate: a subtree consumed by ``n`` plans is shared only when
#: ``(n - 1) * exec_cost > MATERIALIZE_COST_FACTOR * rows_out`` — the
#: estimator must price the *avoided* re-executions above the overhead
#: of materializing (building + re-scanning) its output rows. A cheap,
#: wide subtree (one full scan feeding two consumers) stays unshared;
#: the same scan feeding many consumers, or any subtree whose joins do
#: real work, crosses the gate.
MATERIALIZE_COST_FACTOR = 2.0

#: Per-row factor of an index-nested-loop probe in the gate's cost walk
#: (same scale as the planner's ``_INL_PROBE_COST``).
_PROBE_COST = 2.0

#: Profit gate for executing a compiled union as ONE compound
#: statement instead of per-branch prepared statements. On the
#: embedded SQLite backend a compound arm costs roughly this many
#: indexed row-probes *more* than the identical statement run alone
#: (SQLite builds per-arm bloom filters and compound machinery on
#: every execution, which dwarfs the few-microsecond dispatch a
#: separate cached statement costs). The compound only runs when the
#: shared-prefix recompute it avoids is estimated to save more rows
#: per arm than this overhead; selective reformulation unions land far
#: below it, unions whose shared prefixes are wide cross it.
STATEMENT_OVERHEAD_ROWS = 16.0


# ----------------------------------------------------------------------
# Fingerprinting and the shared-subplan DAG
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _PrefixInfo:
    """Fingerprint of one join-order prefix of one query.

    ``key`` is the canonical form of the prefix as a headless subquery
    (atoms + the rule-4 restrictions it binds), ``assignment`` maps the
    query's prefix variables to their canonical indices — the column
    correspondence consumers relabel materialized node rows through.
    """

    key: tuple
    assignment: tuple[tuple[Variable, int], ...]


@dataclass(frozen=True)
class QueryPlan:
    """One query's sharing-relevant shape inside a batch plan."""

    query: ConjunctiveQuery
    #: Body atoms in the estimator's join order.
    ordered_atoms: tuple[Atom, ...]
    #: ``prefixes[k - 1]`` fingerprints ``ordered_atoms[:k]``.
    prefixes: tuple[_PrefixInfo, ...]


@dataclass(frozen=True)
class SharedNode:
    """One shared join subtree, executed once per batch run."""

    key: tuple
    #: Representative prefix (the first consumer's atoms, in order).
    atoms: tuple[Atom, ...]
    #: Rule-4 restriction of the representative prefix.
    non_literal: frozenset[Variable]
    #: Representative variable -> canonical column index.
    assignment: tuple[tuple[Variable, int], ...]
    #: The representative's shorter prefixes — a longer node starts
    #: from the longest already-materialized one (DAG nesting).
    prefixes: tuple[_PrefixInfo, ...]
    #: Number of batch queries whose longest gated prefix this is.
    consumers: int
    #: Estimated execution cost / output rows behind the gate decision.
    est_cost: float
    est_rows: float

    @property
    def length(self) -> int:
        return len(self.atoms)


@dataclass(frozen=True)
class BatchPlan:
    """The shared-subplan DAG for one batch of distinct queries."""

    queries: tuple[ConjunctiveQuery, ...]
    plans: tuple[QueryPlan, ...]
    #: Executed nodes, shortest first (so nesting finds its leaves).
    nodes: tuple[SharedNode, ...]

    def sharing_summary(self) -> tuple[int, int]:
        """``(shared nodes, queries consuming one)`` — for explain."""
        keys = {node.key for node in self.nodes}
        consuming = sum(
            1
            for plan in self.plans
            if any(info.key in keys for info in plan.prefixes)
        )
        return len(self.nodes), consuming


def _dedupe(queries: Iterable[ConjunctiveQuery]) -> tuple[ConjunctiveQuery, ...]:
    """Distinct queries, first occurrence order (equality ignores names)."""
    seen: dict[ConjunctiveQuery, None] = {}
    for query in queries:
        seen.setdefault(query)
    return tuple(seen)


def _prefix_query(
    atoms: tuple[Atom, ...], non_literal: frozenset[Variable]
) -> ConjunctiveQuery:
    """A prefix as a headless subquery (restrictions auto-restricted to
    the prefix's own variables by the query constructor)."""
    return ConjunctiveQuery((), atoms, name="mqo-prefix", non_literal=non_literal)


def _prefix_cost(estimator, atoms: tuple[Atom, ...]) -> tuple[float, float]:
    """``(estimated execution cost, estimated output rows)`` of a prefix.

    An index-nested-loop walk over the already-ordered atoms — the same
    shape the hybrid compiler builds — priced from the estimator's
    prefix cardinalities. Only the ratio against materialization
    matters, so the absolute scale is the planner's.
    """
    order = list(range(len(atoms)))
    counts = [float(estimator.atom_cardinality(atom)) for atom in atoms]
    prefix = estimator.prefix_cardinalities(atoms, order)
    cost = counts[0]
    bound = set(atoms[0].variables())
    for step in range(1, len(atoms)):
        rows_in, rows_out = prefix[step - 1], prefix[step]
        if atoms[step].variables() & bound:
            cost += rows_in * _PROBE_COST + rows_out
        else:
            cost += rows_in * max(counts[step], 1.0) + rows_out
        bound |= atoms[step].variables()
    return cost, max(prefix[-1], 1.0)


def _build_batch_plan(
    queries: tuple[ConjunctiveQuery, ...], estimator
) -> BatchPlan:
    plans: list[QueryPlan] = []
    for query in queries:
        order = estimator.join_order(query.atoms)
        ordered = tuple(query.atoms[index] for index in order)
        prefixes: list[_PrefixInfo] = []
        for k in range(1, len(ordered) + 1):
            sub = _prefix_query(ordered[:k], query.non_literal)
            form, assignment = canonical_labeling(sub, include_head=False)
            prefixes.append(
                _PrefixInfo(form, tuple(sorted(assignment.items(), key=lambda kv: kv[1])))
            )
        plans.append(QueryPlan(query, ordered, tuple(prefixes)))

    # Count potential consumers per fingerprint (prefixes of one query
    # all have distinct lengths, hence distinct keys — at most one vote
    # per query per key) and keep the first consumer as representative.
    consumers: dict[tuple, int] = {}
    representative: dict[tuple, tuple[QueryPlan, int]] = {}
    for plan in plans:
        for k, info in enumerate(plan.prefixes, start=1):
            consumers[info.key] = consumers.get(info.key, 0) + 1
            representative.setdefault(info.key, (plan, k))

    # Cost gate: sharing must be priced cheaper than re-execution.
    candidates: dict[tuple, tuple[QueryPlan, int, int, float, float]] = {}
    for key, count in consumers.items():
        if count < 2:
            continue
        plan, k = representative[key]
        cost, rows = _prefix_cost(estimator, plan.ordered_atoms[:k])
        if (count - 1) * cost > MATERIALIZE_COST_FACTOR * rows:
            candidates[key] = (plan, k, count, cost, rows)

    # Each query consumes its longest gated prefix; only chosen nodes
    # execute (a gated key no query picks would materialize for nobody).
    chosen: set[tuple] = set()
    for plan in plans:
        for k in range(len(plan.prefixes), 0, -1):
            if plan.prefixes[k - 1].key in candidates:
                chosen.add(plan.prefixes[k - 1].key)
                break
    nodes: list[SharedNode] = []
    for key in chosen:
        plan, k, count, cost, rows = candidates[key]
        sub = _prefix_query(plan.ordered_atoms[:k], plan.query.non_literal)
        nodes.append(
            SharedNode(
                key=key,
                atoms=plan.ordered_atoms[:k],
                non_literal=sub.non_literal,
                assignment=plan.prefixes[k - 1].assignment,
                prefixes=plan.prefixes[: k - 1],
                consumers=count,
                est_cost=cost,
                est_rows=rows,
            )
        )
    nodes.sort(key=lambda node: (node.length, node.key))
    return BatchPlan(tuple(queries), tuple(plans), tuple(nodes))


def plan_batch(
    queries: Sequence[ConjunctiveQuery],
    store: TripleStore,
    statistics=None,
) -> BatchPlan:
    """The shared-subplan DAG for a batch of queries on a store.

    Pure structure — fingerprints, chosen nodes, column correspondences
    — with no materialized rows, so it is cached in the store's
    prepared-plan cache (keyed by the tuple of distinct queries under
    the :data:`MQO_DAG` engine slot) and flushed on mutation like every
    other prepared plan: join orders and the cost gate both derive from
    the store's statistics.
    """
    distinct = _dedupe(queries)
    if statistics is not None:
        return _build_batch_plan(distinct, _estimator(store, statistics))
    entry = _plan_cache_entry(store)
    plans = entry["plans"]
    key = (distinct, MQO_DAG)
    cached = plans.get(key)
    if cached is not None:
        if metrics.enabled:
            metrics.inc("engine.plan_cache.hit")
        return cached
    if metrics.enabled:
        metrics.inc("engine.plan_cache.miss")
    built = _build_batch_plan(distinct, _estimator(store, None))
    if len(plans) >= _PLAN_CACHE_LIMIT:
        plans.clear()
    plans[key] = built
    return built


# ----------------------------------------------------------------------
# Shared execution: materialize nodes once, fan out images
# ----------------------------------------------------------------------


@dataclass
class _CompiledNode:
    """One shared node's reusable operator tree.

    ``leaf`` is the swappable :class:`ExtentScan` the tree starts from
    when the node nests on a shorter one (``leaf_key`` names it);
    ``columns`` maps canonical column index -> output row position.
    """

    key: tuple
    root: Operator
    leaf: ExtentScan | None
    leaf_key: tuple | None
    columns: dict[int, int]


@dataclass
class _CompiledConsumer:
    """One query's reusable tree over its longest applicable node.

    ``root is None`` means no node applies — the query runs its
    ordinary (itself cached) :func:`plan_query` plan.
    """

    query: ConjunctiveQuery
    root: Operator | None
    leaf: ExtentScan | None
    leaf_key: tuple | None


@dataclass
class _CompiledBatch:
    """The batch plan compiled to operator trees, cached per store.

    Trees are built once and re-executed by swapping each run's
    materialized node rows into the leaf scans — the shared-execution
    analogue of the prepared-plan cache, flushed with it on mutation.
    """

    nodes: list[_CompiledNode]
    consumers: list[_CompiledConsumer]


def _compile_leaf(
    prefixes: Sequence[_PrefixInfo],
    compiled: dict[tuple, _CompiledNode],
) -> tuple[ExtentScan | None, int, tuple | None]:
    """A scan over the longest compiled node covering a prefix chain.

    The scan's schema is relabeled to the consumer's variable names
    through the canonical-index correspondence; its rows are swapped in
    per execution. Returns ``(None, 0, None)`` when no node applies.
    """
    for k in range(len(prefixes), 0, -1):
        info = prefixes[k - 1]
        node = compiled.get(info.key)
        if node is None:
            continue
        index_to_name = {index: variable.name for variable, index in info.assignment}
        schema: list[str] = [""] * len(node.columns)
        for index, position in node.columns.items():
            schema[position] = index_to_name[index]
        return ExtentScan(f"mqo-node[{k}]", (), tuple(schema)), k, info.key
    return None, 0, None


def _compile_batch(plan: BatchPlan, store: TripleStore) -> _CompiledBatch:
    """Compile the DAG's nodes and consumers to reusable operator trees."""
    compiled: dict[tuple, _CompiledNode] = {}
    nodes: list[_CompiledNode] = []
    for node in plan.nodes:
        leaf, covered, leaf_key = _compile_leaf(node.prefixes, compiled)
        root = _join_from(store, leaf, node.atoms[covered:], node.non_literal)
        by_name = {variable.name: index for variable, index in node.assignment}
        columns = {
            by_name[name]: position for position, name in enumerate(root.schema)
        }
        entry = _CompiledNode(node.key, root, leaf, leaf_key, columns)
        compiled[node.key] = entry
        nodes.append(entry)
    consumers: list[_CompiledConsumer] = []
    for qplan in plan.plans:
        leaf, covered, leaf_key = _compile_leaf(qplan.prefixes, compiled)
        root = None
        if leaf is not None:
            root = _join_from(
                store, leaf, qplan.ordered_atoms[covered:], qplan.query.non_literal
            )
        consumers.append(_CompiledConsumer(qplan.query, root, leaf, leaf_key))
    return _CompiledBatch(nodes, consumers)


def _compiled_batch(plan: BatchPlan, store: TripleStore) -> _CompiledBatch:
    """The compiled trees for ``plan``, cached in the prepared-plan
    cache (so repeated shared evaluation pays operator construction
    once, exactly like :func:`plan_query` does for single plans)."""
    entry = _plan_cache_entry(store)
    plans = entry["plans"]
    key = (plan.queries, MQO_DAG, "compiled")
    cached = plans.get(key)
    if cached is not None:
        return cached
    built = _compile_batch(plan, store)
    if len(plans) >= _PLAN_CACHE_LIMIT:
        plans.clear()
    plans[key] = built
    return built


def _join_from(
    store: TripleStore,
    leaf: Operator | None,
    atoms: Sequence[Atom],
    non_literal: frozenset[Variable],
) -> Operator:
    """Left-deep join of ``atoms`` on top of ``leaf`` (or from scratch).

    Hybrid-shaped: index-nested-loop probes for connected steps, hash
    joins for Cartesian ones — any strategy yields the same answer set,
    and probing keeps the fan-out from a materialized leaf cheap.
    """
    root = leaf
    remaining = list(atoms)
    if root is None:
        root = IndexScan(store, remaining.pop(0), non_literal)
    for atom in remaining:
        connected = any(
            isinstance(term, Variable) and term.name in root.schema
            for term in atom
        )
        if connected:
            root = IndexNestedLoopJoin(root, store, atom, non_literal)
        else:
            right = IndexScan(store, atom, non_literal)
            pairs, keep_right = _natural_pairs(root.schema, right.schema)
            root = HashJoin(root, right, pairs, keep_right)
    return root


def _images_from_root(
    query: ConjunctiveQuery, root: Operator, batch_size: int
) -> set[tuple]:
    """Distinct encoded head images of ``query`` from a compiled root."""
    schema = root.schema
    slots: list[int | None] = []
    constants: list[Term | None] = []
    for term in query.head:
        if isinstance(term, Variable):
            slots.append(schema.index(term.name))
            constants.append(None)
        else:
            slots.append(None)
            constants.append(term)
    images: set[tuple] = set()
    if all(slot is not None for slot in slots):
        # Columnar drive, like _run_query's fast path: pick the head
        # columns off each batch and fold the transposed batch into the
        # image set in one C-speed ``set.update(zip(...))``.
        if slots:
            for cb in root.column_batches(batch_size):
                images.update(zip(*(cb.columns[slot] for slot in slots)))
        else:
            for batch in root.batches(batch_size):
                if batch:
                    images.add(())
                    break
        return images
    for batch in root.batches(batch_size):
        for row in batch:
            images.add(
                tuple(
                    constant if slot is None else row[slot]
                    for slot, constant in zip(slots, constants)
                )
            )
    return images


def _batch_images(
    plan: BatchPlan,
    store: TripleStore,
    batch_size: int,
    workers: int = 1,
) -> list[set[tuple]]:
    """Encoded head images per distinct query, via the shared DAG.

    Nodes materialize shortest-first, each starting from the longest
    already-materialized node among its own prefixes; consumers then
    scan the longest applicable node and join only their remaining
    atoms. Queries touching no node run their ordinary cached plan.
    The operator trees themselves come from the compiled-batch cache —
    each execution only swaps the freshly materialized rows into the
    leaf scans.
    """
    compiled = _compiled_batch(plan, store)
    materialized: dict[tuple, list] = {}
    for node in compiled.nodes:
        if node.leaf is not None:
            node.leaf._rows = materialized[node.leaf_key]
        materialized[node.key] = node.root.rows_batched(batch_size)
    if metrics.enabled and compiled.nodes:
        metrics.inc("mqo.shared_nodes.materialized", len(compiled.nodes))
        metrics.inc(
            "mqo.shared_nodes.rows",
            sum(len(rows) for rows in materialized.values()),
        )
    out: list[set[tuple]] = []
    for consumer in compiled.consumers:
        if consumer.root is None:
            root = plan_query(
                consumer.query, store, engine="auto", workers=workers
            )
        else:
            consumer.leaf._rows = materialized[consumer.leaf_key]
            root = consumer.root
        out.append(_images_from_root(consumer.query, root, batch_size))
    # Drop row references so cached trees don't pin this run's
    # materialized batches in memory.
    for node in compiled.nodes:
        if node.leaf is not None:
            node.leaf._rows = ()
    for consumer in compiled.consumers:
        if consumer.leaf is not None:
            consumer.leaf._rows = ()
    return out


def decode_images(images: Iterable[tuple], store: TripleStore) -> set[tuple[Term, ...]]:
    """Decode encoded head images, each distinct code exactly once.

    Image positions are dictionary codes (``int``) or already-decoded
    constant head terms; both may mix within one union's image set.
    """
    decode = store.dictionary.decode
    cache: dict[int, Term] = {}
    answers: set[tuple[Term, ...]] = set()
    for image in images:
        answer = []
        for part in image:
            if isinstance(part, int):
                term = cache.get(part)
                if term is None:
                    term = decode(part)
                    cache[part] = term
                answer.append(term)
            else:
                answer.append(part)
        answers.add(tuple(answer))
    return answers


# ----------------------------------------------------------------------
# Union pushdown: one SELECT ... UNION statement with shared CTEs
# ----------------------------------------------------------------------


#: ``distinct disjunct tuple -> signature`` memo: reformulation unions
#: are evaluated repeatedly (statistics re-counts them per search
#: step), and re-sorting hundreds of canonical forms per evaluation
#: costs more than executing the union.
_SIGNATURE_CACHE: dict[tuple[ConjunctiveQuery, ...], tuple] = {}


def union_signature(disjuncts: Iterable[ConjunctiveQuery]) -> tuple:
    """The union's canonical signature: sorted distinct canonical forms.

    Two unions share a signature iff their disjunct sets are pairwise
    isomorphic with head correspondence — such unions have identical
    answer sets on every store, so compiled union artifacts cached
    under the signature are shared across variable renamings.
    """
    key = _dedupe(disjuncts)
    signature = _SIGNATURE_CACHE.get(key)
    if signature is None:
        if len(_SIGNATURE_CACHE) >= _PLAN_CACHE_LIMIT:
            _SIGNATURE_CACHE.clear()
        signature = tuple(sorted({canonical_form(d) for d in key}))
        _SIGNATURE_CACHE[key] = signature
    return signature


def plan_union_pushdown(
    disjuncts: Sequence[ConjunctiveQuery], store: TripleStore
) -> CompiledUnion | None:
    """The single-statement pushdown route for a union, if it exists.

    On a SQL-capable backend, compiles the whole union — shared
    subtrees as CTEs, one SELECT arm per non-empty disjunct — into one
    ``SELECT ... UNION`` statement
    (:func:`repro.engine.sqlcompile.compile_union`); returns ``None``
    when the backend cannot execute SQL plans or the union exceeds the
    pushdown limits, and the caller falls back to the interpreted
    shared DAG. Results (including the negative) are cached in the
    store's prepared-plan cache under the union's canonical signature
    (:func:`union_signature`, engine slot :data:`UNION_PUSHDOWN`) and
    flushed when the store mutates.
    """
    if not getattr(store.backend, "supports_sql_plans", False):
        return None
    distinct = _dedupe(disjuncts)
    entry = _plan_cache_entry(store)
    plans = entry["plans"]
    key = (union_signature(distinct), UNION_PUSHDOWN)
    cached = plans.get(key)
    if cached is not None:
        return None if cached is _PUSHDOWN_INELIGIBLE else cached
    batch = plan_batch(distinct, store)
    node_index = {node.key: position for position, node in enumerate(batch.nodes)}
    ctes = tuple(
        UnionCTE(atoms=node.atoms, columns=node.assignment)
        for node in batch.nodes
    )
    branches = []
    for qplan in batch.plans:
        cte_id: int | None = None
        covered = 0
        columns: tuple[tuple[Variable, int], ...] = ()
        for k in range(len(qplan.prefixes), 0, -1):
            info = qplan.prefixes[k - 1]
            position = node_index.get(info.key)
            if position is not None:
                cte_id, covered, columns = position, k, info.assignment
                break
        branches.append(
            UnionBranch(
                query=qplan.query,
                atoms=qplan.ordered_atoms,
                cte=cte_id,
                covered=covered,
                columns=columns,
            )
        )
    compiled = compile_union(branches, ctes, store)
    if len(plans) >= _PLAN_CACHE_LIMIT:
        plans.clear()
    plans[key] = _PUSHDOWN_INELIGIBLE if compiled is None else compiled
    return compiled


def _statement_profitable(batch: BatchPlan) -> bool:
    """Whether the compound statement should beat per-branch statements.

    Per-branch prepared statements recompute each shared prefix with
    indexed probes — roughly ``est_rows`` extra row-touches per extra
    consumer — while the compound pays
    :data:`STATEMENT_OVERHEAD_ROWS` of per-arm execution overhead.
    """
    savings = sum(
        (node.consumers - 1) * node.est_rows for node in batch.nodes
    )
    return savings > STATEMENT_OVERHEAD_ROWS * len(batch.plans)


#: Sentinel marking a union branch whose shared prefix was probed
#: empty at route-build time: the branch provably has no answers on
#: this store version and its statement is never executed.
_EMPTY_BRANCH = object()


def _empty_node_keys(batch: BatchPlan, store: TripleStore) -> frozenset:
    """Keys of shared nodes whose prefixes have no matches right now.

    Each node's prefix runs once as a ``SELECT EXISTS`` probe — the
    shared subplan executed exactly once, its (empty) result fanned out
    to every consumer. The probe ignores the rule-4 residue filter, so
    it checks a *superset* of the filtered prefix: ``EXISTS`` false is
    therefore a sound proof that every consuming branch is empty. A
    node extending an already-empty shorter node inherits emptiness
    without a probe.
    """
    empty: set = set()
    for node in batch.nodes:
        if any(info.key in empty for info in node.prefixes[:-1]):
            empty.add(node.key)
            continue
        prefix = _prefix_query(node.atoms, node.non_literal)
        head = sorted(prefix.variables(), key=lambda v: v.name)[:1]
        if not head:
            continue
        probe = ConjunctiveQuery(
            tuple(head),
            node.atoms,
            name="mqo-probe",
            non_literal=node.non_literal,
        )
        compiled = plan_pushdown(probe, store, 1)
        if compiled is None:
            continue
        if compiled.sql is None:
            empty.add(node.key)
            continue
        rows = store.backend.execute_sql_plan(
            f"SELECT EXISTS ({compiled.sql})", compiled.params
        )
        if not next(iter(rows))[0]:
            empty.add(node.key)
    return frozenset(empty)


def _union_route(
    disjuncts: tuple[ConjunctiveQuery, ...], store: TripleStore, workers: int
):
    """The cached routing decision for one union's pushdown evaluation.

    Returns ``(distinct, compound, singles)``: the deduplicated
    disjuncts, the compiled compound statement when it exists *and*
    crosses the profit gate (else ``None``), and one entry per
    disjunct — its compiled statement, ``None`` for the interpreted
    fallback, or :data:`_EMPTY_BRANCH` when one of its shared prefixes
    probed empty (the branch is skipped outright). Cached in the
    prepared-plan cache under the raw disjunct tuple so re-evaluating
    the same union is a single dictionary hit; flushed on store
    mutation with every other prepared plan.
    """
    entry = _plan_cache_entry(store)
    plans = entry["plans"]
    key = (disjuncts, _UNION_ROUTE, workers)
    cached = plans.get(key)
    if cached is None:
        if metrics.enabled:
            metrics.inc("mqo.route.miss")
        distinct = _dedupe(disjuncts)
        compound = plan_union_pushdown(distinct, store)
        if compound is not None and compound.sql is not None:
            if not _statement_profitable(plan_batch(distinct, store)):
                compound = None
        singles = None
        if compound is None:
            singles = [plan_pushdown(d, store, workers) for d in distinct]
            if getattr(store.backend, "supports_sql_plans", False):
                batch = plan_batch(distinct, store)
                empty = _empty_node_keys(batch, store)
                if empty:
                    dead = {
                        plan.query
                        for plan in batch.plans
                        if any(info.key in empty for info in plan.prefixes)
                    }
                    if metrics.enabled:
                        metrics.inc("mqo.route.pruned_empty", len(dead))
                    singles = [
                        _EMPTY_BRANCH if disjunct in dead else single
                        for single, disjunct in zip(singles, distinct)
                    ]
            singles = tuple(singles)
        cached = (distinct, compound, singles)
        if len(plans) >= _PLAN_CACHE_LIMIT:
            plans.clear()
        plans[key] = cached
    elif metrics.enabled:
        metrics.inc("mqo.route.hit")
    return cached


# ----------------------------------------------------------------------
# Public consumers
# ----------------------------------------------------------------------


def evaluate_union_shared(
    disjuncts: Sequence[ConjunctiveQuery],
    store: TripleStore,
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
    workers: int = 1,
    pushdown: bool = True,
) -> set[tuple[Term, ...]]:
    """All answers of a union, evaluated as one shared batch.

    On a SQL-capable backend the union compiles to a single
    ``SELECT ... UNION`` statement (:func:`plan_union_pushdown`), but
    the compound only *executes* when the estimator prices the shared
    prefixes it avoids recomputing above its per-arm overhead
    (:func:`_statement_profitable`) — for selective unions, per-branch
    prepared statements from the same plan cache win. On the per-branch
    route, shared DAG prefixes are probed once with ``SELECT EXISTS``
    at route-build time and every branch over an empty prefix is
    skipped outright (:func:`_empty_node_keys`). When the union is
    not expressible (or the backend is not SQL), disjuncts that push
    down individually run their compiled statements and the rest share
    the interpreted DAG. Every route merges encoded answer images
    across the *whole* union and decodes each distinct answer exactly
    once.
    """
    if tracing.sink is not None:
        with tracing.span("mqo.evaluate_union", disjuncts=len(disjuncts)):
            return _evaluate_union_impl(
                disjuncts, store, batch_size, workers, pushdown
            )
    return _evaluate_union_impl(disjuncts, store, batch_size, workers, pushdown)


def _evaluate_union_impl(
    disjuncts: Sequence[ConjunctiveQuery],
    store: TripleStore,
    batch_size: int | None,
    workers: int,
    pushdown: bool,
) -> set[tuple[Term, ...]]:
    batch_size = _check_batch_size(batch_size) or DEFAULT_BATCH_SIZE
    images: set[tuple] = set()
    interpreted: list[ConjunctiveQuery] = []
    if pushdown:
        distinct, compound, singles = _union_route(
            tuple(disjuncts), store, workers
        )
        if compound is not None:
            if metrics.enabled:
                metrics.inc("mqo.route.compound")
            return compound.execute(store)
        executed = pruned = 0
        for single, disjunct in zip(singles, distinct):
            if single is _EMPTY_BRANCH:
                pruned += 1
                continue
            if single is not None:
                images |= single.images(store)
                executed += 1
            else:
                interpreted.append(disjunct)
        if metrics.enabled:
            if executed:
                metrics.inc("mqo.route.per_branch")
            if pruned:
                metrics.inc("mqo.route.branch_pruned", pruned)
    else:
        interpreted.extend(_dedupe(disjuncts))
    if interpreted:
        if metrics.enabled:
            metrics.inc("mqo.route.shared")
        batch = plan_batch(interpreted, store)
        for image_set in _batch_images(batch, store, batch_size, workers):
            images |= image_set
    return decode_images(images, store)


def run_query_batch(
    queries: Sequence[ConjunctiveQuery],
    store: TripleStore,
    *,
    engine: str = "auto",
    statistics=None,
    batch_size: int | None = DEFAULT_BATCH_SIZE,
    workers: int = 1,
    pushdown: bool = True,
    shared: bool = True,
) -> list[set[tuple[Term, ...]]]:
    """Answer a batch of independent queries, sharing work across them.

    Returns one answer set per input query, in input order — exactly
    what ``[run_query(q, store, ...) for q in queries]`` returns, but
    common join subtrees across the batch execute once
    (:func:`plan_batch`) and duplicate queries are answered once. This
    is the cross-client batching hook for server mode.

    Sharing needs the cost-based batched route: with a fixed ``engine``,
    an explicit ``statistics`` provider, the tuple-at-a-time path, or
    ``shared=False`` (the measured ablation baseline), every query runs
    independently through :func:`run_query`. On a SQL-capable backend,
    pushdown-eligible queries keep their single-statement route — it
    beats interpreted sharing — and the DAG shares work among the rest.

    >>> from repro.query.parser import parse_query
    >>> from repro.rdf.ntriples import parse_ntriples
    >>> from repro.rdf.store import TripleStore
    >>> store = TripleStore()
    >>> _ = store.add_all(parse_ntriples('''
    ... <http://e/a> <http://e/knows> <http://e/b> .
    ... <http://e/b> <http://e/knows> <http://e/c> .
    ... '''))
    >>> batch = [
    ...     parse_query("q1(X, Z) :- t(X, <http://e/knows>, Y), "
    ...                 "t(Y, <http://e/knows>, Z)"),
    ...     parse_query("q2(Y) :- t(<http://e/a>, <http://e/knows>, Y)"),
    ... ]
    >>> [len(answers) for answers in run_query_batch(batch, store)]
    [1, 1]
    >>> run_query_batch(batch, store, shared=False) == run_query_batch(
    ...     batch, store)
    True
    """
    queries = list(queries)
    if not queries:
        return []
    if tracing.sink is not None:
        with tracing.span("engine.run_query_batch", queries=len(queries)):
            return _run_query_batch_impl(
                queries, store, engine, statistics, batch_size, workers,
                pushdown, shared,
            )
    return _run_query_batch_impl(
        queries, store, engine, statistics, batch_size, workers, pushdown,
        shared,
    )


def _run_query_batch_impl(
    queries: list[ConjunctiveQuery],
    store: TripleStore,
    engine: str,
    statistics,
    batch_size: int | None,
    workers: int,
    pushdown: bool,
    shared: bool,
) -> list[set[tuple[Term, ...]]]:
    checked = _check_batch_size(batch_size)
    sharing = (
        shared
        and engine == "auto"
        and statistics is None
        and checked is not None
    )
    answers: dict[ConjunctiveQuery, set[tuple[Term, ...]]] = {}
    if not sharing:
        for query in _dedupe(queries):
            answers[query] = run_query(
                query,
                store,
                engine=engine,
                statistics=statistics,
                batch_size=batch_size,
                workers=workers,
                pushdown=pushdown,
            )
        return [answers[query] for query in queries]
    interpreted: list[ConjunctiveQuery] = []
    for query in _dedupe(queries):
        compiled = plan_pushdown(query, store, workers) if pushdown else None
        if compiled is not None:
            answers[query] = compiled.execute(store)
        else:
            interpreted.append(query)
    if interpreted:
        batch = plan_batch(interpreted, store)
        images = _batch_images(batch, store, checked, workers)
        for query, image_set in zip(batch.queries, images):
            answers[query] = decode_images(image_set, store)
    return [answers[query] for query in queries]


def describe_union_sharing(
    disjuncts: Sequence[ConjunctiveQuery], store: TripleStore
) -> str:
    """One-line shared-subplan accounting for ``--explain``."""
    distinct = _dedupe(disjuncts)
    batch = plan_batch(distinct, store)
    nodes, consuming = batch.sharing_summary()
    line = (
        f"{len(tuple(disjuncts))} disjuncts ({len(distinct)} distinct), "
        f"{nodes} shared subplans covering {consuming} disjuncts"
    )
    compiled = plan_union_pushdown(distinct, store)
    if compiled is not None:
        if compiled.sql is None:
            line += "; pushdown union: EMPTY"
        else:
            route = (
                "compound statement"
                if _statement_profitable(batch)
                else "per-branch statements"
            )
            line += (
                f"; pushdown union: {compiled.branches} branches, "
                f"{compiled.shared_ctes} shared CTEs, route: {route}"
            )
            if route == "per-branch statements" and getattr(
                store.backend, "supports_sql_plans", False
            ):
                empty = _empty_node_keys(batch, store)
                pruned = sum(
                    1
                    for plan in batch.plans
                    if any(info.key in empty for info in plan.prefixes)
                )
                if pruned:
                    line += f", {pruned} branches pruned empty"
    return line
