"""Columnar batch layout of the vectorized execution engine.

A :class:`ColumnBatch` holds one batch of physical rows decomposed into
per-column value sequences — the classic columnar (a.k.a. vectorized)
batch layout. The engine's columnar path
(:meth:`~repro.engine.operators.Operator.column_batches`) streams these
between operators instead of row-tuple lists:

* projection and relabeling become zero-copy column picks
  (:meth:`ColumnBatch.project` reuses the column sequences as-is);
* join probes on a single key column read the key *vector* directly —
  no per-row key tuple is ever built;
* join outputs assemble per column (one C-speed list comprehension per
  column over a selection vector) instead of per row;
* the head-image deduplication at the top of ``run_query`` folds whole
  batches into the answer set through ``set.update(zip(*columns))``.

The row-batch contract of :meth:`Operator.batches` is unchanged — the
columnar path is a second, parallel representation, and
:meth:`ColumnBatch.rows` / iteration give the row view wherever a
consumer still wants tuples (``__iter__``, MQO materialization, the
EXPLAIN ANALYZE probes). A batch is never empty; its width may be zero
(boolean heads), which is why the row count is stored explicitly
instead of being derived from a first column that may not exist.

>>> batch = ColumnBatch.from_rows([(1, 10), (2, 20), (3, 30)], 2)
>>> batch.columns
((1, 2, 3), (10, 20, 30))
>>> len(batch)
3
>>> batch.rows()
[(1, 10), (2, 20), (3, 30)]
>>> batch.project((1,)).columns
((10, 20, 30),)
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

#: A column: any sequence of values (tuple from a ``zip`` transpose,
#: list from a per-column comprehension — both index and iterate fast).
Column = Sequence


class ColumnBatch:
    """One batch of rows in columnar layout.

    ``columns`` is a tuple with one value sequence per schema column;
    all sequences share the same length, stored in ``length`` (columns
    may be empty for zero-width schemas). Instances are treated as
    immutable by the engine: consumers may alias the column sequences
    (zero-copy projection) but never mutate them.
    """

    __slots__ = ("columns", "length")

    def __init__(self, columns: tuple[Column, ...], length: int) -> None:
        self.columns = columns
        self.length = length

    @classmethod
    def from_rows(cls, rows: Sequence[tuple], width: int) -> "ColumnBatch":
        """Transpose a row list into a column batch (one ``zip`` pass)."""
        if width == 0:
            return cls((), len(rows))
        return cls(tuple(zip(*rows)), len(rows))

    @classmethod
    def from_columns(cls, columns: Sequence[Column], width: int) -> "ColumnBatch":
        """Wrap per-column sequences; ``width`` guards the zero-row case."""
        if width == 0:
            raise ValueError("from_columns needs at least one column; "
                             "use ColumnBatch((), length) for zero-width rows")
        columns = tuple(columns)
        return cls(columns, len(columns[0]))

    # -- row view (the adapter legacy consumers read through) ----------

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[tuple]:
        if not self.columns:
            empty = ()
            return iter([empty] * self.length)
        return zip(*self.columns)

    def rows(self) -> list[tuple]:
        """The batch as a row-tuple list (the ``batches()`` layout)."""
        if not self.columns:
            return [()] * self.length
        return list(zip(*self.columns))

    def row(self, index: int) -> tuple:
        return tuple(column[index] for column in self.columns)

    # -- columnar operations -------------------------------------------

    def project(self, positions: Sequence[int]) -> "ColumnBatch":
        """Keep the given column positions — zero-copy, just a re-pick."""
        return ColumnBatch(
            tuple(self.columns[p] for p in positions), self.length
        )

    def take(self, indexes: Sequence[int]) -> "ColumnBatch":
        """Rows at the given indexes (a selection vector), per column."""
        return ColumnBatch(
            tuple([column[i] for i in indexes] for column in self.columns),
            len(indexes),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnBatch(width={len(self.columns)}, rows={self.length})"


def rows_to_columns(rows: Sequence[tuple], width: int) -> ColumnBatch:
    """Module-level alias of :meth:`ColumnBatch.from_rows`."""
    return ColumnBatch.from_rows(rows, width)


def concat_batches(
    batches: Iterable[ColumnBatch], width: int
) -> ColumnBatch | None:
    """Concatenate column batches of one schema; None when all empty."""
    batches = [batch for batch in batches if batch.length]
    if not batches:
        return None
    if len(batches) == 1:
        return batches[0]
    length = sum(batch.length for batch in batches)
    if width == 0:
        return ColumnBatch((), length)
    columns = []
    for position in range(width):
        merged: list = []
        for batch in batches:
            merged.extend(batch.columns[position])
        columns.append(merged)
    return ColumnBatch(tuple(columns), length)
