"""The unified physical query-execution engine.

One operator algebra executes both halves of the paper's Figure 8
comparison: conjunctive queries evaluated directly on the dictionary-
encoded triple store, and rewriting plans evaluated over materialized
view extents. See :mod:`repro.engine.operators` for the physical
operators, :mod:`repro.engine.planner` for plan compilation and join
ordering, and :mod:`repro.engine.extents` for hash-indexed view
extents.

Public surface::

    run_query(query, store, engine="auto")      # CQ -> set of answers
    run_plan(plan, extents, engine="auto")      # algebra Plan -> rows
    plan_query / plan_rewriting                 # operator trees (explain)
    choose_engine(query, store)                 # cost-based auto choice
    ENGINES / FIXED_ENGINES                     # selectable strategies

``engine="auto"`` is cost-based: the shared cardinality estimator
(:mod:`repro.stats`) prices every fixed strategy per query and the
cheapest is compiled, with the choice cached in the prepared-plan
cache until the store mutates.
"""

from repro.engine.extents import ViewExtent
from repro.engine.operators import (
    Distinct,
    Empty,
    ExtentScan,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    MergeJoin,
    Operator,
    Projection,
    Relabel,
    Selection,
)
from repro.engine.planner import (
    ENGINES,
    FIXED_ENGINES,
    HYBRID,
    choose_engine,
    plan_query,
    plan_rewriting,
    run_plan,
    run_query,
)

__all__ = [
    "ENGINES",
    "FIXED_ENGINES",
    "HYBRID",
    "choose_engine",
    "Distinct",
    "Empty",
    "ExtentScan",
    "HashJoin",
    "IndexNestedLoopJoin",
    "IndexScan",
    "MergeJoin",
    "Operator",
    "Projection",
    "Relabel",
    "Selection",
    "ViewExtent",
    "plan_query",
    "plan_rewriting",
    "run_plan",
    "run_query",
]
