"""The unified physical query-execution engine.

One operator algebra executes both halves of the paper's Figure 8
comparison: conjunctive queries evaluated directly on the dictionary-
encoded triple store, and rewriting plans evaluated over materialized
view extents. See :mod:`repro.engine.operators` for the physical
operators, :mod:`repro.engine.planner` for plan compilation and join
ordering, and :mod:`repro.engine.extents` for hash-indexed view
extents.

Public surface::

    run_query(query, store, engine="auto",
              batch_size=DEFAULT_BATCH_SIZE, workers=1)   # CQ -> answers
    run_plan(plan, extents, engine="auto",
             batch_size=DEFAULT_BATCH_SIZE)               # Plan -> rows
    plan_query / plan_rewriting                 # operator trees (explain)
    plan_pushdown(query, store)                 # whole-plan SQL route
    choose_engine(query, store)                 # cost-based auto choice
    ENGINES / FIXED_ENGINES / SQL_PUSHDOWN      # strategies & routes
    DEFAULT_BATCH_SIZE / PARALLEL_ROW_THRESHOLD # batch/parallel knobs

``engine="auto"`` is cost-based: the shared cardinality estimator
(:mod:`repro.stats`) prices every fixed strategy per query and the
cheapest is compiled, with the choice cached in the prepared-plan
cache until the store mutates. On a backend that executes SQL itself
(SQLite), ``auto`` first tries **whole-plan SQL pushdown**: the entire
conjunctive query compiles to one SQL statement
(:mod:`repro.engine.sqlcompile`) evaluated inside the backend, and the
operator tree is the fallback for shapes SQL cannot express.

Execution is batch-at-a-time by default: operators exchange row-list
batches (``list`` of row tuples, at most ``batch_size`` per hand-off —
see :mod:`repro.engine.operators` for the contract), with storage
backends feeding batches natively. ``batch_size=None`` falls back to
the historical tuple-at-a-time path. With ``workers > 1``, hash joins
above an estimated-cardinality threshold execute as parallel
partitioned joins over a cached process pool
(:class:`~repro.engine.operators.PartitionedHashJoin`).
"""

from repro.engine.extents import ViewExtent
from repro.engine.operators import (
    DEFAULT_BATCH_SIZE,
    Distinct,
    Empty,
    ExtentScan,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    MergeJoin,
    Operator,
    PartitionedHashJoin,
    Projection,
    Relabel,
    Selection,
)
from repro.engine.planner import (
    ENGINES,
    FIXED_ENGINES,
    HYBRID,
    PARALLEL_ROW_THRESHOLD,
    SQL_PUSHDOWN,
    choose_engine,
    plan_pushdown,
    plan_query,
    plan_rewriting,
    run_plan,
    run_query,
)
from repro.engine.sqlcompile import CompiledQuery, compile_query

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "ENGINES",
    "FIXED_ENGINES",
    "HYBRID",
    "PARALLEL_ROW_THRESHOLD",
    "SQL_PUSHDOWN",
    "CompiledQuery",
    "choose_engine",
    "compile_query",
    "plan_pushdown",
    "Distinct",
    "Empty",
    "ExtentScan",
    "HashJoin",
    "IndexNestedLoopJoin",
    "IndexScan",
    "MergeJoin",
    "Operator",
    "PartitionedHashJoin",
    "Projection",
    "Relabel",
    "Selection",
    "ViewExtent",
    "plan_query",
    "plan_rewriting",
    "run_plan",
    "run_query",
]
