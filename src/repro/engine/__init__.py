"""The unified physical query-execution engine.

One operator algebra executes both halves of the paper's Figure 8
comparison: conjunctive queries evaluated directly on the dictionary-
encoded triple store, and rewriting plans evaluated over materialized
view extents. See :mod:`repro.engine.operators` for the physical
operators, :mod:`repro.engine.planner` for plan compilation and join
ordering, and :mod:`repro.engine.extents` for hash-indexed view
extents.

Public surface::

    run_query(query, store, engine="auto",
              batch_size=DEFAULT_BATCH_SIZE, workers=1)   # CQ -> answers
    run_query_batch(queries, store, shared=True)   # MQO: batch -> answers
    run_plan(plan, extents, engine="auto",
             batch_size=DEFAULT_BATCH_SIZE)               # Plan -> rows
    plan_query / plan_rewriting                 # operator trees (explain)
    plan_pushdown(query, store)                 # whole-plan SQL route
    plan_batch / plan_union_pushdown            # shared-subplan DAG / UNION
    choose_engine(query, store)                 # cost-based auto choice
    ENGINES / FIXED_ENGINES / SQL_PUSHDOWN      # strategies & routes
    DEFAULT_BATCH_SIZE / PARALLEL_ROW_THRESHOLD # batch/parallel knobs

Batches of queries — reformulation unions and independent workloads
alike — run through the multi-query optimizer (:mod:`repro.engine.mqo`):
shared join subtrees across the batch are fingerprinted by canonical
form, cost-gated, executed once, and fanned out to every consumer; on a
SQL-capable backend an eligible union compiles into one
``SELECT ... UNION`` statement whose shared subtrees are CTEs.

``engine="auto"`` is cost-based: the shared cardinality estimator
(:mod:`repro.stats`) prices every fixed strategy per query and the
cheapest is compiled, with the choice cached in the prepared-plan
cache until the store mutates. On a backend that executes SQL itself
(SQLite), ``auto`` first tries **whole-plan SQL pushdown**: the entire
conjunctive query compiles to one SQL statement
(:mod:`repro.engine.sqlcompile`) evaluated inside the backend, and the
operator tree is the fallback for shapes SQL cannot express.

Execution is batched by default, in **columnar layout**: operators
exchange :class:`~repro.engine.columnar.ColumnBatch` objects (one
value sequence per column) through ``column_batches``, with storage
backends transposing batches natively; ``layout="row"`` keeps the
row-list batch path (``list`` of row tuples, at most ``batch_size``
per hand-off — see :mod:`repro.engine.operators` for both contracts)
as the ablation baseline, and ``batch_size=None`` falls back to the
historical tuple-at-a-time path. ``batch_size="adaptive"``
(:data:`ADAPTIVE_BATCH_SIZE`) lets every operator use the batch size
the planner derived from its estimated cardinality. With
``workers > 1``, hash joins above an estimated-cardinality threshold
execute as parallel partitioned joins over a cached process pool
(:class:`~repro.engine.operators.PartitionedHashJoin`), and large
unsorted base scans run morsel-driven over the same pool
(:data:`MORSEL_PARALLEL_THRESHOLD`, :data:`MORSEL_SIZE`).
"""

from repro.engine.columnar import ColumnBatch
from repro.engine.extents import ViewExtent
from repro.engine.mqo import (
    MATERIALIZE_COST_FACTOR,
    MQO_DAG,
    UNION_PUSHDOWN,
    BatchPlan,
    SharedNode,
    decode_images,
    describe_union_sharing,
    evaluate_union_shared,
    plan_batch,
    plan_union_pushdown,
    run_query_batch,
    union_signature,
)
from repro.engine.operators import (
    ADAPTIVE_BATCH_SIZE,
    DEFAULT_BATCH_SIZE,
    Distinct,
    Empty,
    ExtentScan,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    MergeJoin,
    Operator,
    PartitionedHashJoin,
    Projection,
    Relabel,
    Selection,
)
from repro.engine.parallel import MORSEL_SIZE
from repro.engine.planner import (
    ENGINES,
    FIXED_ENGINES,
    HYBRID,
    LAYOUTS,
    MORSEL_PARALLEL_THRESHOLD,
    PARALLEL_ROW_THRESHOLD,
    SQL_PUSHDOWN,
    choose_engine,
    plan_pushdown,
    plan_query,
    plan_rewriting,
    run_plan,
    run_query,
)
from repro.engine.sqlcompile import (
    CompiledQuery,
    CompiledUnion,
    compile_query,
    compile_union,
)

__all__ = [
    "ADAPTIVE_BATCH_SIZE",
    "DEFAULT_BATCH_SIZE",
    "ENGINES",
    "FIXED_ENGINES",
    "HYBRID",
    "LAYOUTS",
    "MATERIALIZE_COST_FACTOR",
    "MORSEL_PARALLEL_THRESHOLD",
    "MORSEL_SIZE",
    "MQO_DAG",
    "PARALLEL_ROW_THRESHOLD",
    "SQL_PUSHDOWN",
    "UNION_PUSHDOWN",
    "BatchPlan",
    "ColumnBatch",
    "CompiledQuery",
    "CompiledUnion",
    "SharedNode",
    "choose_engine",
    "compile_query",
    "compile_union",
    "decode_images",
    "describe_union_sharing",
    "evaluate_union_shared",
    "plan_batch",
    "plan_pushdown",
    "plan_union_pushdown",
    "run_query_batch",
    "union_signature",
    "Distinct",
    "Empty",
    "ExtentScan",
    "HashJoin",
    "IndexNestedLoopJoin",
    "IndexScan",
    "MergeJoin",
    "Operator",
    "PartitionedHashJoin",
    "Projection",
    "Relabel",
    "Selection",
    "ViewExtent",
    "plan_query",
    "plan_rewriting",
    "run_plan",
    "run_query",
]
