"""Physical operators of the unified execution engine.

Every operator exposes a ``schema`` (a tuple of column names) and yields
rows — plain tuples — when iterated. Operators compose into left-deep
trees; iteration is pull-based (generators), so upstream operators only
produce what downstream consumers demand.

Two value domains flow through the same operator classes:

* **dictionary codes** (ints) for plans over a :class:`TripleStore` —
  leaves are :class:`IndexScan`, joins may probe store indexes through
  :class:`IndexNestedLoopJoin` or use :class:`MergeJoin` over the
  store's sorted-permutation iterators;
* **decoded RDF terms** for plans over materialized view extents —
  leaves are :class:`ExtentScan`, joins are hash joins that reuse the
  extent's cached hash indexes (see :mod:`repro.engine.extents`).

The planner (:mod:`repro.engine.planner`) decides which operators to
instantiate; nothing here chooses join orders or algorithms.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.query.cq import Atom, Variable
from repro.rdf.store import TripleStore

#: A physical row: a tuple of dictionary codes or of decoded RDF terms.
PhysicalRow = tuple

#: Permutation name whose *leading* attribute is the given triple position.
_SORT_ORDERS = ("spo", "pso", "osp")


class Operator:
    """Base class: a schema plus an iterable of rows."""

    schema: tuple[str, ...] = ()
    #: Columns the output is known to be sorted by (a prefix order), or None.
    sorted_on: tuple[str, ...] | None = None

    def __iter__(self) -> Iterator[PhysicalRow]:
        raise NotImplementedError

    def rows(self) -> list[PhysicalRow]:
        """Materialize the full output."""
        return list(self)

    def hash_index(self, positions: tuple[int, ...]):
        """A prebuilt hash index keyed on ``positions``, or None.

        Overridden by :class:`ExtentScan` over indexed extents so hash
        joins can skip the build phase entirely.
        """
        return None

    def explain(self, depth: int = 0) -> str:
        """An indented one-line-per-operator rendering of the subtree."""
        lines = [("  " * depth) + self._describe()]
        for child in self._children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)

    def _describe(self) -> str:
        return f"{type(self).__name__}{list(self.schema)}"

    def _children(self) -> tuple["Operator", ...]:
        return ()


class Empty(Operator):
    """A leaf producing no rows (a constant absent from the dictionary)."""

    def __init__(self, schema: tuple[str, ...] = ()) -> None:
        self.schema = schema

    def __iter__(self) -> Iterator[PhysicalRow]:
        return iter(())


class ExtentScan(Operator):
    """Scan a materialized view extent (rows of decoded terms)."""

    def __init__(self, name: str, rows: Sequence[PhysicalRow], schema: tuple[str, ...]) -> None:
        self.name = name
        self._rows = rows
        self.schema = schema

    def __iter__(self) -> Iterator[PhysicalRow]:
        return iter(self._rows)

    def rows(self) -> list[PhysicalRow]:
        return list(self._rows)

    def hash_index(self, positions: tuple[int, ...]):
        index_on = getattr(self._rows, "index_on", None)
        if index_on is None:
            return None
        return index_on(positions)

    def _describe(self) -> str:
        return f"ExtentScan({self.name}){list(self.schema)}"


def _compile_atom(
    atom: Atom,
    store: TripleStore,
    non_literal: frozenset[Variable],
    bound: dict[str, int] | None = None,
):
    """Shared atom compilation for scans and index-nested-loop probes.

    Returns ``(template, fills, out, eqs, nl, impossible)``:

    * ``template`` — the encoded pattern with constants filled in;
    * ``fills`` — ``(position, input column)`` pairs for variables bound
      by the left input (empty when compiling a leaf scan);
    * ``out`` — ``(position, name)`` for newly bound variables;
    * ``eqs`` — intra-atom equality checks for repeated new variables;
    * ``nl`` — positions whose new variable must not bind a literal;
    * ``impossible`` — True when a constant is absent from the data.
    """
    template: list[int | None] = []
    fills: list[tuple[int, int]] = []
    out: list[tuple[int, str]] = []
    eqs: list[tuple[int, int]] = []
    nl: list[int] = []
    first_seen: dict[Variable, int] = {}
    filled: set[Variable] = set()
    impossible = False
    for position, term in enumerate(atom):
        if isinstance(term, Variable):
            template.append(None)
            if term in filled:
                # Bound by the input at an earlier position too: fill
                # both pattern slots, the probe stays consistent.
                fills.append((position, (bound or {})[term.name]))
            elif term in first_seen:
                eqs.append((first_seen[term], position))
            elif bound is not None and term.name in bound:
                fills.append((position, bound[term.name]))
                filled.add(term)
            else:
                first_seen[term] = position
                out.append((position, term.name))
                if term in non_literal:
                    nl.append(position)
        else:
            code = store.encode_term(term)
            if code is None:
                impossible = True
            template.append(code)
    return template, tuple(fills), tuple(out), tuple(eqs), tuple(nl), impossible


class IndexScan(Operator):
    """Match one triple atom through the store's pattern indexes.

    Output columns are the atom's distinct variables in ``(s, p, o)``
    order; repeated variables become intra-atom equality filters, and
    ``non_literal`` variables reject literal codes at binding time (the
    reformulation rule-4 semantics). With ``sort_by`` set to one of the
    output columns, rows come back ordered by that column's code via the
    store's sorted-permutation iterators — the input contract of
    :class:`MergeJoin`.
    """

    def __init__(
        self,
        store: TripleStore,
        atom: Atom,
        non_literal: frozenset[Variable] = frozenset(),
        sort_by: str | None = None,
    ) -> None:
        self.store = store
        self.atom = atom
        self.non_literal = non_literal
        template, _, out, eqs, nl, impossible = _compile_atom(atom, store, non_literal)
        self.pattern = (template[0], template[1], template[2])
        self._out = out
        self._eqs = eqs
        self._nl = nl
        self.impossible = impossible
        self.schema = tuple(name for _, name in out)
        self.sort_by = sort_by
        if sort_by is not None:
            if sort_by not in self.schema:
                raise ValueError(f"sort column {sort_by!r} not produced by {self.schema}")
            self.sorted_on = (sort_by,)

    def __iter__(self) -> Iterator[PhysicalRow]:
        if self.impossible:
            return
        if self.sort_by is None:
            matches: Iterable = self.store.match_encoded(self.pattern)
        else:
            position = next(pos for pos, name in self._out if name == self.sort_by)
            matches = self.store.match_sorted(self.pattern, _SORT_ORDERS[position])
        out, eqs, nl = self._out, self._eqs, self._nl
        if not eqs and not nl:
            for triple in matches:
                yield tuple(triple[position] for position, _ in out)
            return
        is_literal = self.store.dictionary.is_literal_code
        for triple in matches:
            if any(triple[i] != triple[j] for i, j in eqs):
                continue
            if any(is_literal(triple[position]) for position in nl):
                continue
            yield tuple(triple[position] for position, _ in out)

    def _describe(self) -> str:
        return f"IndexScan({self.atom}){list(self.schema)}"


class IndexNestedLoopJoin(Operator):
    """Join the input with one atom by probing the store's indexes.

    For every input row the atom's variables already present in the
    input schema are substituted into the encoded pattern and the store
    answers the probe through its tightest index — the engine version of
    the seed's greedy index-nested-loop step, with the join order frozen
    at plan time instead of re-counted per recursion.
    """

    def __init__(
        self,
        child: Operator,
        store: TripleStore,
        atom: Atom,
        non_literal: frozenset[Variable] = frozenset(),
    ) -> None:
        self.child = child
        self.store = store
        self.atom = atom
        bound = {name: position for position, name in enumerate(child.schema)}
        template, fills, out, eqs, nl, impossible = _compile_atom(
            atom, store, non_literal, bound
        )
        self._template = template
        self._fills = fills
        self._out = out
        self._eqs = eqs
        self._nl = nl
        self.impossible = impossible
        self.schema = child.schema + tuple(name for _, name in out)

    def __iter__(self) -> Iterator[PhysicalRow]:
        if self.impossible:
            return
        template, fills, out = self._template, self._fills, self._out
        eqs, nl = self._eqs, self._nl
        match = self.store.match_encoded
        is_literal = self.store.dictionary.is_literal_code
        for row in self.child:
            pattern = list(template)
            for position, column in fills:
                pattern[position] = row[column]
            for triple in match((pattern[0], pattern[1], pattern[2])):
                if any(triple[i] != triple[j] for i, j in eqs):
                    continue
                if any(is_literal(triple[position]) for position in nl):
                    continue
                yield row + tuple(triple[position] for position, _ in out)

    def _describe(self) -> str:
        return f"IndexNestedLoopJoin({self.atom}){list(self.schema)}"

    def _children(self) -> tuple[Operator, ...]:
        return (self.child,)


class HashJoin(Operator):
    """Equi-join: build a hash table on the right input, stream the left.

    ``pairs`` are ``(left position, right position)`` key pairs;
    ``keep_right`` lists the right positions appended to each output row
    (natural-join semantics drop the right copy of shared columns).
    When the right input exposes a prebuilt hash index (a scan over an
    indexed view extent), the build phase is skipped entirely.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        pairs: Sequence[tuple[int, int]],
        keep_right: Sequence[int],
    ) -> None:
        self.left = left
        self.right = right
        self._left_keys = tuple(lp for lp, _ in pairs)
        self._right_keys = tuple(rp for _, rp in pairs)
        self._keep_right = tuple(keep_right)
        self.schema = left.schema + tuple(right.schema[p] for p in self._keep_right)

    def __iter__(self) -> Iterator[PhysicalRow]:
        right_keys, keep = self._right_keys, self._keep_right
        table = self.right.hash_index(right_keys)
        if table is None:
            table = {}
            for row in self.right:
                key = tuple(row[p] for p in right_keys)
                table.setdefault(key, []).append(row)
        left_keys = self._left_keys
        for row in self.left:
            matches = table.get(tuple(row[p] for p in left_keys))
            if matches:
                for other in matches:
                    yield row + tuple(other[p] for p in keep)

    def _describe(self) -> str:
        condition = ",".join(
            f"{self.left.schema[lp]}={self.right.schema[rp]}"
            for lp, rp in zip(self._left_keys, self._right_keys)
        )
        return f"HashJoin[{condition}]{list(self.schema)}"

    def _children(self) -> tuple[Operator, ...]:
        return (self.left, self.right)


class MergeJoin(Operator):
    """Sort-merge equi-join.

    Inputs are materialized and sorted on their key columns unless their
    ``sorted_on`` already matches (leaf scans over the store's sorted
    permutations arrive presorted). ``value_key`` maps a single value to
    a sortable key — dictionary codes are naturally ordered, decoded RDF
    terms sort by their N-Triples rendering.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        pairs: Sequence[tuple[int, int]],
        keep_right: Sequence[int],
        value_key: Callable | None = None,
    ) -> None:
        self.left = left
        self.right = right
        self._left_keys = tuple(lp for lp, _ in pairs)
        self._right_keys = tuple(rp for _, rp in pairs)
        self._keep_right = tuple(keep_right)
        self._value_key = value_key
        self.schema = left.schema + tuple(right.schema[p] for p in self._keep_right)

    def _key_function(self, positions: tuple[int, ...]) -> Callable[[PhysicalRow], tuple]:
        value_key = self._value_key
        if value_key is None:
            return lambda row: tuple(row[p] for p in positions)
        return lambda row: tuple(value_key(row[p]) for p in positions)

    def _sorted_input(self, child: Operator, positions: tuple[int, ...], key) -> list:
        rows = child.rows()
        columns = tuple(child.schema[p] for p in positions)
        if child.sorted_on is not None and child.sorted_on[: len(columns)] == columns:
            return rows
        rows.sort(key=key)
        return rows

    def __iter__(self) -> Iterator[PhysicalRow]:
        left_key = self._key_function(self._left_keys)
        right_key = self._key_function(self._right_keys)
        left_rows = self._sorted_input(self.left, self._left_keys, left_key)
        right_rows = self._sorted_input(self.right, self._right_keys, right_key)
        keep = self._keep_right
        i = j = 0
        n_left, n_right = len(left_rows), len(right_rows)
        while i < n_left and j < n_right:
            lk, rk = left_key(left_rows[i]), right_key(right_rows[j])
            if lk < rk:
                i += 1
            elif rk < lk:
                j += 1
            else:
                i_end = i + 1
                while i_end < n_left and left_key(left_rows[i_end]) == lk:
                    i_end += 1
                j_end = j + 1
                while j_end < n_right and right_key(right_rows[j_end]) == rk:
                    j_end += 1
                for row in left_rows[i:i_end]:
                    for other in right_rows[j:j_end]:
                        yield row + tuple(other[p] for p in keep)
                i, j = i_end, j_end

    def _describe(self) -> str:
        condition = ",".join(
            f"{self.left.schema[lp]}={self.right.schema[rp]}"
            for lp, rp in zip(self._left_keys, self._right_keys)
        )
        return f"MergeJoin[{condition}]{list(self.schema)}"

    def _children(self) -> tuple[Operator, ...]:
        return (self.left, self.right)


class Selection(Operator):
    """Filter rows by an arbitrary predicate; preserves order and schema."""

    def __init__(self, child: Operator, predicate: Callable[[PhysicalRow], bool]) -> None:
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        self.sorted_on = child.sorted_on

    def __iter__(self) -> Iterator[PhysicalRow]:
        predicate = self.predicate
        return (row for row in self.child if predicate(row))

    def _children(self) -> tuple[Operator, ...]:
        return (self.child,)


class Projection(Operator):
    """Keep the given column positions; optionally deduplicate.

    Deduplication preserves first-occurrence order, matching the set
    semantics of conjunctive rewritings (the algebra ``Project``).
    """

    def __init__(
        self,
        child: Operator,
        positions: Sequence[int],
        schema: tuple[str, ...],
        distinct: bool = True,
    ) -> None:
        self.child = child
        self._positions = tuple(positions)
        self.schema = schema
        self.distinct = distinct

    def __iter__(self) -> Iterator[PhysicalRow]:
        positions = self._positions
        if not self.distinct:
            for row in self.child:
                yield tuple(row[p] for p in positions)
            return
        seen: set = set()
        for row in self.child:
            image = tuple(row[p] for p in positions)
            if image not in seen:
                seen.add(image)
                yield image

    def _describe(self) -> str:
        return f"Projection[{','.join(self.schema)}]"

    def _children(self) -> tuple[Operator, ...]:
        return (self.child,)


class Distinct(Operator):
    """Drop duplicate rows, preserving first-occurrence order."""

    def __init__(self, child: Operator) -> None:
        self.child = child
        self.schema = child.schema

    def __iter__(self) -> Iterator[PhysicalRow]:
        seen: set = set()
        for row in self.child:
            if row not in seen:
                seen.add(row)
                yield row

    def _children(self) -> tuple[Operator, ...]:
        return (self.child,)


class Relabel(Operator):
    """Rename the columns of the input positionally (zero-cost)."""

    def __init__(self, child: Operator, schema: tuple[str, ...]) -> None:
        if len(schema) != len(child.schema):
            raise ValueError(
                f"relabel arity {len(schema)} differs from child schema {child.schema}"
            )
        self.child = child
        self.schema = schema

    def __iter__(self) -> Iterator[PhysicalRow]:
        return iter(self.child)

    def _children(self) -> tuple[Operator, ...]:
        return (self.child,)
