"""Physical operators of the unified execution engine.

Every operator exposes a ``schema`` (a tuple of column names) and three
pull-based execution paths over the same plan tree:

* **columnar** (:meth:`Operator.column_batches`, the default execution
  mode of ``run_query``) — the operator produces
  :class:`~repro.engine.columnar.ColumnBatch` objects: one value
  sequence per schema column, all of one length. Projection and
  relabeling are zero-copy column picks, single-column join keys are
  read as vectors (no per-row key tuple), and join outputs assemble
  per column over a selection vector. The per-batch row target is
  *advisory* on this path: joins may emit batches larger than ``size``
  rather than pay a repacking pass;
* **batch-at-a-time** (:meth:`Operator.batches`) — the operator
  produces *row-list batches*: plain Python ``list`` objects holding at
  most ``size`` rows (tuples), never empty. This is the engine's
  row-batch contract: a batch is a ``list[tuple]``, row layout
  identical to the row-at-a-time path, with no padding and no fixed
  fill degree (operators may emit short batches after filtering).
  Batches collapse the per-row generator hand-off between operators
  into one call per ~thousand rows and let the inner loops run as
  C-speed list comprehensions / ``itemgetter`` maps;
* **tuple-at-a-time** (``__iter__``) — the historical one-row-per-
  ``yield`` path, kept as the benchmark baseline and for consumers that
  genuinely want early exit after a handful of rows.

Either batched path accepts :data:`ADAPTIVE_BATCH_SIZE` in place of a
row count: each operator then resolves its *own* planner-annotated
``preferred_batch_size`` (see ``planner._compile_query``) and passes
the sentinel through to its children, so a small-output join can run
narrow batches above a wide-batch scan in the same tree.

Base :class:`IndexScan` leaves additionally support **morsel-driven
parallel scanning**: the planner sets ``morsel_workers`` on large
scans, and the scan then pulls its matches as fixed-size morsels
projected by the cached fork pool (:mod:`repro.engine.parallel`),
yielding exactly the serial row sequence.

Two value domains flow through the same operator classes:

* **dictionary codes** (ints) for plans over a :class:`TripleStore` —
  leaves are :class:`IndexScan`, joins may probe store indexes through
  :class:`IndexNestedLoopJoin` (whose batched path answers a whole
  batch of probes through ``match_many_encoded`` — one SQL statement
  per batch on the SQLite backend) or use :class:`MergeJoin` over the
  store's sorted-permutation iterators;
* **decoded RDF terms** for plans over materialized view extents —
  leaves are :class:`ExtentScan`, joins are hash joins that reuse the
  extent's cached hash indexes (see :mod:`repro.engine.extents`).

The planner (:mod:`repro.engine.planner`) decides which operators to
instantiate; nothing here chooses join orders or algorithms.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Iterable, Iterator, Sequence

from repro.engine.columnar import ColumnBatch
from repro.query.cq import Atom, Variable
from repro.rdf.store import TripleStore
from repro.storage.base import DEFAULT_BATCH_SIZE

#: A physical row: a tuple of dictionary codes or of decoded RDF terms.
PhysicalRow = tuple

#: A batch: a non-empty list of at most ``size`` physical rows.
Batch = list

#: Sentinel accepted wherever a batch size goes: each operator resolves
#: its planner-annotated ``preferred_batch_size`` instead of one global
#: row count (and passes the sentinel on to its children).
ADAPTIVE_BATCH_SIZE = "adaptive"

#: Permutation name whose *leading* attribute is the given triple position.
_SORT_ORDERS = ("spo", "pso", "osp")


def _rebatch(chunks: Iterable[list], size: int) -> Iterator[Batch]:
    """Repack an iterable of row-lists into batches of at most ``size``.

    The shared flush loop of the joins' batched paths. Linear in total
    rows: every row is appended once and sliced out once — no
    front-deletion of the pending list (which would go quadratic on
    multi-million-row join outputs).
    """
    pending: list = []
    for chunk in chunks:
        pending.extend(chunk)
        length = len(pending)
        if length >= size:
            for start in range(0, length - size + 1, size):
                yield pending[start : start + size]
            tail = length % size
            pending = pending[length - tail :] if tail else []
    if pending:
        yield pending


def _projector(positions: Sequence[int]) -> Callable[[PhysicalRow], tuple]:
    """A C-speed row projector that *always* returns a tuple.

    ``itemgetter`` returns a bare value for a single position, so the
    one- and zero-column cases get explicit lambdas; join keys and
    projected rows must be tuples in every arity.
    """
    positions = tuple(positions)
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        position = positions[0]
        return lambda row: (row[position],)
    return itemgetter(*positions)


class Operator:
    """Base class: a schema plus an iterable of rows."""

    schema: tuple[str, ...] = ()
    #: Columns the output is known to be sorted by (a prefix order), or None.
    sorted_on: tuple[str, ...] | None = None
    #: Planner-annotated batch size for this operator (rows), consulted
    #: when the caller passes :data:`ADAPTIVE_BATCH_SIZE`; None means
    #: unannotated (the default size applies).
    preferred_batch_size: int | None = None

    def _batch_size(self, size) -> int:
        """Resolve a possibly-adaptive batch size to a row count."""
        if size == ADAPTIVE_BATCH_SIZE:
            return self.preferred_batch_size or DEFAULT_BATCH_SIZE
        return size

    def __iter__(self) -> Iterator[PhysicalRow]:
        raise NotImplementedError

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        """The batch-at-a-time path: non-empty lists of ≤ ``size`` rows.

        The base implementation chunks the row iterator, so any operator
        is batch-consumable; the built-in operators override it with
        natively vectorized loops that also pull their children through
        ``batches`` — one override makes the whole subtree batched.
        """
        size = self._batch_size(size)
        batch: Batch = []
        append = batch.append
        for row in self:
            append(row)
            if len(batch) >= size:
                yield batch
                batch = []
                append = batch.append
        if batch:
            yield batch

    def column_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[ColumnBatch]:
        """The columnar path: :class:`ColumnBatch` per batch of rows.

        The base implementation transposes :meth:`batches` (one C-speed
        ``zip`` per batch), so any operator is columnar-consumable —
        including probed trees and third-party operators. The built-in
        scans, joins and row shapers override it with natively columnar
        loops. ``size`` is advisory here: overrides may emit larger
        batches (join fan-out) instead of paying a repacking pass.
        """
        width = len(self.schema)
        for batch in self.batches(size):
            yield ColumnBatch.from_rows(batch, width)

    def rows(self) -> list[PhysicalRow]:
        """Materialize the full output."""
        return list(self)

    def rows_batched(self, size: int = DEFAULT_BATCH_SIZE) -> list[PhysicalRow]:
        """Materialize the full output through the batched path."""
        out: list[PhysicalRow] = []
        for batch in self.batches(size):
            out.extend(batch)
        return out

    def hash_index(self, positions: tuple[int, ...]):
        """A prebuilt hash index keyed on ``positions``, or None.

        Overridden by :class:`ExtentScan` over indexed extents so hash
        joins can skip the build phase entirely.
        """
        return None

    def hash_tails(self, positions: tuple[int, ...], keep: tuple[int, ...]):
        """Prebuilt, pre-projected join tails keyed on ``positions``.

        Like :meth:`hash_index`, but the buckets hold rows already
        projected to ``keep`` — the batched hash join's preferred build
        input. None when the operator cannot provide it.
        """
        return None

    def explain(self, depth: int = 0) -> str:
        """An indented one-line-per-operator rendering of the subtree."""
        lines = [("  " * depth) + self._describe()]
        for child in self._children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)

    def _describe(self) -> str:
        return f"{type(self).__name__}{list(self.schema)}"

    def _children(self) -> tuple["Operator", ...]:
        return ()


class Empty(Operator):
    """A leaf producing no rows (a constant absent from the dictionary)."""

    def __init__(self, schema: tuple[str, ...] = ()) -> None:
        self.schema = schema

    def __iter__(self) -> Iterator[PhysicalRow]:
        return iter(())

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        return iter(())

    def column_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[ColumnBatch]:
        return iter(())


class ExtentScan(Operator):
    """Scan a materialized view extent (rows of decoded terms)."""

    def __init__(self, name: str, rows: Sequence[PhysicalRow], schema: tuple[str, ...]) -> None:
        self.name = name
        self._rows = rows
        self.schema = schema

    def __iter__(self) -> Iterator[PhysicalRow]:
        return iter(self._rows)

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        size = self._batch_size(size)
        rows = self._rows
        for start in range(0, len(rows), size):
            yield list(rows[start : start + size])

    def column_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[ColumnBatch]:
        size = self._batch_size(size)
        rows = self._rows
        width = len(self.schema)
        for start in range(0, len(rows), size):
            yield ColumnBatch.from_rows(rows[start : start + size], width)

    def rows(self) -> list[PhysicalRow]:
        return list(self._rows)

    def hash_index(self, positions: tuple[int, ...]):
        index_on = getattr(self._rows, "index_on", None)
        if index_on is None:
            return None
        return index_on(positions)

    def hash_tails(self, positions: tuple[int, ...], keep: tuple[int, ...]):
        tails_on = getattr(self._rows, "tails_on", None)
        if tails_on is None:
            return None
        return tails_on(positions, keep)

    def _describe(self) -> str:
        return f"ExtentScan({self.name}){list(self.schema)}"


def _compile_atom(
    atom: Atom,
    store: TripleStore,
    non_literal: frozenset[Variable],
    bound: dict[str, int] | None = None,
):
    """Shared atom compilation for scans and index-nested-loop probes.

    Returns ``(template, fills, out, eqs, nl, impossible)``:

    * ``template`` — the encoded pattern with constants filled in;
    * ``fills`` — ``(position, input column)`` pairs for variables bound
      by the left input (empty when compiling a leaf scan);
    * ``out`` — ``(position, name)`` for newly bound variables;
    * ``eqs`` — intra-atom equality checks for repeated new variables;
    * ``nl`` — positions whose new variable must not bind a literal;
    * ``impossible`` — True when a constant is absent from the data.
    """
    template: list[int | None] = []
    fills: list[tuple[int, int]] = []
    out: list[tuple[int, str]] = []
    eqs: list[tuple[int, int]] = []
    nl: list[int] = []
    first_seen: dict[Variable, int] = {}
    filled: set[Variable] = set()
    impossible = False
    for position, term in enumerate(atom):
        if isinstance(term, Variable):
            template.append(None)
            if term in filled:
                # Bound by the input at an earlier position too: fill
                # both pattern slots, the probe stays consistent.
                fills.append((position, (bound or {})[term.name]))
            elif term in first_seen:
                eqs.append((first_seen[term], position))
            elif bound is not None and term.name in bound:
                fills.append((position, bound[term.name]))
                filled.add(term)
            else:
                first_seen[term] = position
                out.append((position, term.name))
                if term in non_literal:
                    nl.append(position)
        else:
            code = store.encode_term(term)
            if code is None:
                impossible = True
            template.append(code)
    return template, tuple(fills), tuple(out), tuple(eqs), tuple(nl), impossible


class IndexScan(Operator):
    """Match one triple atom through the store's pattern indexes.

    Output columns are the atom's distinct variables in ``(s, p, o)``
    order; repeated variables become intra-atom equality filters, and
    ``non_literal`` variables reject literal codes at binding time (the
    reformulation rule-4 semantics). With ``sort_by`` set to one of the
    output columns, rows come back ordered by that column's code via the
    store's sorted-permutation iterators — the input contract of
    :class:`MergeJoin`.

    With ``morsel_workers`` set above 1 (the planner does this for
    scans whose estimated cardinality clears its morsel threshold), the
    unsorted batched paths pull the matches as fixed-size morsels
    projected in parallel by the cached fork pool — answers identical
    to the serial scan, in the same order. Sorted scans and scans with
    literal filters (which need the dictionary in-process) stay serial.
    """

    def __init__(
        self,
        store: TripleStore,
        atom: Atom,
        non_literal: frozenset[Variable] = frozenset(),
        sort_by: str | None = None,
    ) -> None:
        self.store = store
        self.atom = atom
        self.non_literal = non_literal
        template, _, out, eqs, nl, impossible = _compile_atom(atom, store, non_literal)
        self.pattern = (template[0], template[1], template[2])
        self._out = out
        self._eqs = eqs
        self._nl = nl
        self.impossible = impossible
        self.schema = tuple(name for _, name in out)
        self.sort_by = sort_by
        #: Workers for morsel-parallel scanning (≤ 1 = serial); set by
        #: the planner after construction, rides the plan cache.
        self.morsel_workers = 0
        if sort_by is not None:
            if sort_by not in self.schema:
                raise ValueError(f"sort column {sort_by!r} not produced by {self.schema}")
            self.sorted_on = (sort_by,)

    def __iter__(self) -> Iterator[PhysicalRow]:
        if self.impossible:
            return
        if self.sort_by is None:
            matches: Iterable = self.store.match_encoded(self.pattern)
        else:
            position = next(pos for pos, name in self._out if name == self.sort_by)
            matches = self.store.match_sorted(self.pattern, _SORT_ORDERS[position])
        out, eqs, nl = self._out, self._eqs, self._nl
        if not eqs and not nl:
            for triple in matches:
                yield tuple(triple[position] for position, _ in out)
            return
        is_literal = self.store.dictionary.is_literal_code
        for triple in matches:
            if any(triple[i] != triple[j] for i, j in eqs):
                continue
            if any(is_literal(triple[position]) for position in nl):
                continue
            yield tuple(triple[position] for position, _ in out)

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        if self.impossible:
            return
        size = self._batch_size(size)
        if self.sort_by is None:
            if self.morsel_workers > 1 and not self._nl:
                yield from self._morsel_batches(size)
                return
            source = self.store.match_encoded_batches(self.pattern, size)
        else:
            position = next(pos for pos, name in self._out if name == self.sort_by)
            source = self.store.match_sorted_batches(
                self.pattern, _SORT_ORDERS[position], size
            )
        eqs, nl = self._eqs, self._nl
        project = _projector(tuple(position for position, _ in self._out))
        if not eqs and not nl:
            for chunk in source:
                yield [project(triple) for triple in chunk]
            return
        is_literal = self.store.dictionary.is_literal_code
        for chunk in source:
            batch = [
                project(triple)
                for triple in chunk
                if not any(triple[i] != triple[j] for i, j in eqs)
                and not any(is_literal(triple[position]) for position in nl)
            ]
            if batch:
                yield batch

    def _morsel_batches(self, size: int) -> Iterator[Batch]:
        """Pull the scan as pool-projected morsels, repacked to ``size``."""
        from repro.engine import parallel

        morsels = self.store.match_encoded_batches(self.pattern, parallel.MORSEL_SIZE)
        chunks = parallel.scan_morsels(
            morsels,
            tuple(position for position, _ in self._out),
            self._eqs,
            self.morsel_workers,
        )
        yield from _rebatch(chunks, size)

    def column_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[ColumnBatch]:
        if self.impossible:
            return
        size = self._batch_size(size)
        width = len(self.schema)
        if self.sort_by is not None:
            # Sorted scans feed merge joins, which materialize rows
            # anyway: transpose the (already filtered) row batches.
            for batch in self.batches(size):
                yield ColumnBatch.from_rows(batch, width)
            return
        if self.morsel_workers > 1 and not self._nl:
            for batch in self._morsel_batches(size):
                yield ColumnBatch.from_rows(batch, width)
            return
        out_positions = tuple(position for position, _ in self._out)
        eqs, nl = self._eqs, self._nl
        source = self.store.match_encoded_columns(self.pattern, size)
        if not eqs and not nl:
            # The vectorized fast path: pick 0–3 of the backend's s/p/o
            # columns per batch — no per-row tuple is ever built.
            for columns in source:
                yield ColumnBatch(
                    tuple(columns[p] for p in out_positions), len(columns[0])
                )
            return
        is_literal = self.store.dictionary.is_literal_code
        for columns in source:
            length = len(columns[0])
            keep: Sequence[int] = range(length)
            for i, j in eqs:
                column_i, column_j = columns[i], columns[j]
                keep = [k for k in keep if column_i[k] == column_j[k]]
            for position in nl:
                column = columns[position]
                keep = [k for k in keep if not is_literal(column[k])]
            kept = len(keep)
            if not kept:
                continue
            if kept == length:
                yield ColumnBatch(
                    tuple(columns[p] for p in out_positions), length
                )
            else:
                yield ColumnBatch(
                    tuple([columns[p][k] for k in keep] for p in out_positions),
                    kept,
                )

    def _describe(self) -> str:
        return f"IndexScan({self.atom}){list(self.schema)}"


class IndexNestedLoopJoin(Operator):
    """Join the input with one atom by probing the store's indexes.

    For every input row the atom's variables already present in the
    input schema are substituted into the encoded pattern and the store
    answers the probe through its tightest index — the engine version of
    the seed's greedy index-nested-loop step, with the join order frozen
    at plan time instead of re-counted per recursion.
    """

    def __init__(
        self,
        child: Operator,
        store: TripleStore,
        atom: Atom,
        non_literal: frozenset[Variable] = frozenset(),
    ) -> None:
        self.child = child
        self.store = store
        self.atom = atom
        bound = {name: position for position, name in enumerate(child.schema)}
        template, fills, out, eqs, nl, impossible = _compile_atom(
            atom, store, non_literal, bound
        )
        self._template = template
        self._fills = fills
        self._out = out
        self._eqs = eqs
        self._nl = nl
        self.impossible = impossible
        self.schema = child.schema + tuple(name for _, name in out)

    def __iter__(self) -> Iterator[PhysicalRow]:
        if self.impossible:
            return
        template, fills, out = self._template, self._fills, self._out
        eqs, nl = self._eqs, self._nl
        match = self.store.match_encoded
        is_literal = self.store.dictionary.is_literal_code
        for row in self.child:
            pattern = list(template)
            for position, column in fills:
                pattern[position] = row[column]
            for triple in match((pattern[0], pattern[1], pattern[2])):
                if any(triple[i] != triple[j] for i, j in eqs):
                    continue
                if any(is_literal(triple[position]) for position in nl):
                    continue
                yield row + tuple(triple[position] for position, _ in out)

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        """Probe the store with one *batch* of patterns at a time.

        Input rows are grouped by probe key, the distinct keys become a
        single ``match_many_encoded`` call (one SQL statement on the
        SQLite backend instead of one SELECT per row), and each key's
        projected match tails are concatenated onto every input row of
        its group. Output row *multiset* equals the row-at-a-time path;
        row order differs (grouped by key within each input batch).
        """
        if self.impossible:
            return iter(())
        resolved = self._batch_size(size)
        template, fills, eqs, nl = self._template, self._fills, self._eqs, self._nl
        match_many = self.store.match_many_encoded
        is_literal = self.store.dictionary.is_literal_code
        project = _projector(tuple(position for position, _ in self._out))
        key_of = _projector(tuple(column for _, column in fills))
        fill_positions = tuple(position for position, _ in fills)
        filtered = bool(eqs or nl)

        def joined_chunks() -> Iterator[list]:
            for in_batch in self.child.batches(size):
                groups: dict[tuple, list] = {}
                for row in in_batch:
                    key = key_of(row)
                    group = groups.get(key)
                    if group is None:
                        groups[key] = [row]
                    else:
                        group.append(row)
                patterns = []
                for key in groups:
                    pattern = list(template)
                    for position, value in zip(fill_positions, key):
                        pattern[position] = value
                    patterns.append((pattern[0], pattern[1], pattern[2]))
                for (key, rows), matches in zip(
                    groups.items(), match_many(patterns)
                ):
                    if not matches:
                        continue
                    if filtered:
                        tails = [
                            project(triple)
                            for triple in matches
                            if not any(triple[i] != triple[j] for i, j in eqs)
                            and not any(is_literal(triple[p]) for p in nl)
                        ]
                    else:
                        tails = [project(triple) for triple in matches]
                    if not tails:
                        continue
                    for row in rows:
                        yield [row + tail for tail in tails]

        return _rebatch(joined_chunks(), resolved)

    def column_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[ColumnBatch]:
        """Columnar batched probing: group by key *vector*, probe once.

        Input row indexes are grouped by probe key read straight off
        the fill columns (a scalar vector when one column fills the
        pattern — no per-row key tuple), the distinct keys become one
        ``match_many_encoded`` call, and the output assembles per
        column over a selection vector into the input batch plus the
        transposed match tails. Row multiset and order both match the
        row-batched path.
        """
        if self.impossible:
            return
        template, fills, eqs, nl = self._template, self._fills, self._eqs, self._nl
        match_many = self.store.match_many_encoded
        is_literal = self.store.dictionary.is_literal_code
        out_positions = tuple(position for position, _ in self._out)
        project = _projector(out_positions)
        fill_positions = tuple(position for position, _ in fills)
        fill_columns = tuple(column for _, column in fills)
        scalar_key = len(fill_columns) == 1
        single_out = len(out_positions) == 1
        out_position = out_positions[0] if single_out else None
        filtered = bool(eqs or nl)
        for in_cb in self.child.column_batches(size):
            length = len(in_cb)
            groups: dict = {}
            if scalar_key:
                keys: Iterable = in_cb.columns[fill_columns[0]]
            elif fill_columns:
                keys = zip(*(in_cb.columns[c] for c in fill_columns))
            else:
                keys = None
            if keys is None:
                groups[()] = range(length)
            else:
                for index, key in enumerate(keys):
                    group = groups.get(key)
                    if group is None:
                        groups[key] = [index]
                    else:
                        group.append(index)
            patterns = []
            for key in groups:
                pattern = list(template)
                if scalar_key:
                    pattern[fill_positions[0]] = key
                else:
                    for position, value in zip(fill_positions, key):
                        pattern[position] = value
                patterns.append((pattern[0], pattern[1], pattern[2]))
            sel: list[int] = []
            flat_tails: list = []
            for indexes, matches in zip(groups.values(), match_many(patterns)):
                if not matches:
                    continue
                if filtered:
                    matches = [
                        triple
                        for triple in matches
                        if not any(triple[i] != triple[j] for i, j in eqs)
                        and not any(is_literal(triple[p]) for p in nl)
                    ]
                    if not matches:
                        continue
                # Single new column (the chain-join shape): tails are
                # bare values, emitted as the output column directly —
                # no 1-tuples, no transpose.
                if single_out:
                    tails = [triple[out_position] for triple in matches]
                else:
                    tails = [project(triple) for triple in matches]
                fanout = len(tails)
                if fanout == 1:
                    sel.extend(indexes)
                else:
                    for index in indexes:
                        sel.extend([index] * fanout)
                # Per group the tails repeat once per input row, in row
                # order — one C-level list repeat instead of a loop.
                count = len(indexes)
                flat_tails.extend(tails if count == 1 else tails * count)
            if not sel:
                continue
            columns = [
                list(map(column.__getitem__, sel)) for column in in_cb.columns
            ]
            if single_out:
                columns.append(flat_tails)
            elif out_positions:
                columns.extend(zip(*flat_tails))
            yield ColumnBatch(tuple(columns), len(sel))

    def _describe(self) -> str:
        return f"IndexNestedLoopJoin({self.atom}){list(self.schema)}"

    def _children(self) -> tuple[Operator, ...]:
        return (self.child,)


class HashJoin(Operator):
    """Equi-join: build a hash table on the right input, stream the left.

    ``pairs`` are ``(left position, right position)`` key pairs;
    ``keep_right`` lists the right positions appended to each output row
    (natural-join semantics drop the right copy of shared columns).
    When the right input exposes a prebuilt hash index (a scan over an
    indexed view extent), the build phase is skipped entirely.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        pairs: Sequence[tuple[int, int]],
        keep_right: Sequence[int],
    ) -> None:
        self.left = left
        self.right = right
        self._left_keys = tuple(lp for lp, _ in pairs)
        self._right_keys = tuple(rp for _, rp in pairs)
        self._keep_right = tuple(keep_right)
        self.schema = left.schema + tuple(right.schema[p] for p in self._keep_right)

    def __iter__(self) -> Iterator[PhysicalRow]:
        right_keys, keep = self._right_keys, self._keep_right
        table = self.right.hash_index(right_keys)
        if table is None:
            table = {}
            for row in self.right:
                key = tuple(row[p] for p in right_keys)
                table.setdefault(key, []).append(row)
        left_keys = self._left_keys
        for row in self.left:
            matches = table.get(tuple(row[p] for p in left_keys))
            if matches:
                for other in matches:
                    yield row + tuple(other[p] for p in keep)

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        """Build from right batches, probe left batches.

        When the build side is ours (no prebuilt extent index), the
        table holds pre-projected right *tails*, so the probe loop is a
        plain concatenation. Output row order matches the row-at-a-time
        path exactly (left order, then build order per key).
        """
        resolved = self._batch_size(size)
        keep_of = _projector(self._keep_right)
        # Best source first: cached pre-projected tails (indexed view
        # extents), then a cached row index, then build our own tails.
        table = self.right.hash_tails(self._right_keys, self._keep_right)
        rows_not_tails = False
        if table is None:
            table = self.right.hash_index(self._right_keys)
            rows_not_tails = table is not None
        if table is None:
            right_key_of = _projector(self._right_keys)
            table = {}
            get = table.get
            for right_batch in self.right.batches(size):
                for row in right_batch:
                    key = right_key_of(row)
                    tails = get(key)
                    if tails is None:
                        table[key] = [keep_of(row)]
                    else:
                        tails.append(keep_of(row))
        left_key_of = _projector(self._left_keys)
        get = table.get

        def joined_chunks() -> Iterator[list]:
            for left_batch in self.left.batches(size):
                chunk: list = []
                for row in left_batch:
                    matches = get(left_key_of(row))
                    if matches:
                        if rows_not_tails:
                            chunk.extend([row + keep_of(other) for other in matches])
                        else:
                            chunk.extend([row + tail for tail in matches])
                if chunk:
                    yield chunk

        yield from _rebatch(joined_chunks(), resolved)

    def _key_vector(self, cb: ColumnBatch, positions: tuple[int, ...], scalar: bool):
        """The probe/build keys of one column batch, cheapest form first."""
        if scalar:
            return cb.columns[positions[0]]
        if not positions:
            return [()] * len(cb)
        if len(positions) == 1:
            return [(value,) for value in cb.columns[positions[0]]]
        return zip(*(cb.columns[p] for p in positions))

    def column_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[ColumnBatch]:
        """Columnar build and probe.

        When the build side is ours and the join key is one column, the
        hash table is keyed on bare values read straight off the key
        vectors — no per-row key tuple on either side. Prebuilt extent
        indexes stay tuple-keyed (their contract). Output columns
        assemble over a selection vector into the left batch plus the
        transposed build tails; row order matches the row paths (left
        order, then build order per key).
        """
        keep = self._keep_right
        keep_of = _projector(keep)
        table = self.right.hash_tails(self._right_keys, keep)
        rows_not_tails = False
        scalar_key = False
        if table is None:
            table = self.right.hash_index(self._right_keys)
            rows_not_tails = table is not None
        if table is None:
            scalar_key = len(self._right_keys) == 1
            table = {}
            get = table.get
            for right_cb in self.right.column_batches(size):
                build_keys = self._key_vector(right_cb, self._right_keys, scalar_key)
                if keep:
                    if len(keep) == 1:
                        build_tails: Iterable = [
                            (value,) for value in right_cb.columns[keep[0]]
                        ]
                    else:
                        build_tails = zip(*(right_cb.columns[p] for p in keep))
                else:
                    build_tails = [()] * len(right_cb)
                for key, tail in zip(build_keys, build_tails):
                    tails = get(key)
                    if tails is None:
                        table[key] = [tail]
                    else:
                        tails.append(tail)
        get = table.get
        for left_cb in self.left.column_batches(size):
            probe_keys = self._key_vector(left_cb, self._left_keys, scalar_key)
            sel: list[int] = []
            flat_tails: list[tuple] = []
            for index, key in enumerate(probe_keys):
                matches = get(key)
                if matches:
                    fanout = len(matches)
                    sel.extend([index] * fanout)
                    if rows_not_tails:
                        flat_tails.extend([keep_of(other) for other in matches])
                    else:
                        flat_tails.extend(matches)
            if not sel:
                continue
            columns = [[column[i] for i in sel] for column in left_cb.columns]
            if keep:
                columns.extend(zip(*flat_tails))
            yield ColumnBatch(tuple(columns), len(sel))

    def _describe(self) -> str:
        condition = ",".join(
            f"{self.left.schema[lp]}={self.right.schema[rp]}"
            for lp, rp in zip(self._left_keys, self._right_keys)
        )
        return f"HashJoin[{condition}]{list(self.schema)}"

    def _children(self) -> tuple[Operator, ...]:
        return (self.left, self.right)


#: Runtime floor (total materialized input rows) below which a
#: partitioned join runs serially even when workers were requested:
#: dispatching tiny partitions to a pool costs more than joining them.
MIN_PARALLEL_INPUT_ROWS = 8192


class PartitionedHashJoin(Operator):
    """Equi-join by disjoint hash partitions, optionally across workers.

    Both inputs are materialized (through their batched paths) and split
    into ``partitions`` disjoint buckets by join-key hash; each bucket
    pair is hash-joined independently — rows with equal keys always land
    in the same partition, so the union of the partition joins is
    exactly the full join. With ``workers > 1`` the partitions are
    processed by a cached process pool (:mod:`repro.engine.parallel`);
    with one worker, or when the materialized inputs fall below
    ``min_parallel_rows`` (planner estimates can be wrong — small joins
    must never pay pool dispatch), the partitions are joined in-process.

    The planner only instantiates this operator above an estimated-
    cardinality threshold, so small interactive queries keep the plain
    streaming :class:`HashJoin` and its latency.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        pairs: Sequence[tuple[int, int]],
        keep_right: Sequence[int],
        workers: int = 1,
        partitions: int | None = None,
        min_parallel_rows: int | None = None,
    ) -> None:
        self.left = left
        self.right = right
        self._left_keys = tuple(lp for lp, _ in pairs)
        self._right_keys = tuple(rp for _, rp in pairs)
        self._keep_right = tuple(keep_right)
        self.workers = max(1, workers)
        # One partition per worker: partitions are balanced by key hash,
        # and fewer, larger partitions amortize per-task dispatch best.
        self.partitions = partitions if partitions else self.workers
        self.min_parallel_rows = (
            MIN_PARALLEL_INPUT_ROWS if min_parallel_rows is None else min_parallel_rows
        )
        self.schema = left.schema + tuple(right.schema[p] for p in self._keep_right)

    def __iter__(self) -> Iterator[PhysicalRow]:
        for batch in self.batches():
            yield from batch

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        from repro.engine.parallel import join_partition

        resolved = self._batch_size(size)
        left_rows = self.left.rows_batched(size)
        right_rows = self.right.rows_batched(size)
        if (
            self.workers <= 1
            or self.partitions <= 1
            or len(left_rows) + len(right_rows) < self.min_parallel_rows
        ):
            partition_results: Iterable[list] = (
                join_partition(
                    left_rows,
                    right_rows,
                    self._left_keys,
                    self._right_keys,
                    self._keep_right,
                ),
            )
        else:
            partition_results = self._parallel_results(left_rows, right_rows)
        yield from _rebatch(partition_results, resolved)

    def _parallel_results(self, left_rows: list, right_rows: list) -> Iterator[list]:
        """Partition both inputs and join partitions across the pool.

        A pool that breaks mid-flight (a worker killed under memory
        pressure) degrades to joining the unfinished partitions
        in-process — the parallel path must never fail where the serial
        one would succeed.
        """
        from repro.engine.parallel import (
            BrokenProcessPool,
            get_executor,
            instrumented_call,
            join_partition,
        )
        from repro.obs import metrics

        left_key_of = _projector(self._left_keys)
        right_key_of = _projector(self._right_keys)
        count = self.partitions
        left_parts: list[list] = [[] for _ in range(count)]
        for row in left_rows:
            left_parts[hash(left_key_of(row)) % count].append(row)
        right_parts: list[list] = [[] for _ in range(count)]
        for row in right_rows:
            right_parts[hash(right_key_of(row)) % count].append(row)
        pairs = [
            (left_part, right_part)
            for left_part, right_part in zip(left_parts, right_parts)
            if left_part and right_part
        ]
        arguments = (self._left_keys, self._right_keys, self._keep_right)
        # With metrics enabled, workers run under a fresh registry and
        # ship their counts back for merging (see parallel.py); the
        # disabled submission path is byte-identical to before.
        instrumented = metrics.enabled
        try:
            executor = get_executor(self.workers)
            futures = [
                executor.submit(
                    instrumented_call, join_partition, left_part, right_part,
                    *arguments,
                )
                if instrumented
                else executor.submit(
                    join_partition, left_part, right_part, *arguments
                )
                for left_part, right_part in pairs
            ]
        except BrokenProcessPool:
            futures = []
        # Collect in partition order: deterministic output for a
        # deterministic partitioning function.
        for index, future in enumerate(futures):
            try:
                result = future.result()
                if instrumented:
                    rows, dump = result
                    metrics.merge(dump)
                    yield rows
                else:
                    yield result
            except BrokenProcessPool:
                for left_part, right_part in pairs[index:]:
                    yield join_partition(left_part, right_part, *arguments)
                return
        if not futures:
            for left_part, right_part in pairs:
                yield join_partition(left_part, right_part, *arguments)

    def _describe(self) -> str:
        condition = ",".join(
            f"{self.left.schema[lp]}={self.right.schema[rp]}"
            for lp, rp in zip(self._left_keys, self._right_keys)
        )
        return (
            f"PartitionedHashJoin[{condition}]"
            f"(workers={self.workers}, partitions={self.partitions})"
            f"{list(self.schema)}"
        )

    def _children(self) -> tuple[Operator, ...]:
        return (self.left, self.right)


class MergeJoin(Operator):
    """Sort-merge equi-join.

    Inputs are materialized and sorted on their key columns unless their
    ``sorted_on`` already matches (leaf scans over the store's sorted
    permutations arrive presorted). ``value_key`` maps a single value to
    a sortable key — dictionary codes are naturally ordered, decoded RDF
    terms sort by their N-Triples rendering.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        pairs: Sequence[tuple[int, int]],
        keep_right: Sequence[int],
        value_key: Callable | None = None,
    ) -> None:
        self.left = left
        self.right = right
        self._left_keys = tuple(lp for lp, _ in pairs)
        self._right_keys = tuple(rp for _, rp in pairs)
        self._keep_right = tuple(keep_right)
        self._value_key = value_key
        self.schema = left.schema + tuple(right.schema[p] for p in self._keep_right)

    def _key_function(self, positions: tuple[int, ...]) -> Callable[[PhysicalRow], tuple]:
        value_key = self._value_key
        if value_key is None:
            return lambda row: tuple(row[p] for p in positions)
        return lambda row: tuple(value_key(row[p]) for p in positions)

    def _sorted_input(
        self,
        child: Operator,
        positions: tuple[int, ...],
        key,
        batch_size: int | None = None,
    ) -> list:
        rows = child.rows() if batch_size is None else child.rows_batched(batch_size)
        columns = tuple(child.schema[p] for p in positions)
        if child.sorted_on is not None and child.sorted_on[: len(columns)] == columns:
            return rows
        rows.sort(key=key)
        return rows

    def _merge(self, left_rows: list, right_rows: list) -> Iterator[PhysicalRow]:
        left_key = self._key_function(self._left_keys)
        right_key = self._key_function(self._right_keys)
        keep = self._keep_right
        i = j = 0
        n_left, n_right = len(left_rows), len(right_rows)
        while i < n_left and j < n_right:
            lk, rk = left_key(left_rows[i]), right_key(right_rows[j])
            if lk < rk:
                i += 1
            elif rk < lk:
                j += 1
            else:
                i_end = i + 1
                while i_end < n_left and left_key(left_rows[i_end]) == lk:
                    i_end += 1
                j_end = j + 1
                while j_end < n_right and right_key(right_rows[j_end]) == rk:
                    j_end += 1
                for row in left_rows[i:i_end]:
                    for other in right_rows[j:j_end]:
                        yield row + tuple(other[p] for p in keep)
                i, j = i_end, j_end

    def __iter__(self) -> Iterator[PhysicalRow]:
        left_key = self._key_function(self._left_keys)
        right_key = self._key_function(self._right_keys)
        left_rows = self._sorted_input(self.left, self._left_keys, left_key)
        right_rows = self._sorted_input(self.right, self._right_keys, right_key)
        return self._merge(left_rows, right_rows)

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        """Materialize both sides through their batched paths, then merge.

        The merge pass itself is inherently row-sequential; batching
        still pays because the inputs arrive through the vectorized
        subtree and the output leaves in row-list batches.
        """
        resolved = self._batch_size(size)
        left_key = self._key_function(self._left_keys)
        right_key = self._key_function(self._right_keys)
        left_rows = self._sorted_input(self.left, self._left_keys, left_key, size)
        right_rows = self._sorted_input(self.right, self._right_keys, right_key, size)
        batch: Batch = []
        for row in self._merge(left_rows, right_rows):
            batch.append(row)
            if len(batch) >= resolved:
                yield batch
                batch = []
        if batch:
            yield batch

    def _describe(self) -> str:
        condition = ",".join(
            f"{self.left.schema[lp]}={self.right.schema[rp]}"
            for lp, rp in zip(self._left_keys, self._right_keys)
        )
        return f"MergeJoin[{condition}]{list(self.schema)}"

    def _children(self) -> tuple[Operator, ...]:
        return (self.left, self.right)


class Selection(Operator):
    """Filter rows by an arbitrary predicate; preserves order and schema."""

    def __init__(self, child: Operator, predicate: Callable[[PhysicalRow], bool]) -> None:
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        self.sorted_on = child.sorted_on

    def __iter__(self) -> Iterator[PhysicalRow]:
        predicate = self.predicate
        return (row for row in self.child if predicate(row))

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        predicate = self.predicate
        for in_batch in self.child.batches(size):
            batch = [row for row in in_batch if predicate(row)]
            if batch:
                yield batch

    def column_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[ColumnBatch]:
        # Predicates see row tuples (their contract); the kept row
        # indexes become a selection vector applied per column.
        predicate = self.predicate
        for cb in self.child.column_batches(size):
            keep = [index for index, row in enumerate(cb) if predicate(row)]
            if not keep:
                continue
            yield cb if len(keep) == len(cb) else cb.take(keep)

    def _children(self) -> tuple[Operator, ...]:
        return (self.child,)


class Projection(Operator):
    """Keep the given column positions; optionally deduplicate.

    Deduplication preserves first-occurrence order, matching the set
    semantics of conjunctive rewritings (the algebra ``Project``).
    """

    def __init__(
        self,
        child: Operator,
        positions: Sequence[int],
        schema: tuple[str, ...],
        distinct: bool = True,
    ) -> None:
        self.child = child
        self._positions = tuple(positions)
        self.schema = schema
        self.distinct = distinct

    def __iter__(self) -> Iterator[PhysicalRow]:
        positions = self._positions
        if not self.distinct:
            for row in self.child:
                yield tuple(row[p] for p in positions)
            return
        seen: set = set()
        for row in self.child:
            image = tuple(row[p] for p in positions)
            if image not in seen:
                seen.add(image)
                yield image

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        project = _projector(self._positions)
        if not self.distinct:
            for in_batch in self.child.batches(size):
                yield [project(row) for row in in_batch]
            return
        seen: set = set()
        add = seen.add
        for in_batch in self.child.batches(size):
            batch: Batch = []
            append = batch.append
            for row in in_batch:
                image = project(row)
                if image not in seen:
                    add(image)
                    append(image)
            if batch:
                yield batch

    def column_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[ColumnBatch]:
        positions = self._positions
        if not self.distinct:
            # Zero-copy: the projected batch aliases the input columns.
            for cb in self.child.column_batches(size):
                yield cb.project(positions)
            return
        width = len(self.schema)
        seen: set = set()
        add = seen.add
        for cb in self.child.column_batches(size):
            batch: Batch = []
            append = batch.append
            for image in cb.project(positions):
                if image not in seen:
                    add(image)
                    append(image)
            if batch:
                yield ColumnBatch.from_rows(batch, width)

    def _describe(self) -> str:
        return f"Projection[{','.join(self.schema)}]"

    def _children(self) -> tuple[Operator, ...]:
        return (self.child,)


class Distinct(Operator):
    """Drop duplicate rows, preserving first-occurrence order."""

    def __init__(self, child: Operator) -> None:
        self.child = child
        self.schema = child.schema

    def __iter__(self) -> Iterator[PhysicalRow]:
        seen: set = set()
        for row in self.child:
            if row not in seen:
                seen.add(row)
                yield row

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        seen: set = set()
        add = seen.add
        for in_batch in self.child.batches(size):
            batch = []
            append = batch.append
            for row in in_batch:
                if row not in seen:
                    add(row)
                    append(row)
            if batch:
                yield batch

    def column_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[ColumnBatch]:
        width = len(self.schema)
        seen: set = set()
        add = seen.add
        for cb in self.child.column_batches(size):
            batch: Batch = []
            append = batch.append
            for row in cb:
                if row not in seen:
                    add(row)
                    append(row)
            if batch:
                yield ColumnBatch.from_rows(batch, width)

    def _children(self) -> tuple[Operator, ...]:
        return (self.child,)


class Relabel(Operator):
    """Rename the columns of the input positionally (zero-cost)."""

    def __init__(self, child: Operator, schema: tuple[str, ...]) -> None:
        if len(schema) != len(child.schema):
            raise ValueError(
                f"relabel arity {len(schema)} differs from child schema {child.schema}"
            )
        self.child = child
        self.schema = schema

    def __iter__(self) -> Iterator[PhysicalRow]:
        return iter(self.child)

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        return self.child.batches(size)

    def column_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[ColumnBatch]:
        return self.child.column_batches(size)

    def _children(self) -> tuple[Operator, ...]:
        return (self.child,)
