"""Query shapes used in the paper's experiments (Sections 6.2 and 6.4).

* **star** — all atoms share one subject variable: the query graph is a
  clique, the hardest case for the search (most VB/JC opportunities);
* **chain** — atoms form a path, the "average difficulty" case;
* **cycle** — a chain closed back on its first variable;
* **random sparse / random dense** — atoms connect random variable
  pairs, with few or many edges per variable;
* **mixed** — a blend of all of the above within one workload.
"""

from __future__ import annotations

import random
from enum import Enum

from repro.query.cq import Atom, ConjunctiveQuery, Variable
from repro.rdf.terms import URI


class QueryShape(Enum):
    """The workload shapes of Figure 6."""

    STAR = "star"
    CHAIN = "chain"
    CYCLE = "cycle"
    RANDOM_SPARSE = "random-sparse"
    RANDOM_DENSE = "random-dense"
    MIXED = "mixed"


def _variable(index: int) -> Variable:
    return Variable(f"X{index}")


def build_star(
    rng: random.Random,
    atom_count: int,
    properties: list[URI],
    objects: list[URI],
    constant_probability: float,
) -> list[Atom]:
    """Atoms ``t(X0, p_i, o_i)`` around a shared center variable.

    Properties are sampled without replacement when the pool allows:
    repeating a property in a star makes the more general atom redundant
    (it folds onto the more specific one), and the paper assumes minimal
    queries of the requested size.
    """
    center = _variable(0)
    if len(properties) >= atom_count:
        chosen = rng.sample(properties, atom_count)
    else:
        chosen = [rng.choice(properties) for _ in range(atom_count)]
    atoms = []
    for index in range(atom_count):
        prop = chosen[index]
        if rng.random() < constant_probability:
            obj = rng.choice(objects)
        else:
            obj = _variable(index + 1)
        atoms.append(Atom(center, prop, obj))
    return atoms


def build_chain(
    rng: random.Random,
    atom_count: int,
    properties: list[URI],
    objects: list[URI],
    constant_probability: float,
) -> list[Atom]:
    """Atoms ``t(X_i, p_i, X_{i+1})``, optionally ending at a constant."""
    atoms = []
    for index in range(atom_count):
        subject = _variable(index)
        prop = rng.choice(properties)
        is_last = index == atom_count - 1
        if is_last and rng.random() < constant_probability:
            obj: Variable | URI = rng.choice(objects)
        else:
            obj = _variable(index + 1)
        atoms.append(Atom(subject, prop, obj))
    return atoms


def build_cycle(
    rng: random.Random,
    atom_count: int,
    properties: list[URI],
    objects: list[URI],
    constant_probability: float,
) -> list[Atom]:
    """A chain whose last atom closes back on the first variable."""
    atoms = build_chain(rng, atom_count, properties, objects, 0.0)
    last = atoms[-1]
    atoms[-1] = Atom(last.s, last.p, _variable(0))
    return atoms


def build_random(
    rng: random.Random,
    atom_count: int,
    properties: list[URI],
    objects: list[URI],
    constant_probability: float,
    dense: bool,
) -> list[Atom]:
    """Random-graph queries.

    Sparse graphs spread atoms over ~one variable per atom (tree-like);
    dense graphs reuse a small variable pool so most variables join many
    atoms. A spanning structure keeps the query connected (the model
    excludes Cartesian products).
    """
    variable_count = max(2, atom_count // 3 + 1) if dense else atom_count + 1
    variables = [_variable(i) for i in range(variable_count)]
    atoms = []
    connected = {0}
    for index in range(atom_count):
        if index < variable_count - 1:
            # Spanning phase: attach a new variable to a connected one.
            subject = variables[rng.choice(sorted(connected))]
            obj_var = variables[index + 1]
            connected.add(index + 1)
        else:
            subject = variables[rng.randrange(variable_count)]
            obj_var = variables[rng.randrange(variable_count)]
        prop = rng.choice(properties)
        if rng.random() < constant_probability:
            obj: Variable | URI = rng.choice(objects)
            # Keep connectivity: if the object was the joining link,
            # reuse the subject from the connected part (already done).
        else:
            obj = obj_var
        atoms.append(Atom(subject, prop, obj))
    return _stitch_connected(atoms)


def _stitch_connected(atoms: list[Atom]) -> list[Atom]:
    """Merge join-graph components by renaming one variable of each later
    component onto an anchor variable of the first, preserving the
    internal joins of every component."""
    while True:
        query = ConjunctiveQuery((), tuple(atoms))
        components = query.connected_components()
        if len(components) == 1:
            return atoms
        anchor = _first_variable(atoms, components[0])
        victim = _first_variable(atoms, components[1])
        if anchor is None or victim is None:
            # A component without variables cannot be stitched by
            # renaming; fall back to replacing its subject.
            index = components[1][0]
            replacement = anchor or Variable("X0")
            atoms[index] = Atom(replacement, atoms[index].p, atoms[index].o)
            continue
        mapping = {victim: anchor}
        for index in components[1]:
            atoms[index] = atoms[index].substitute(mapping)


def _first_variable(atoms: list[Atom], indices) -> Variable | None:
    for index in indices:
        for term in atoms[index]:
            if isinstance(term, Variable):
                return term
    return None


def build_shape(
    shape: QueryShape,
    rng: random.Random,
    atom_count: int,
    properties: list[URI],
    objects: list[URI],
    constant_probability: float,
) -> list[Atom]:
    """Dispatch on shape; MIXED picks one concrete shape at random."""
    if shape is QueryShape.MIXED:
        shape = rng.choice(
            [
                QueryShape.STAR,
                QueryShape.CHAIN,
                QueryShape.CYCLE,
                QueryShape.RANDOM_SPARSE,
                QueryShape.RANDOM_DENSE,
            ]
        )
    if shape is QueryShape.STAR:
        return build_star(rng, atom_count, properties, objects, constant_probability)
    if shape is QueryShape.CHAIN:
        return build_chain(rng, atom_count, properties, objects, constant_probability)
    if shape is QueryShape.CYCLE:
        return build_cycle(rng, atom_count, properties, objects, constant_probability)
    if shape is QueryShape.RANDOM_SPARSE:
        return build_random(
            rng, atom_count, properties, objects, constant_probability, dense=False
        )
    if shape is QueryShape.RANDOM_DENSE:
        return build_random(
            rng, atom_count, properties, objects, constant_probability, dense=True
        )
    raise ValueError(f"unknown shape {shape!r}")
