"""Workload generation (Section 6, "Data and queries").

The paper built two query generators because the Barton workload has few
queries and no commonality: one outputs queries of controllable size,
shape and commonality; the other additionally guarantees non-empty
answers on a given dataset. Both are reproduced here.
"""

from repro.workload.shapes import QueryShape
from repro.workload.generator import (
    SatisfiableWorkloadGenerator,
    WorkloadGenerator,
    WorkloadSpec,
    replay_schedule,
)

__all__ = [
    "QueryShape",
    "SatisfiableWorkloadGenerator",
    "WorkloadGenerator",
    "WorkloadSpec",
    "replay_schedule",
]
