"""The two workload generators of Section 6.

:class:`WorkloadGenerator` outputs queries of controllable size, shape
and commonality, with maximum flexibility (no dataset needed).
:class:`SatisfiableWorkloadGenerator` additionally takes a dataset and
generates queries guaranteed to have non-empty answers on it, by
abstracting concrete subgraphs of the data into patterns.

Commonality controls how much vocabulary (properties, constants, and
hence atom patterns) queries share:

* ``"high"`` — all queries draw from one small shared pool, so the same
  atoms recur across queries and View Fusion finds factorization
  opportunities;
* ``"low"`` — each query draws from its own disjoint pool.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.query.cq import Atom, ConjunctiveQuery, Variable
from repro.query.containment import minimize
from repro.rdf.store import TripleStore
from repro.rdf.terms import Term, URI
from repro.workload.shapes import QueryShape, build_shape

DEFAULT_NAMESPACE = "http://example.org/"


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Parameters of one generated workload."""

    num_queries: int
    atoms_per_query: int
    shape: QueryShape = QueryShape.CHAIN
    commonality: str = "high"
    constant_probability: float = 0.5
    head_size: int = 2

    def __post_init__(self) -> None:
        if self.num_queries < 1:
            raise ValueError("num_queries must be positive")
        if self.atoms_per_query < 1:
            raise ValueError("atoms_per_query must be positive")
        if self.commonality not in ("high", "low"):
            raise ValueError(f"commonality must be 'high' or 'low', got {self.commonality!r}")


class WorkloadGenerator:
    """Generates synthetic workloads without reference to a dataset."""

    def __init__(self, seed: int = 0, namespace: str = DEFAULT_NAMESPACE) -> None:
        self._seed = seed
        self._namespace = namespace

    def _pools(
        self, spec: WorkloadSpec, query_index: int
    ) -> tuple[list[URI], list[URI]]:
        """Property/object pools; shared for high commonality, disjoint
        per query for low commonality."""
        ns = self._namespace
        pool_size = max(4, spec.atoms_per_query)
        if spec.commonality == "high":
            # One pool shared by every query: atoms recur across queries.
            properties = [URI(f"{ns}p{i}") for i in range(pool_size)]
            objects = [URI(f"{ns}c{i}") for i in range(max(3, pool_size // 2))]
        else:
            # Disjoint vocabulary per query: no factorization to find.
            properties = [URI(f"{ns}q{query_index}_p{i}") for i in range(pool_size)]
            objects = [URI(f"{ns}q{query_index}_c{i}") for i in range(pool_size)]
        return properties, objects

    def generate(self, spec: WorkloadSpec) -> list[ConjunctiveQuery]:
        """A deterministic workload for ``spec`` (seeded)."""
        rng = random.Random(f"{self._seed}:{spec.num_queries}:{spec.atoms_per_query}:{spec.shape.value}:{spec.commonality}")
        queries = []
        for index in range(spec.num_queries):
            properties, objects = self._pools(spec, index)
            atoms = self._distinct_atoms(rng, spec, properties, objects)
            query = _close_over_head(atoms, spec.head_size, f"q{index + 1}")
            queries.append(minimize(query))
        return queries

    def _distinct_atoms(
        self,
        rng: random.Random,
        spec: WorkloadSpec,
        properties: list[URI],
        objects: list[URI],
    ) -> list[Atom]:
        """Build a shape, retrying a few times to avoid duplicate atoms
        (duplicates would be minimized away, shrinking the query)."""
        for _ in range(8):
            atoms = build_shape(
                spec.shape,
                rng,
                spec.atoms_per_query,
                properties,
                objects,
                spec.constant_probability,
            )
            if len(set(atoms)) == len(atoms):
                return atoms
        return atoms  # accept duplicates if the pool is too small


class SatisfiableWorkloadGenerator:
    """Generates workloads with non-empty answers on a given dataset.

    Queries are produced by sampling connected subgraphs of the data
    (stars around a subject, or join walks) and abstracting terms into
    variables; the sampled subgraph itself witnesses satisfiability.
    """

    def __init__(
        self, store: TripleStore, seed: int = 0
    ) -> None:
        if len(store) == 0:
            raise ValueError("cannot generate satisfiable queries on an empty store")
        self._store = store
        self._seed = seed
        self._triples = sorted(
            (triple for triple in store), key=lambda t: t.n3()
        )

    def generate(self, spec: WorkloadSpec) -> list[ConjunctiveQuery]:
        """A deterministic satisfiable workload for ``spec``."""
        rng = random.Random(f"{self._seed}:{spec.num_queries}:{spec.atoms_per_query}:{spec.shape.value}:{spec.commonality}")
        queries = []
        # Anchor triples seed the sampled subgraphs. Prefer high-degree
        # subjects so star/walk samples can actually reach the requested
        # size; high commonality reuses a few anchors across queries.
        anchor_pool_size = 2 if spec.commonality == "high" else spec.num_queries * 4
        candidates = self._anchor_candidates(spec.atoms_per_query)
        anchors = [
            candidates[rng.randrange(len(candidates))]
            for _ in range(max(1, anchor_pool_size))
        ]
        for index in range(spec.num_queries):
            seed_triple = anchors[rng.randrange(len(anchors))]
            if spec.shape in (QueryShape.STAR, QueryShape.MIXED):
                sample = self._sample_star(rng, seed_triple, spec.atoms_per_query)
            else:
                sample = self._sample_walk(rng, seed_triple, spec.atoms_per_query)
            atoms = self._abstract(rng, sample, spec.constant_probability)
            query = _close_over_head(atoms, spec.head_size, f"q{index + 1}")
            queries.append(minimize(query))
        return queries

    def _anchor_candidates(self, wanted_degree: int) -> list:
        """Triples whose subject has enough distinct triples to seed a
        sample of the requested size; falls back to the densest tier."""
        by_degree: dict = {}
        for triple in self._triples:
            by_degree.setdefault(triple.s, []).append(triple)
        good = [
            triples[0]
            for triples in by_degree.values()
            if len(triples) >= wanted_degree
        ]
        if good:
            return sorted(good, key=lambda t: t.n3())
        best = max(len(triples) for triples in by_degree.values())
        return sorted(
            (triples[0] for triples in by_degree.values() if len(triples) == best),
            key=lambda t: t.n3(),
        )

    def _sample_star(self, rng, seed_triple, size) -> list:
        """Triples sharing ``seed_triple``'s subject.

        Distinct properties are preferred: repeated properties fold away
        under query minimization, shrinking the star below ``size``.
        """
        candidates = sorted(
            self._store.match(s=seed_triple.s), key=lambda t: t.n3()
        )
        by_property: dict = {}
        for triple in candidates:
            by_property.setdefault(triple.p, []).append(triple)
        primary = [triples[0] for triples in by_property.values()]
        rng.shuffle(primary)
        sample = primary[:size]
        if len(sample) < size:
            rest = [t for t in candidates if t not in sample]
            rng.shuffle(rest)
            sample.extend(rest[: size - len(sample)])
        return sample or [seed_triple]

    def _sample_walk(self, rng, seed_triple, size) -> list:
        """A join walk: follow the object of each triple as the next
        subject; fall back to star expansion when the walk dead-ends."""
        walk = [seed_triple]
        current = seed_triple
        while len(walk) < size:
            successors = sorted(
                self._store.match(s=current.o), key=lambda t: t.n3()
            )
            successors = [t for t in successors if t not in walk]
            if not successors:
                siblings = sorted(
                    self._store.match(s=current.s), key=lambda t: t.n3()
                )
                siblings = [t for t in siblings if t not in walk]
                if not siblings:
                    break
                current = siblings[rng.randrange(len(siblings))]
                walk.append(current)
                continue
            current = successors[rng.randrange(len(successors))]
            walk.append(current)
        return walk

    def _abstract(self, rng, triples, constant_probability) -> list[Atom]:
        """Replace data terms by variables, consistently per term.

        Properties stay constant (the typical RDF pattern); subjects
        always become variables; objects become variables unless kept as
        selection constants.
        """
        mapping: dict[Term, Variable] = {}
        counter = [0]
        # Terms serving as a join link (subject anywhere in the sample)
        # must become variables everywhere, or the join would be lost and
        # the query could disconnect.
        subjects = {triple.s for triple in triples}

        def var_for(term: Term) -> Variable:
            if term not in mapping:
                mapping[term] = Variable(f"X{counter[0]}")
                counter[0] += 1
            return mapping[term]

        atoms = []
        for triple in triples:
            subject = var_for(triple.s)
            keep_constant = (
                triple.o not in subjects
                and triple.o not in mapping
                and rng.random() <= constant_probability
            )
            if keep_constant:
                obj: Variable | Term = triple.o
            else:
                obj = var_for(triple.o)
            atoms.append(Atom(subject, triple.p, obj))
        return list(dict.fromkeys(atoms))


def replay_schedule(
    queries, repeats: int = 1, seed: int = 0
) -> list[str]:
    """Flatten a workload into a served-traffic schedule of query texts.

    Each query appears ``repeats`` times and the whole schedule is
    shuffled deterministically (seeded), modelling many clients issuing
    overlapping queries in interleaved order — the traffic shape that
    exercises server mode's per-worker plan caches (repeats hit the
    cache) and cross-client batching windows (adjacent arrivals often
    share subplans). Accepts parsed queries or raw texts.
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    texts = [
        query if isinstance(query, str) else str(query) for query in queries
    ]
    schedule = texts * repeats
    random.Random(f"replay:{seed}:{len(schedule)}").shuffle(schedule)
    return schedule


def _close_over_head(
    atoms: list[Atom], head_size: int, name: str
) -> ConjunctiveQuery:
    """Pick the head: the first and last variables by occurrence order."""
    ordered: list[Variable] = []
    for atom in atoms:
        for term in atom:
            if isinstance(term, Variable) and term not in ordered:
                ordered.append(term)
    if not ordered:
        raise ValueError("generated query has no variables")
    if head_size >= len(ordered):
        head = tuple(ordered)
    elif head_size == 1:
        head = (ordered[0],)
    else:
        head = tuple([ordered[0], ordered[-1]] + ordered[1 : head_size - 1])
    return ConjunctiveQuery(head, tuple(atoms), name=name)
