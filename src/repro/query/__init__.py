"""Query substrate: conjunctive queries over the triple table ``t(s, p, o)``,
parsers, containment/minimization, evaluation, and relational-algebra plans.
"""

from repro.query.cq import (
    Atom,
    ConjunctiveQuery,
    QueryTerm,
    UnionQuery,
    Variable,
    fresh_variable,
)
from repro.query.parser import parse_query, parse_queries, QuerySyntaxError
from repro.query.sparql import parse_sparql_bgp
from repro.query.containment import (
    canonical_form,
    containment_mapping,
    equivalent,
    find_isomorphism,
    is_contained_in,
    is_isomorphic,
    minimize,
)
from repro.query.evaluation import evaluate, evaluate_union
from repro.query import algebra

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "QueryTerm",
    "UnionQuery",
    "Variable",
    "fresh_variable",
    "parse_query",
    "parse_queries",
    "QuerySyntaxError",
    "parse_sparql_bgp",
    "canonical_form",
    "containment_mapping",
    "equivalent",
    "find_isomorphism",
    "is_contained_in",
    "is_isomorphic",
    "minimize",
    "evaluate",
    "evaluate_union",
    "algebra",
]
