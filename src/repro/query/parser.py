"""A datalog-style textual syntax for RDF queries and views.

The syntax mirrors the paper's notation::

    q1(X, Z) :- t(X, hasPainted, starryNight), t(X, isParentOf, Y),
                t(Y, hasPainted, Z)

* tokens starting with an upper-case letter (or ``?name``) are variables;
* ``<full-uri>`` is a URI; a bare lower-case token is a URI in the default
  namespace; ``prefix:name`` resolves through the prefix table
  (``rdf:`` and ``rdfs:`` are predefined);
* ``"text"`` is a literal;
* ``_:label`` is a blank node, parsed as an existential variable since
  blank nodes in queries behave exactly like existential variables.
"""

from __future__ import annotations

import re

from repro.query.cq import Atom, ConjunctiveQuery, QueryTerm, Variable
from repro.rdf import vocabulary
from repro.rdf.terms import Literal, URI

DEFAULT_NAMESPACE = "http://example.org/"

_DEFAULT_PREFIXES = {
    "rdf": vocabulary.RDF_NS,
    "rdfs": vocabulary.RDFS_NS,
}


class QuerySyntaxError(ValueError):
    """Raised on malformed query text."""


_QUERY_RE = re.compile(
    r"^\s*(?P<name>\w+)\s*\(\s*(?P<head>[^)]*)\)\s*:-\s*(?P<body>.+)$", re.DOTALL
)
_ATOM_RE = re.compile(r"t\s*\(\s*([^()]*?)\s*\)")
_TOKEN_SPLIT_RE = re.compile(r",(?=(?:[^\"]*\"[^\"]*\")*[^\"]*$)")


def _parse_term(
    token: str,
    namespace: str,
    prefixes: dict[str, str],
    blank_nodes: dict[str, Variable],
) -> QueryTerm:
    token = token.strip()
    if not token:
        raise QuerySyntaxError("empty term")
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return Literal(token[1:-1])
    if token.startswith("<") and token.endswith(">"):
        return URI(token[1:-1])
    if token.startswith("?"):
        return Variable(token[1:])
    if token.startswith("_:"):
        label = token[2:]
        if label not in blank_nodes:
            blank_nodes[label] = Variable(f"_B_{label}")
        return blank_nodes[label]
    if ":" in token:
        prefix, _, local = token.partition(":")
        if prefix not in prefixes:
            raise QuerySyntaxError(f"unknown prefix {prefix!r} in {token!r}")
        return URI(prefixes[prefix] + local)
    if token[0].isupper():
        return Variable(token)
    if re.fullmatch(r"[\w.\-]+", token):
        return URI(namespace + token)
    raise QuerySyntaxError(f"cannot parse term {token!r}")


def parse_query(
    text: str,
    namespace: str = DEFAULT_NAMESPACE,
    prefixes: dict[str, str] | None = None,
) -> ConjunctiveQuery:
    """Parse one query in the datalog-style syntax."""
    table = dict(_DEFAULT_PREFIXES)
    if prefixes:
        table.update(prefixes)
    match = _QUERY_RE.match(text.strip())
    if match is None:
        raise QuerySyntaxError(f"not a query: {text.strip()[:80]!r}")
    blank_nodes: dict[str, Variable] = {}
    head_tokens = [t for t in _TOKEN_SPLIT_RE.split(match.group("head")) if t.strip()]
    head = tuple(
        _parse_term(token, namespace, table, blank_nodes) for token in head_tokens
    )
    body = match.group("body")
    atom_texts = _ATOM_RE.findall(body)
    if not atom_texts:
        raise QuerySyntaxError(f"query body has no atoms: {body.strip()[:80]!r}")
    leftover = _ATOM_RE.sub("", body).replace(",", "").strip()
    if leftover:
        raise QuerySyntaxError(f"unparsed body fragment: {leftover[:80]!r}")
    atoms = []
    for atom_text in atom_texts:
        tokens = [t for t in _TOKEN_SPLIT_RE.split(atom_text) if t.strip()]
        if len(tokens) != 3:
            raise QuerySyntaxError(f"atom needs exactly 3 terms: t({atom_text})")
        s, p, o = (_parse_term(t, namespace, table, blank_nodes) for t in tokens)
        atoms.append(Atom(s, p, o))
    return ConjunctiveQuery(head, tuple(atoms), name=match.group("name"))


def parse_queries(
    text: str,
    namespace: str = DEFAULT_NAMESPACE,
    prefixes: dict[str, str] | None = None,
) -> list[ConjunctiveQuery]:
    """Parse a workload: one query per non-empty, non-comment line.

    A query may span several lines as long as continuation lines do not
    look like the start of a new query (``name(...) :- ...``).
    """
    queries = []
    buffer: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if _QUERY_RE.match(line) and buffer:
            queries.append(parse_query(" ".join(buffer), namespace, prefixes))
            buffer = []
        buffer.append(line)
    if buffer:
        queries.append(parse_query(" ".join(buffer), namespace, prefixes))
    return queries
