"""Relational-algebra rewriting plans over view symbols.

Rewritings (Definition 2.2) are represented as algebra trees whose leaves
scan views: ``Scan``, ``Select``, ``Project`` and ``Join`` nodes. The
transitions of Section 3.2 *textually substitute* view symbols with
expressions — :func:`replace_scan` implements exactly that tree rewrite.

Every node optionally carries the conjunctive query it computes
(``query``). Transitions know the semantics of each expression they build
(e.g. after a Selection Cut, the selection over the relaxed view computes
the original view), so the cost model can estimate every intermediate
cardinality with the same estimator used for view sizes.

Plans are executable: :func:`execute` runs a plan over materialized view
extents with hash joins, which is how the benchmarks answer workload
queries from the recommended views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence, Union

from repro.query.cq import ConjunctiveQuery
from repro.rdf.terms import Term

Row = tuple[Term, ...]


@dataclass(frozen=True, slots=True)
class EqualsConstant:
    """Selection condition ``column = constant`` (a selection edge)."""

    column: str
    value: Term

    def __str__(self) -> str:
        return f"{self.column}={self.value.n3()}"


@dataclass(frozen=True, slots=True)
class EqualsColumn:
    """Selection condition ``column = column`` (an intra-view join edge)."""

    left: str
    right: str

    def __str__(self) -> str:
        return f"{self.left}={self.right}"


Condition = Union[EqualsConstant, EqualsColumn]


@dataclass(frozen=True)
class Scan:
    """Leaf: scan a view by name; the schema is the view's head."""

    view: str
    schema: tuple[str, ...]
    query: ConjunctiveQuery | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if len(set(self.schema)) != len(self.schema):
            raise ValueError(f"duplicate columns in scan schema {self.schema}")

    def __str__(self) -> str:
        return self.view


@dataclass(frozen=True)
class Select:
    """Filter rows of ``child`` by equality conditions."""

    child: "Plan"
    conditions: tuple[Condition, ...]
    query: ConjunctiveQuery | None = field(default=None, compare=False)

    @property
    def schema(self) -> tuple[str, ...]:
        return self.child.schema

    def __str__(self) -> str:
        rendered = ",".join(str(c) for c in self.conditions)
        return f"σ[{rendered}]({self.child})"


@dataclass(frozen=True)
class Project:
    """Keep only the given columns of ``child`` (duplicates removed)."""

    child: "Plan"
    columns: tuple[str, ...]
    query: ConjunctiveQuery | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        missing = [c for c in self.columns if c not in self.child.schema]
        if missing:
            raise ValueError(
                f"projection columns {missing} not in child schema {self.child.schema}"
            )

    @property
    def schema(self) -> tuple[str, ...]:
        return self.columns

    def __str__(self) -> str:
        return f"π[{','.join(self.columns)}]({self.child})"


@dataclass(frozen=True)
class Join:
    """Equi-join of two subplans.

    The join condition is the explicit ``pairs`` plus the natural-join
    pairs over columns shared by both schemas. The output schema keeps
    the left schema and appends the right columns not already present
    (shared columns are exported once, as in a natural join).
    """

    left: "Plan"
    right: "Plan"
    pairs: tuple[tuple[str, str], ...] = ()
    query: ConjunctiveQuery | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        for left_col, right_col in self.pairs:
            if left_col not in self.left.schema:
                raise ValueError(f"join column {left_col} not in left schema")
            if right_col not in self.right.schema:
                raise ValueError(f"join column {right_col} not in right schema")

    @property
    def natural_pairs(self) -> tuple[tuple[str, str], ...]:
        """Pairs implied by shared column names (natural-join semantics)."""
        shared = [c for c in self.left.schema if c in self.right.schema]
        return tuple((c, c) for c in shared)

    @property
    def all_pairs(self) -> tuple[tuple[str, str], ...]:
        """Explicit plus natural join pairs."""
        return self.natural_pairs + self.pairs

    @property
    def schema(self) -> tuple[str, ...]:
        extra = tuple(c for c in self.right.schema if c not in self.left.schema)
        return self.left.schema + extra

    def __str__(self) -> str:
        condition = ",".join(f"{lc}={rc}" for lc, rc in self.all_pairs)
        return f"({self.left} ⋈[{condition}] {self.right})"


@dataclass(frozen=True)
class Rename:
    """Rename the columns of ``child`` positionally (zero-cost).

    View Fusion replaces a fused view's scans with projections of the
    surviving view; Rename restores the column names the surrounding
    plan expects.
    """

    child: "Plan"
    columns: tuple[str, ...]
    query: ConjunctiveQuery | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.child.schema):
            raise ValueError(
                f"rename arity {len(self.columns)} differs from child schema "
                f"{self.child.schema}"
            )
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate columns in rename {self.columns}")

    @property
    def schema(self) -> tuple[str, ...]:
        return self.columns

    def __str__(self) -> str:
        return f"ρ[{','.join(self.columns)}]({self.child})"


Plan = Union[Scan, Select, Project, Join, Rename]


def iter_nodes(plan: Plan) -> Iterator[Plan]:
    """All nodes of the plan, children first."""
    if isinstance(plan, (Select, Project, Rename)):
        yield from iter_nodes(plan.child)
    elif isinstance(plan, Join):
        yield from iter_nodes(plan.left)
        yield from iter_nodes(plan.right)
    yield plan


def scans(plan: Plan) -> list[Scan]:
    """All Scan leaves (``v ∈ r`` in the RECε formula)."""
    return [node for node in iter_nodes(plan) if isinstance(node, Scan)]


def view_names(plan: Plan) -> set[str]:
    """Names of all views the plan reads."""
    return {scan.view for scan in scans(plan)}


def replace_scan(plan: Plan, view: str, replacement: Plan) -> Plan:
    """Substitute every ``Scan(view)`` with ``replacement``.

    The replacement must expose the same schema as the scan it replaces
    (the transitions guarantee this: they wrap new views in projections
    back to the old view's head).
    """
    if isinstance(plan, Scan):
        if plan.view != view:
            return plan
        if tuple(replacement.schema) != tuple(plan.schema):
            raise ValueError(
                f"replacement schema {replacement.schema} differs from "
                f"scan schema {plan.schema} for view {view}"
            )
        return replacement
    if isinstance(plan, Select):
        child = replace_scan(plan.child, view, replacement)
        return Select(child, plan.conditions, query=plan.query) if child is not plan.child else plan
    if isinstance(plan, Project):
        child = replace_scan(plan.child, view, replacement)
        return Project(child, plan.columns, query=plan.query) if child is not plan.child else plan
    if isinstance(plan, Rename):
        child = replace_scan(plan.child, view, replacement)
        return Rename(child, plan.columns, query=plan.query) if child is not plan.child else plan
    left = replace_scan(plan.left, view, replacement)
    right = replace_scan(plan.right, view, replacement)
    if left is plan.left and right is plan.right:
        return plan
    return Join(left, right, plan.pairs, query=plan.query)


def rename_scan(plan: Plan, old: str, new: str) -> Plan:
    """Rename a view symbol in all scans (used by View Fusion)."""
    if isinstance(plan, Scan):
        if plan.view != old:
            return plan
        return Scan(new, plan.schema, query=plan.query)
    if isinstance(plan, Select):
        child = rename_scan(plan.child, old, new)
        return Select(child, plan.conditions, query=plan.query) if child is not plan.child else plan
    if isinstance(plan, Project):
        child = rename_scan(plan.child, old, new)
        return Project(child, plan.columns, query=plan.query) if child is not plan.child else plan
    if isinstance(plan, Rename):
        child = rename_scan(plan.child, old, new)
        return Rename(child, plan.columns, query=plan.query) if child is not plan.child else plan
    left = rename_scan(plan.left, old, new)
    right = rename_scan(plan.right, old, new)
    if left is plan.left and right is plan.right:
        return plan
    return Join(left, right, plan.pairs, query=plan.query)


# ----------------------------------------------------------------------
# Execution over materialized extents
# ----------------------------------------------------------------------


#: Sentinel: "use the engine's default batch size" (the engine constant
#: cannot be imported at module top level — the engine imports this
#: module's plan nodes, so that import would be circular).
_DEFAULT_BATCH = object()


def execute(
    plan: Plan,
    extents: Mapping[str, Sequence[Row]],
    engine: str = "auto",
    batch_size=_DEFAULT_BATCH,
) -> list[Row]:
    """Run the plan over view extents; returns rows (duplicates preserved
    except through Project, which deduplicates, matching set semantics of
    the conjunctive rewritings).

    Delegates to the physical-operator engine (:mod:`repro.engine`).
    Joins probe the extents' cached hash indexes when the extents are
    :class:`~repro.engine.extents.ViewExtent` instances (as produced by
    :func:`repro.selection.materialize.materialize_views`); plain
    ``list`` extents still work, building a transient hash table per
    join. Execution is batch-at-a-time by default; ``batch_size=None``
    selects the tuple-at-a-time path. The row order matches the
    historical interpreter exactly under the default engine either way.

    >>> extents = {"v1": [(1, 2), (1, 2), (4, 5)], "v2": [(2, 3)]}
    >>> join = Join(Scan("v1", ("x", "y")), Scan("v2", ("y", "z")))
    >>> execute(join, extents)          # duplicates preserved
    [(1, 2, 3), (1, 2, 3)]
    >>> execute(Project(join, ("x",)), extents)  # Project deduplicates
    [(1,)]
    """
    # Imported lazily: the engine compiles this module's plan nodes, so
    # a top-level import would be circular.
    from repro.engine.operators import DEFAULT_BATCH_SIZE
    from repro.engine.planner import run_plan

    if batch_size is _DEFAULT_BATCH:
        batch_size = DEFAULT_BATCH_SIZE
    return run_plan(plan, extents, engine=engine, batch_size=batch_size)
