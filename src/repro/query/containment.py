"""Containment mappings, minimization, equivalence, isomorphism, and
canonical forms for conjunctive queries.

Containment of conjunctive queries is decided through containment
mappings (Chandra & Merlin): ``q2`` is contained in ``q1`` iff there is a
homomorphism from ``q1`` to ``q2`` mapping head to head and every atom of
``q1`` onto an atom of ``q2``. Equivalence testing is what View Fusion
needs; the paper notes it is NP-complete in our setting, and we implement
it with pruned backtracking (views are small).

Canonical forms give each isomorphism class of queries a unique hashable
key; the search strategies use them to detect duplicate states.
"""

from __future__ import annotations


from repro.query.cq import Atom, ConjunctiveQuery, QueryTerm, Variable


def _match_term(
    pattern: QueryTerm,
    target: QueryTerm,
    mapping: dict[Variable, QueryTerm],
) -> dict[Variable, QueryTerm] | None:
    """Try to unify one pattern term against a target term.

    Constants must match exactly; variables extend ``mapping``
    consistently. Returns the extended mapping, or None on clash.
    """
    if isinstance(pattern, Variable):
        bound = mapping.get(pattern)
        if bound is None:
            extended = dict(mapping)
            extended[pattern] = target
            return extended
        return mapping if bound == target else None
    return mapping if pattern == target else None


def _match_atom(
    pattern: Atom, target: Atom, mapping: dict[Variable, QueryTerm]
) -> dict[Variable, QueryTerm] | None:
    """Extend ``mapping`` so that ``pattern`` maps onto ``target``."""
    current: dict[Variable, QueryTerm] | None = mapping
    for pattern_term, target_term in zip(pattern, target):
        current = _match_term(pattern_term, target_term, current)
        if current is None:
            return None
    return current


def containment_mapping(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> dict[Variable, QueryTerm] | None:
    """A containment mapping from ``source`` to ``target``, or None.

    The mapping sends every atom of ``source`` to some atom of ``target``
    and the head of ``source`` positionally onto the head of ``target``.
    Its existence proves ``target``'s answers are contained in
    ``source``'s on every database.
    """
    if len(source.head) != len(target.head):
        return None
    mapping: dict[Variable, QueryTerm] | None = {}
    for source_term, target_term in zip(source.head, target.head):
        mapping = _match_term(source_term, target_term, mapping)
        if mapping is None:
            return None
    # Order source atoms most-constrained-first for pruning.
    ordered = sorted(
        source.atoms,
        key=lambda atom: -sum(1 for t in atom if not isinstance(t, Variable)),
    )
    return _search_mapping(ordered, 0, target.atoms, mapping)


def _search_mapping(
    pattern_atoms: list[Atom] | tuple[Atom, ...],
    index: int,
    target_atoms: tuple[Atom, ...],
    mapping: dict[Variable, QueryTerm],
) -> dict[Variable, QueryTerm] | None:
    if index == len(pattern_atoms):
        return mapping
    pattern = pattern_atoms[index]
    for target in target_atoms:
        extended = _match_atom(pattern, target, mapping)
        if extended is None:
            continue
        result = _search_mapping(pattern_atoms, index + 1, target_atoms, extended)
        if result is not None:
            return result
    return None


def is_contained_in(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """True when ``q1``'s answers are a subset of ``q2``'s on any database."""
    return containment_mapping(q2, q1) is not None


def equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """True when the two queries have the same answers on any database."""
    return is_contained_in(q1, q2) and is_contained_in(q2, q1)


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core of ``query``: a minimal equivalent subquery (Section 2).

    Repeatedly drops an atom when a containment mapping from the original
    query into the reduced one exists; the result has the property that
    the only containment mapping from it to itself is the identity.
    """
    current = query
    changed = True
    while changed and len(current.atoms) > 1:
        changed = False
        for index in range(len(current.atoms)):
            reduced_atoms = current.atoms[:index] + current.atoms[index + 1 :]
            remaining_vars = set()
            for atom in reduced_atoms:
                remaining_vars.update(atom.variables())
            if any(
                isinstance(t, Variable) and t not in remaining_vars
                for t in current.head
            ):
                continue  # removal would make the query unsafe
            reduced = ConjunctiveQuery(current.head, reduced_atoms, name=current.name)
            if containment_mapping(current, reduced) is not None:
                current = reduced
                changed = True
                break
    return current


def is_minimal(query: ConjunctiveQuery) -> bool:
    """True when no atom can be dropped without changing the semantics."""
    return len(minimize(query).atoms) == len(query.atoms)


# ----------------------------------------------------------------------
# Isomorphism (View Fusion needs bodies equivalent up to renaming)
# ----------------------------------------------------------------------


def find_isomorphism(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    match_heads: bool = False,
) -> dict[Variable, Variable] | None:
    """A bijective variable renaming sending ``q2``'s body onto ``q1``'s.

    This is the ``<2->1>`` renaming of Definition 3.5. With
    ``match_heads=True`` the heads must also correspond positionally.
    Returns None when the bodies are not isomorphic.
    """
    if len(q1.atoms) != len(q2.atoms):
        return None
    if match_heads and len(q1.head) != len(q2.head):
        return None
    mapping: dict[Variable, QueryTerm] = {}
    if match_heads:
        for term2, term1 in zip(q2.head, q1.head):
            if isinstance(term2, Variable):
                if term2 in mapping and mapping[term2] != term1:
                    return None
                if not isinstance(term1, Variable):
                    return None
                mapping[term2] = term1
            elif term2 != term1:
                return None
    used: set[int] = set()
    result = _search_bijection(q2.atoms, 0, q1.atoms, mapping, used)
    return result  # type: ignore[return-value]


def _search_bijection(
    pattern_atoms: tuple[Atom, ...],
    index: int,
    target_atoms: tuple[Atom, ...],
    mapping: dict[Variable, QueryTerm],
    used: set[int],
) -> dict[Variable, QueryTerm] | None:
    if index == len(pattern_atoms):
        return mapping
    pattern = pattern_atoms[index]
    for target_index, target in enumerate(target_atoms):
        if target_index in used:
            continue
        extended = _match_atom(pattern, target, mapping)
        if extended is None:
            continue
        # An isomorphism renames variables to variables, injectively.
        images = list(extended.values())
        if not all(isinstance(image, Variable) for image in images):
            continue
        if len(set(images)) != len(images):
            continue
        used.add(target_index)
        result = _search_bijection(
            pattern_atoms, index + 1, target_atoms, extended, used
        )
        if result is not None:
            return result
        used.discard(target_index)
    return None


def is_isomorphic(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery, match_heads: bool = False
) -> bool:
    """True when the two query bodies are equal up to variable renaming."""
    return find_isomorphism(q1, q2, match_heads=match_heads) is not None


# ----------------------------------------------------------------------
# Canonical forms (state deduplication)
# ----------------------------------------------------------------------

_Token = tuple[str, object]
_EncodedAtom = tuple[_Token, _Token, _Token]


def _encode_atom(
    atom: Atom, assignment: dict[Variable, int], next_index: int
) -> tuple[_EncodedAtom, dict[Variable, int], int]:
    """Encode an atom under (a copy of) the variable-index assignment."""
    tokens: list[_Token] = []
    extended = assignment
    copied = False
    for term in atom:
        if isinstance(term, Variable):
            if term not in extended:
                if not copied:
                    extended = dict(extended)
                    copied = True
                extended[term] = next_index
                next_index += 1
            tokens.append(("v", extended[term]))
        else:
            tokens.append(("c", term.n3()))
    return (tokens[0], tokens[1], tokens[2]), extended, next_index


_CANONICAL_CACHE: dict[tuple[ConjunctiveQuery, bool], tuple] = {}


def canonical_form(query: ConjunctiveQuery, include_head: bool = True):
    """A hashable key identifying ``query`` up to variable renaming.

    Two queries have equal canonical forms iff they are isomorphic
    (including head correspondence when ``include_head`` is True). The
    key is computed by branch-and-bound canonical labeling over atom
    orders: at each step only atoms with the lexicographically least
    encoding are expanded. Results are memoized — the search recomputes
    state keys constantly, and views are immutable.
    """
    cache_key = (query, include_head)
    cached = _CANONICAL_CACHE.get(cache_key)
    if cached is not None:
        return cached
    best: list[tuple] = []

    def recurse(
        remaining: frozenset[int],
        assignment: dict[Variable, int],
        next_index: int,
        prefix: list[_EncodedAtom],
    ) -> None:
        if not remaining:
            restricted = tuple(
                sorted(assignment[v] for v in query.non_literal if v in assignment)
            )
            if include_head:
                head_tokens: list[_Token] = []
                for term in query.head:
                    if isinstance(term, Variable):
                        head_tokens.append(("v", assignment[term]))
                    else:
                        head_tokens.append(("c", term.n3()))
                candidate = (tuple(prefix), tuple(head_tokens), restricted)
            else:
                candidate = (tuple(prefix), (), restricted)
            if not best or candidate < best[0]:
                best[:] = [candidate]
            return
        encodings = []
        for index in remaining:
            encoded, extended, nxt = _encode_atom(
                query.atoms[index], assignment, next_index
            )
            encodings.append((encoded, index, extended, nxt))
        least = min(encoding[0] for encoding in encodings)
        for encoded, index, extended, nxt in encodings:
            if encoded != least:
                continue
            prefix.append(encoded)
            recurse(remaining - {index}, extended, nxt, prefix)
            prefix.pop()

    recurse(frozenset(range(len(query.atoms))), {}, 0, [])
    if len(_CANONICAL_CACHE) > 1_000_000:
        _CANONICAL_CACHE.clear()  # unbounded searches should not leak memory
    _CANONICAL_CACHE[cache_key] = best[0]
    return best[0]


_LABELING_CACHE: dict[tuple[ConjunctiveQuery, bool], tuple] = {}


def canonical_labeling(
    query: ConjunctiveQuery, include_head: bool = True
) -> tuple[tuple, dict[Variable, int]]:
    """:func:`canonical_form` plus a variable assignment achieving it.

    Returns ``(form, assignment)`` where ``form`` equals
    ``canonical_form(query, include_head)`` and ``assignment`` maps every
    body variable to its canonical index. When the query has non-trivial
    automorphisms several assignments achieve the form; one of them is
    returned (deterministically, same branch-and-bound expansion order
    as :func:`canonical_form`) and they are interchangeable: relabeling
    through any of them reproduces the same canonical body.

    The multi-query optimizer (:mod:`repro.engine.mqo`) keys shared join
    subtrees on the form and uses the assignment to align the columns of
    a materialized subtree with each consuming query's variable names.
    """
    cache_key = (query, include_head)
    cached = _LABELING_CACHE.get(cache_key)
    if cached is not None:
        return cached
    best: list[tuple[tuple, dict[Variable, int]]] = []

    def recurse(
        remaining: frozenset[int],
        assignment: dict[Variable, int],
        next_index: int,
        prefix: list[_EncodedAtom],
    ) -> None:
        if not remaining:
            restricted = tuple(
                sorted(assignment[v] for v in query.non_literal if v in assignment)
            )
            if include_head:
                head_tokens: list[_Token] = []
                for term in query.head:
                    if isinstance(term, Variable):
                        head_tokens.append(("v", assignment[term]))
                    else:
                        head_tokens.append(("c", term.n3()))
                candidate = (tuple(prefix), tuple(head_tokens), restricted)
            else:
                candidate = (tuple(prefix), (), restricted)
            if not best or candidate < best[0][0]:
                best[:] = [(candidate, dict(assignment))]
            return
        encodings = []
        for index in remaining:
            encoded, extended, nxt = _encode_atom(
                query.atoms[index], assignment, next_index
            )
            encodings.append((encoded, index, extended, nxt))
        least = min(encoding[0] for encoding in encodings)
        for encoded, index, extended, nxt in encodings:
            if encoded != least:
                continue
            prefix.append(encoded)
            recurse(remaining - {index}, extended, nxt, prefix)
            prefix.pop()

    recurse(frozenset(range(len(query.atoms))), {}, 0, [])
    if len(_LABELING_CACHE) > 1_000_000:
        _LABELING_CACHE.clear()
    _LABELING_CACHE[cache_key] = best[0]
    return best[0]


def canonical_rename(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """An equivalent query with canonically named variables ``V0, V1, ...``.

    Useful for deduplicating reformulation outputs that differ only in
    fresh-variable names.
    """
    atom_encodings, head_tokens, restricted = canonical_form(query, include_head=True)

    def decode_token(token: _Token) -> QueryTerm:
        kind, payload = token
        if kind == "v":
            return Variable(f"V{payload}")
        return _parse_n3_constant(str(payload))

    atoms = tuple(
        Atom(*(decode_token(token) for token in encoded))
        for encoded in atom_encodings
    )
    head = tuple(decode_token(token) for token in head_tokens)
    non_literal = frozenset(Variable(f"V{index}") for index in restricted)
    return ConjunctiveQuery(head, atoms, name=query.name, non_literal=non_literal)


def _parse_n3_constant(text: str) -> QueryTerm:
    from repro.rdf.ntriples import _parse_term

    term, _ = _parse_term(text, 0)
    return term
