"""Evaluation of conjunctive queries and unions over a triple store.

The evaluator is the "standard query evaluation for plain RDF" the paper
relies on (its ``evaluate`` function in Theorem 4.2). Since the engine
refactor, :func:`evaluate` delegates to the physical-operator engine
(:mod:`repro.engine`): atoms are ordered once by exact pattern
cardinality (RDF-3X-style selectivity ordering) and executed through
index-nested-loop, hash or merge joins selectable via ``engine=``.

Two reference implementations are kept alongside:

* :func:`evaluate_greedy` — the original recursive evaluator that
  re-counts every remaining atom at each recursion step (the pre-engine
  behaviour, now a correctness/performance baseline);
* :func:`evaluate_nested_loop` — the unindexed full-scan baseline
  playing the paper's "plain triple table" role in Figure 8.

All evaluators enforce the ``non_literal`` rule-4 semantics and agree on
answer sets (property-tested in ``tests/property/test_property_engine.py``).
"""

from __future__ import annotations

from typing import Iterable

from repro.engine import DEFAULT_BATCH_SIZE, evaluate_union_shared, run_query
from repro.obs import tracing
from repro.query.cq import Atom, ConjunctiveQuery, UnionQuery, Variable
from repro.rdf.store import EncodedPattern, TripleStore
from repro.rdf.terms import Term

#: A query answer: one RDF term per head position.
Answer = tuple[Term, ...]


def _encode_atom_pattern(
    atom: Atom,
    store: TripleStore,
    binding: dict[Variable, int],
) -> EncodedPattern | None:
    """Encoded pattern for an atom under the current variable binding.

    Returns None when a constant does not occur in the store at all, in
    which case the atom (and the whole query) has no matches.
    """
    encoded: list[int | None] = []
    for term in atom:
        if isinstance(term, Variable):
            encoded.append(binding.get(term))
        else:
            code = store.encode_term(term)
            if code is None:
                return None
            encoded.append(code)
    return (encoded[0], encoded[1], encoded[2])


def _match_binding(
    atom: Atom,
    triple: tuple[int, int, int],
    binding: dict[Variable, int],
    store: TripleStore | None = None,
    non_literal: frozenset[Variable] = frozenset(),
) -> dict[Variable, int] | None:
    """Extend ``binding`` so the atom's variables match an encoded triple.

    Bindings of restricted variables (``non_literal``) to literal codes
    are rejected — the rule-4 reformulation semantics.
    """
    extended = binding
    copied = False
    for term, code in zip(atom, triple):
        if not isinstance(term, Variable):
            continue
        bound = extended.get(term)
        if bound is None:
            if (
                store is not None
                and term in non_literal
                and store.dictionary.is_literal_code(code)
            ):
                return None
            if not copied:
                extended = dict(extended)
                copied = True
            extended[term] = code
        elif bound != code:
            return None
    return extended


def _evaluate_rec(
    remaining: list[Atom],
    binding: dict[Variable, int],
    store: TripleStore,
    query: ConjunctiveQuery,
    results: set[Answer],
) -> None:
    if not remaining:
        answer = []
        for term in query.head:
            if isinstance(term, Variable):
                answer.append(store.dictionary.decode(binding[term]))
            else:
                answer.append(term)
        results.add(tuple(answer))
        return
    # Greedy: expand the atom with the fewest matches under the binding.
    best_index = None
    best_count = None
    best_pattern: EncodedPattern | None = None
    for index, atom in enumerate(remaining):
        pattern = _encode_atom_pattern(atom, store, binding)
        if pattern is None:
            return  # a constant absent from the data: no answers
        count = store.count_encoded(pattern)
        if best_count is None or count < best_count:
            best_index, best_count, best_pattern = index, count, pattern
            if count == 0:
                return
    assert best_index is not None and best_pattern is not None
    atom = remaining[best_index]
    rest = remaining[:best_index] + remaining[best_index + 1 :]
    for triple in store.match_encoded(best_pattern):
        extended = _match_binding(atom, triple, binding, store, query.non_literal)
        if extended is not None:
            _evaluate_rec(rest, extended, store, query, results)


def evaluate(
    query: ConjunctiveQuery,
    store: TripleStore,
    engine: str = "auto",
    statistics=None,
    batch_size: int | str | None = DEFAULT_BATCH_SIZE,
    workers: int = 1,
    pushdown: bool = True,
    layout: str = "columnar",
) -> set[Answer]:
    """All answers of a conjunctive query on the store (set semantics).

    Delegates to the physical-operator engine; ``engine`` picks the join
    strategy (see :data:`repro.engine.ENGINES`) and ``statistics`` may
    supply precomputed atom cardinalities for join ordering. With
    ``engine="auto"`` on a SQL-capable backend (SQLite), an eligible
    query runs as one pushed-down SQL statement inside the backend;
    ``pushdown=False`` keeps the interpreted operator tree (the
    ablation baseline). Execution is otherwise batched — columnar by
    default, ``layout="row"`` for the row-list ablation baseline —
    with ``batch_size`` rows per operator hand-off (an int,
    ``"adaptive"`` for planner-derived per-operator sizes, or ``None``
    to restore the tuple-at-a-time path); ``workers`` enables the
    parallel partitioned hash join and morsel-parallel scans on
    big-enough plans.
    """
    return run_query(
        query,
        store,
        engine=engine,
        statistics=statistics,
        batch_size=batch_size,
        workers=workers,
        pushdown=pushdown,
        layout=layout,
    )


def evaluate_greedy(query: ConjunctiveQuery, store: TripleStore) -> set[Answer]:
    """The seed evaluator: greedy index-nested-loop with per-recursion
    re-counting of every remaining atom.

    Kept as the reference baseline the engine is benchmarked against
    (``benchmarks/bench_fig8_query_evaluation.py``) and as an
    independent oracle for the parity property tests; production callers
    should use :func:`evaluate`.
    """
    results: set[Answer] = set()
    _evaluate_rec(list(query.atoms), {}, store, query, results)
    return results


def evaluate_union(
    union: UnionQuery | Iterable[ConjunctiveQuery],
    store: TripleStore,
    engine: str = "auto",
    batch_size: int | None = DEFAULT_BATCH_SIZE,
    workers: int = 1,
    pushdown: bool = True,
    shared: bool = True,
) -> set[Answer]:
    """All answers of a union of conjunctive queries (duplicates removed).

    Reformulation unions overlap heavily — every rule rewrites one atom
    and keeps the rest — so on the default route (``engine="auto"`` with
    a batch size) the disjuncts are evaluated as **one shared batch**
    through the multi-query optimizer (:mod:`repro.engine.mqo`): common
    join subtrees execute once and fan out, encoded answer images are
    deduplicated across the whole union, and each distinct answer is
    decoded exactly once. On a SQL-capable backend an eligible union
    runs as a single pushed-down ``SELECT ... UNION`` statement whose
    shared subtrees are CTEs.

    ``shared=False`` restores fully independent per-disjunct evaluation
    (the measured ablation baseline), as do fixed engines and the
    tuple-at-a-time path.
    """
    disjuncts = union.disjuncts if isinstance(union, UnionQuery) else tuple(union)
    if shared and engine == "auto" and batch_size:
        return evaluate_union_shared(
            disjuncts,
            store,
            batch_size=batch_size,
            workers=workers,
            pushdown=pushdown,
        )
    with tracing.span(
        "query.evaluate_union", disjuncts=len(disjuncts), shared=False
    ):
        results: set[Answer] = set()
        for disjunct in disjuncts:
            results |= evaluate(
                disjunct,
                store,
                engine=engine,
                batch_size=batch_size,
                workers=workers,
                pushdown=pushdown,
            )
        return results


def count_answers(query: ConjunctiveQuery, store: TripleStore) -> int:
    """Number of distinct answers; convenience for statistics collection."""
    return len(evaluate(query, store))


def evaluate_nested_loop(query: ConjunctiveQuery, store: TripleStore) -> set[Answer]:
    """Scan-based nested-loop evaluation: no index selection, fixed atom
    order, full-table scan per atom.

    This is the benchmarks' "plain triple table" baseline (the role the
    unindexed relational plan plays in the paper's Figure 8); production
    callers should use :func:`evaluate`.
    """
    triples = list(store.match_encoded((None, None, None)))
    results: set[Answer] = set()

    def extend(index: int, binding: dict[Variable, int]) -> None:
        if index == len(query.atoms):
            answer = tuple(
                store.dictionary.decode(binding[t]) if isinstance(t, Variable) else t
                for t in query.head
            )
            results.add(answer)
            return
        atom = query.atoms[index]
        constants: list[tuple[int, int | None]] = []
        for position, term in enumerate(atom):
            if isinstance(term, Variable):
                constants.append((position, None))
            else:
                code = store.encode_term(term)
                if code is None:
                    return
                constants.append((position, code))
        for triple in triples:
            ok = True
            for position, code in constants:
                if code is not None and triple[position] != code:
                    ok = False
                    break
            if not ok:
                continue
            extended = _match_binding(atom, triple, binding, store, query.non_literal)
            if extended is not None:
                extend(index + 1, extended)

    extend(0, {})
    return results
