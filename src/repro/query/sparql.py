"""A SPARQL basic-graph-pattern (BGP) parser.

The paper's query language is "the basic graph pattern queries of SPARQL"
(Section 2). This module accepts the corresponding SPARQL subset::

    PREFIX ex: <http://example.org/>
    SELECT ?painter ?work
    WHERE {
        ?painter ex:hasPainted ex:starryNight .
        ?painter ex:isParentOf ?child .
        ?child a ex:painter .
    }

Supported: ``PREFIX`` declarations, ``SELECT`` with explicit variables or
``*``, triple patterns with ``?var``, ``<uri>``, ``prefix:name``,
``"literal"``, ``_:label`` blank nodes (treated as existential variables)
and the ``a`` keyword for ``rdf:type``. Anything else raises
:class:`SparqlSyntaxError`.
"""

from __future__ import annotations

import re

from repro.query.cq import Atom, ConjunctiveQuery, QueryTerm, Variable
from repro.rdf import vocabulary
from repro.rdf.terms import Literal, URI


class SparqlSyntaxError(ValueError):
    """Raised on SPARQL text outside the supported BGP subset."""


_PREFIX_RE = re.compile(r"PREFIX\s+(\w*):\s*<([^>]*)>", re.IGNORECASE)
_SELECT_RE = re.compile(
    r"SELECT\s+(?P<vars>\*|(?:\?\w+\s*)+)\s*WHERE\s*\{(?P<body>.*)\}\s*$",
    re.IGNORECASE | re.DOTALL,
)
_TERM_RE = re.compile(
    r"""
      \?(?P<var>\w+)
    | <(?P<uri>[^>]*)>
    | "(?P<lit>[^"]*)"
    | _:(?P<bnode>\w+)
    | (?P<a>\ba\b)
    | (?P<pname>[\w-]*:[\w.\-]+)
    """,
    re.VERBOSE,
)


def _parse_term(
    match: re.Match,
    prefixes: dict[str, str],
    blank_nodes: dict[str, Variable],
) -> QueryTerm:
    if match.group("var") is not None:
        return Variable(match.group("var"))
    if match.group("uri") is not None:
        return URI(match.group("uri"))
    if match.group("lit") is not None:
        return Literal(match.group("lit"))
    if match.group("bnode") is not None:
        label = match.group("bnode")
        if label not in blank_nodes:
            blank_nodes[label] = Variable(f"_B_{label}")
        return blank_nodes[label]
    if match.group("a") is not None:
        return vocabulary.RDF_TYPE
    pname = match.group("pname")
    prefix, _, local = pname.partition(":")
    if prefix not in prefixes:
        raise SparqlSyntaxError(f"undeclared prefix {prefix!r} in {pname!r}")
    return URI(prefixes[prefix] + local)


def parse_sparql_bgp(text: str, name: str = "q") -> ConjunctiveQuery:
    """Parse a SPARQL BGP SELECT query into a conjunctive query."""
    prefixes = {"rdf": vocabulary.RDF_NS, "rdfs": vocabulary.RDFS_NS}
    for match in _PREFIX_RE.finditer(text):
        prefixes[match.group(1)] = match.group(2)
    stripped = _PREFIX_RE.sub("", text).strip()
    select = _SELECT_RE.search(stripped)
    if select is None:
        raise SparqlSyntaxError("expected 'SELECT ... WHERE { ... }'")
    blank_nodes: dict[str, Variable] = {}
    atoms = []
    for pattern in select.group("body").split("."):
        pattern = pattern.strip()
        if not pattern:
            continue
        terms = []
        position = 0
        for _ in range(3):
            term_match = _TERM_RE.match(pattern, position)
            if term_match is None:
                raise SparqlSyntaxError(f"cannot parse triple pattern {pattern!r}")
            terms.append(_parse_term(term_match, prefixes, blank_nodes))
            position = term_match.end()
            while position < len(pattern) and pattern[position].isspace():
                position += 1
        if position != len(pattern):
            raise SparqlSyntaxError(f"trailing tokens in pattern {pattern!r}")
        atoms.append(Atom(*terms))
    if not atoms:
        raise SparqlSyntaxError("empty basic graph pattern")
    variables_text = select.group("vars").strip()
    if variables_text == "*":
        seen: list[Variable] = []
        for atom in atoms:
            for term in atom:
                if isinstance(term, Variable) and term not in seen:
                    seen.append(term)
        head: tuple[QueryTerm, ...] = tuple(seen)
    else:
        head = tuple(Variable(v) for v in re.findall(r"\?(\w+)", variables_text))
    return ConjunctiveQuery(head, tuple(atoms), name=name)
