"""Conjunctive queries over the triple table ``t(s, p, o)`` (Definition 2.1).

A query term is a :class:`Variable` or an RDF term (URI / literal / blank
node) acting as a constant. Blank nodes in queries behave exactly like
existential variables (Section 2), so parsers translate them to variables;
the model itself treats any RDF term as an opaque constant.

Heads are tuples of variables or constants: reformulation (Section 4.2,
Table 2) binds head variables to constants, e.g. ``q4(X1, isLocatIn)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Union

from repro.rdf.terms import Term, is_term

ATTRIBUTES = ("s", "p", "o")


@dataclass(frozen=True, slots=True)
class Variable:
    """A query variable; free (head) or existential depending on usage."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


QueryTerm = Union[Variable, Term]

_FRESH_COUNTER = itertools.count()


def fresh_variable(prefix: str = "F") -> Variable:
    """A globally fresh variable, used by transitions and reformulation."""
    return Variable(f"{prefix}{next(_FRESH_COUNTER)}")


def is_variable(term: object) -> bool:
    """True when ``term`` is a query variable."""
    return isinstance(term, Variable)


@dataclass(frozen=True, slots=True)
class Atom:
    """A triple atom ``t(s, p, o)`` whose terms are variables or constants."""

    s: QueryTerm
    p: QueryTerm
    o: QueryTerm

    def __post_init__(self) -> None:
        for term in (self.s, self.p, self.o):
            if not isinstance(term, Variable) and not is_term(term):
                raise TypeError(f"atom term must be a Variable or RDF term: {term!r}")

    def terms(self) -> tuple[QueryTerm, QueryTerm, QueryTerm]:
        """The three terms in ``(s, p, o)`` order."""
        return (self.s, self.p, self.o)

    def __iter__(self) -> Iterator[QueryTerm]:
        return iter((self.s, self.p, self.o))

    def term_at(self, attribute: str) -> QueryTerm:
        """Term at attribute ``'s'`` / ``'p'`` / ``'o'``."""
        return self.terms()[ATTRIBUTES.index(attribute)]

    def variables(self) -> set[Variable]:
        """The variables occurring in this atom."""
        return {term for term in self if isinstance(term, Variable)}

    def constants(self) -> set[Term]:
        """The constants occurring in this atom."""
        return {term for term in self if not isinstance(term, Variable)}

    def substitute(self, mapping: Mapping[Variable, QueryTerm]) -> "Atom":
        """Apply a variable substitution to all three positions."""
        return Atom(*(mapping.get(t, t) if isinstance(t, Variable) else t for t in self))

    def replace_at(self, attribute: str, term: QueryTerm) -> "Atom":
        """A copy with the term at ``attribute`` replaced by ``term``."""
        parts = list(self.terms())
        parts[ATTRIBUTES.index(attribute)] = term
        return Atom(*parts)

    def __str__(self) -> str:
        return f"t({', '.join(_render_term(t) for t in self)})"


def _render_term(term: QueryTerm) -> str:
    if isinstance(term, Variable):
        return term.name
    return term.n3()


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query: a head and a conjunction of triple atoms.

    Queries must be *safe*: every head variable occurs in the body.
    Minimality and connectedness are not enforced at construction (the
    transitions need intermediate forms); use :func:`repro.query.containment.minimize`
    and :meth:`is_connected` where the paper's assumptions matter.

    ``non_literal`` lists variables that must never bind to literals.
    Reformulation rule 4 needs it: the rewritten atom ``t(X, p, o)``
    stands for the subject ``o`` of an entailed type triple, and a
    literal can never be the subject of a well-formed triple. The
    evaluators enforce the restriction; it is part of query identity.
    """

    head: tuple[QueryTerm, ...]
    atoms: tuple[Atom, ...]
    name: str = field(default="q", compare=False)
    non_literal: frozenset[Variable] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.atoms:
            raise ValueError("a conjunctive query needs at least one atom")
        body_vars = self.variables()
        for term in self.head:
            if isinstance(term, Variable) and term not in body_vars:
                raise ValueError(
                    f"unsafe query {self.name}: head variable {term} not in body"
                )
        if self.non_literal - body_vars:
            # Restrictions on absent variables are meaningless; keeping
            # them would also break canonical forms.
            object.__setattr__(
                self, "non_literal", frozenset(self.non_literal & body_vars)
            )

    def __hash__(self) -> int:
        # Queries key every prepared-plan cache and get re-hashed on
        # each lookup; memoizing keeps batch-sized cache keys O(1).
        # Mirrors the generated dataclass hash (``name`` compares False).
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.head, self.atoms, self.non_literal))
            object.__setattr__(self, "_hash", cached)
        return cached

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of atoms — ``len(v)`` in the paper's cost formulas."""
        return len(self.atoms)

    def variables(self) -> set[Variable]:
        """All variables occurring in the body."""
        found: set[Variable] = set()
        for atom in self.atoms:
            found.update(atom.variables())
        return found

    def head_variables(self) -> set[Variable]:
        """The variables occurring in the head (free variables)."""
        return {term for term in self.head if isinstance(term, Variable)}

    def existential_variables(self) -> set[Variable]:
        """Body variables not exported by the head."""
        return self.variables() - self.head_variables()

    def constants(self) -> set[Term]:
        """All constants occurring in the body."""
        found: set[Term] = set()
        for atom in self.atoms:
            found.update(atom.constants())
        return found

    def constant_occurrences(self) -> list[tuple[int, str, Term]]:
        """All ``(atom index, attribute, constant)`` occurrences in the body."""
        occurrences = []
        for index, atom in enumerate(self.atoms):
            for attribute, term in zip(ATTRIBUTES, atom):
                if not isinstance(term, Variable):
                    occurrences.append((index, attribute, term))
        return occurrences

    def join_graph_edges(self) -> list[tuple[int, str, int, str]]:
        """Join edges ``(i, ai, j, aj)``, i < j, for every pair of positions
        in distinct atoms holding the same variable (Definition 3.1)."""
        edges = []
        for i, j in itertools.combinations(range(len(self.atoms)), 2):
            for ai, term_i in zip(ATTRIBUTES, self.atoms[i]):
                if not isinstance(term_i, Variable):
                    continue
                for aj, term_j in zip(ATTRIBUTES, self.atoms[j]):
                    if term_i == term_j:
                        edges.append((i, ai, j, aj))
        return edges

    def is_connected(self) -> bool:
        """True when the join graph is connected (no Cartesian products)."""
        if len(self.atoms) <= 1:
            return True
        adjacency: dict[int, set[int]] = {i: set() for i in range(len(self.atoms))}
        for i, _, j, _ in self.join_graph_edges():
            adjacency[i].add(j)
            adjacency[j].add(i)
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(self.atoms)

    def connected_components(self) -> list[list[int]]:
        """Atom-index components of the join graph, in first-atom order."""
        adjacency: dict[int, set[int]] = {i: set() for i in range(len(self.atoms))}
        for i, _, j, _ in self.join_graph_edges():
            adjacency[i].add(j)
            adjacency[j].add(i)
        seen: set[int] = set()
        components: list[list[int]] = []
        for start in range(len(self.atoms)):
            if start in seen:
                continue
            component = [start]
            seen.add(start)
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbour in adjacency[node]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        component.append(neighbour)
                        frontier.append(neighbour)
            components.append(sorted(component))
        return components

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------

    def substitute(self, mapping: Mapping[Variable, QueryTerm]) -> "ConjunctiveQuery":
        """Apply a substitution to head and body.

        A non-literal restriction follows the variable it constrains; a
        restricted variable substituted by another variable transfers
        the restriction, one substituted by a constant drops it (the
        constant either is a literal — the query is unsatisfiable and
        evaluation handles it — or trivially satisfies it).
        """
        new_head = tuple(
            mapping.get(t, t) if isinstance(t, Variable) else t for t in self.head
        )
        new_atoms = tuple(atom.substitute(mapping) for atom in self.atoms)
        restricted = frozenset(
            image
            for variable in self.non_literal
            for image in (mapping.get(variable, variable),)
            if isinstance(image, Variable)
        )
        return ConjunctiveQuery(
            new_head, new_atoms, name=self.name, non_literal=restricted
        )

    def replace_atom(self, index: int, atom: Atom) -> "ConjunctiveQuery":
        """A copy with the atom at ``index`` replaced."""
        atoms = list(self.atoms)
        atoms[index] = atom
        return ConjunctiveQuery(
            self.head, tuple(atoms), name=self.name, non_literal=self.non_literal
        )

    def with_name(self, name: str) -> "ConjunctiveQuery":
        """A copy carrying a different name (names do not affect equality)."""
        return ConjunctiveQuery(
            self.head, self.atoms, name=name, non_literal=self.non_literal
        )

    def with_head(self, head: Iterable[QueryTerm]) -> "ConjunctiveQuery":
        """A copy with a different head."""
        return ConjunctiveQuery(
            tuple(head), self.atoms, name=self.name, non_literal=self.non_literal
        )

    def with_non_literal(self, variables: Iterable[Variable]) -> "ConjunctiveQuery":
        """A copy with additional non-literal binding restrictions."""
        return ConjunctiveQuery(
            self.head,
            self.atoms,
            name=self.name,
            non_literal=self.non_literal | frozenset(variables),
        )

    def rename_apart(self, taken: set[Variable]) -> "ConjunctiveQuery":
        """A copy whose variables are disjoint from ``taken``."""
        mapping: dict[Variable, Variable] = {}
        for variable in sorted(self.variables(), key=lambda v: v.name):
            if variable in taken:
                mapping[variable] = fresh_variable(variable.name + "_")
        if not mapping:
            return self
        return self.substitute(mapping)

    def __str__(self) -> str:
        head = ", ".join(_render_term(t) for t in self.head)
        body = ", ".join(str(atom) for atom in self.atoms)
        return f"{self.name}({head}) :- {body}"


@dataclass(frozen=True)
class UnionQuery:
    """A union of conjunctive queries sharing one head arity.

    Reformulation (Algorithm 1) outputs unions; pre-reformulation states
    use them as views and rewritings.
    """

    disjuncts: tuple[ConjunctiveQuery, ...]
    name: str = field(default="q", compare=False)

    def __post_init__(self) -> None:
        if not self.disjuncts:
            raise ValueError("a union query needs at least one disjunct")
        arities = {len(cq.head) for cq in self.disjuncts}
        if len(arities) != 1:
            raise ValueError(f"union disjuncts disagree on head arity: {arities}")

    @property
    def arity(self) -> int:
        """Common head arity of the disjuncts."""
        return len(self.disjuncts[0].head)

    def __len__(self) -> int:
        """Number of disjuncts."""
        return len(self.disjuncts)

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def total_atoms(self) -> int:
        """Total number of atoms across disjuncts (``#a`` in Table 3)."""
        return sum(len(cq) for cq in self.disjuncts)

    def total_constants(self) -> int:
        """Total constant occurrences across disjuncts (``#c`` in Table 3)."""
        return sum(len(cq.constant_occurrences()) for cq in self.disjuncts)

    def __str__(self) -> str:
        return "\n  UNION ".join(str(cq) for cq in self.disjuncts)
