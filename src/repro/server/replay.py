"""Workload replay against a serve-mode server.

Drives N client threads — each with its own connection, so requests
really are concurrent on the server side — through a shared schedule
of query texts, measuring sustained QPS and client-observed latency
percentiles. When a ``reference`` mapping (query text → expected
answer set from single-process evaluation) is supplied, every served
answer is verified against it **during** the measurement, so a QPS
figure is only ever reported for correct answers.

Used by ``repro serve --replay`` and ``benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.server.client import ServerClient
from repro.server.protocol import ServerError


@dataclass(slots=True)
class ReplayReport:
    """Outcome of one replay run (all latencies in milliseconds)."""

    queries: int
    clients: int
    elapsed_s: float
    errors: int
    mismatches: int
    latencies_ms: list[float] = field(repr=False)
    error_messages: list[str] = field(repr=False)

    @property
    def qps(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.queries / self.elapsed_s

    def percentile(self, fraction: float) -> float | None:
        if not self.latencies_ms:
            return None
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def summary(self) -> dict:
        """JSON-ready digest (what BENCH_serve.json records per series)."""
        return {
            "queries": self.queries,
            "clients": self.clients,
            "elapsed_s": round(self.elapsed_s, 6),
            "qps": round(self.qps, 3),
            "errors": self.errors,
            "mismatches": self.mismatches,
            "latency_ms": {
                "p50": self.percentile(0.50),
                "p95": self.percentile(0.95),
                "p99": self.percentile(0.99),
            },
        }


def replay(
    address,
    authkey: bytes,
    schedule: Sequence[str],
    *,
    clients: int = 4,
    timeout: float = 60.0,
    reference: Mapping[str, frozenset] | None = None,
) -> ReplayReport:
    """Replay ``schedule`` through ``clients`` concurrent connections.

    The schedule is dealt round-robin across clients; each client
    submits its queries one request at a time (cross-request batching
    is the *server's* job — the window forms from genuinely concurrent
    arrivals, exactly as it would in production). Answers are checked
    against ``reference`` as they return.
    """
    if clients < 1:
        raise ValueError("replay needs at least one client")
    slices = [list(schedule[index::clients]) for index in range(clients)]
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[list[str]] = [[] for _ in range(clients)]
    mismatches = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def drive(slot: int) -> None:
        texts = slices[slot]
        client = ServerClient(address, authkey)
        try:
            barrier.wait()
            for text in texts:
                try:
                    result = client.query(text, timeout=timeout)
                except ServerError as exc:
                    errors[slot].append(str(exc))
                    continue
                latencies[slot].append(result.latency_ms)
                if not result.ok:
                    errors[slot].append(result.error)
                    continue
                if reference is not None:
                    expected = reference[text]
                    if frozenset(result.answers) != frozenset(expected):
                        mismatches[slot] += 1
        finally:
            client.close()

    threads = [
        threading.Thread(target=drive, args=(slot,), daemon=True)
        for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    flat_errors = [message for chunk in errors for message in chunk]
    return ReplayReport(
        queries=len(schedule),
        clients=clients,
        elapsed_s=elapsed,
        errors=len(flat_errors),
        mismatches=sum(mismatches),
        latencies_ms=[value for chunk in latencies for value in chunk],
        error_messages=flat_errors,
    )
