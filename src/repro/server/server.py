"""The serve-mode server: accept clients, batch queries, fan out.

Architecture (one process, N worker processes)::

    clients ──sockets──► reader threads ──► bounded intake queue
                                               │
                                       dispatcher thread
                                  (gathers batching windows)
                                               │
                                 dispatch ThreadPoolExecutor
                                   │ acquire / release │
                                   ▼                   ▼
                            WorkerPool (N forked worker processes,
                            each: read-only snapshot + plan cache)

Batching windows are how one server turns concurrent clients into
multi-query optimization wins: the dispatcher takes the first pending
request, then keeps draining the intake queue until ``window_ms``
elapses (or ``max_batch_requests`` requests gathered), and ships all
their query texts as *one* ``run_query_batch`` call to one worker —
identical scans and subplans shared across clients that happened to
arrive together. ``window_ms=0`` disables cross-request batching;
each request still ships as one batch (its own texts still share).

Backpressure is the bounded intake queue: when dispatch falls behind,
reader threads block putting into it, the kernel socket buffers fill,
and clients slow down — no unbounded queueing inside the server.

Fault tolerance: a worker that dies mid-batch is replaced in its pool
slot and the batch retries on another worker (up to ``retries`` times
— safe, the snapshot is immutable and read-only); a batch that keeps
failing answers every affected request with a clean error. Nothing in
the dispatch path waits unboundedly.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing.connection import Listener
from pathlib import Path

from repro.engine import DEFAULT_BATCH_SIZE
from repro.engine.planner import _check_batch_size
from repro.obs.metrics import MetricsRegistry
from repro.server.pool import BatchFailed, WorkerCrash, WorkerPool
from repro.server.protocol import ServerError


@dataclass(slots=True)
class ServerConfig:
    """Tuning knobs of one server instance (defaults serve tests and
    small deployments; the CLI exposes the interesting ones)."""

    workers: int = 2
    backend: str = "sqlite"
    window_ms: float = 2.0
    max_batch_requests: int = 32
    batch_size: int | None = DEFAULT_BATCH_SIZE
    engine: str = "auto"
    collect_metrics: bool = True
    retries: int = 1
    request_timeout_s: float = 30.0
    max_pending: int = 1024
    #: Enables test-only request options (``delay_ms``). Never on in
    #: production paths.
    test_hooks: bool = False


class Server:
    """Serve one read-only snapshot to concurrent clients.

    Construction order is deliberate: the worker pool forks **before**
    any server thread starts (forking a multi-threaded process risks
    inheriting held locks), then the listener socket opens and the
    accept/dispatcher threads come up. Use as a context manager or call
    :meth:`stop` explicitly.
    """

    def __init__(self, path, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.path = str(path)
        if not Path(self.path).is_file():
            raise ServerError(f"snapshot {self.path} does not exist")
        cfg = self.config
        # Same normalization as the CLI/engine boundary: 0 → None (the
        # tuple path), "adaptive" passes, anything invalid raises here
        # instead of surfacing per-request inside the workers.
        cfg.batch_size = _check_batch_size(cfg.batch_size)
        self.metrics = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        #: ``(worker_index, texts_tuple)`` per executed batch, in
        #: completion order — lets tests replay exactly the batches each
        #: worker ran and reconcile metrics with a serial re-execution.
        self.batch_log: list[tuple[int, tuple[str, ...]]] = []
        self.pool = WorkerPool(
            self.path,
            workers=cfg.workers,
            backend=cfg.backend,
            batch_size=cfg.batch_size,
            engine=cfg.engine,
            collect_metrics=cfg.collect_metrics,
            test_hooks=cfg.test_hooks,
        )
        self._stopping = threading.Event()
        self._intake: queue.Queue = queue.Queue(maxsize=cfg.max_pending)
        self._conn_locks: dict[int, threading.Lock] = {}
        self._reader_threads: list[threading.Thread] = []
        self._readers_lock = threading.Lock()
        try:
            self.authkey = os.urandom(16)
            self._listener = Listener(None, "AF_UNIX", authkey=self.authkey)
            self.address = self._listener.address
            self._dispatch_pool = ThreadPoolExecutor(
                max_workers=cfg.workers,
                thread_name_prefix="repro-serve-dispatch",
            )
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-serve-accept",
                daemon=True,
            )
            self._dispatcher_thread = threading.Thread(
                target=self._dispatch_loop, name="repro-serve-dispatcher",
                daemon=True,
            )
            self._accept_thread.start()
            self._dispatcher_thread.start()
        except BaseException:
            self.pool.shutdown()
            raise

    # -- client-facing surface -----------------------------------------

    def connect(self):
        """A fresh client connection to this server (in-process use)."""
        from repro.server.client import ServerClient

        return ServerClient(self.address, self.authkey)

    def worker_pids(self) -> list[int]:
        return self.pool.pids()

    def metrics_dump(self) -> dict:
        """Lossless merged registry: server counters + worker dumps."""
        with self._metrics_lock:
            return self.metrics.dump()

    def metrics_snapshot(self) -> dict:
        with self._metrics_lock:
            return self.metrics.snapshot()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stop(self) -> None:
        """Shut down threads, socket, and workers. Idempotent."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        self._accept_thread.join(timeout=2.0)
        self._dispatcher_thread.join(timeout=2.0)
        self._dispatch_pool.shutdown(wait=True)
        with self._readers_lock:
            readers = list(self._reader_threads)
        for thread in readers:
            thread.join(timeout=2.0)
        self.pool.shutdown()

    # -- accept / read -------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn = self._listener.accept()
            except Exception:  # noqa: BLE001 - auth failure / closed socket
                if self._stopping.is_set():
                    return
                continue
            thread = threading.Thread(
                target=self._reader_loop, args=(conn,),
                name="repro-serve-reader", daemon=True,
            )
            with self._readers_lock:
                self._reader_threads.append(thread)
            self._conn_locks[id(conn)] = threading.Lock()
            thread.start()

    def _reader_loop(self, conn) -> None:
        """Pump one client connection into the intake queue.

        The bounded ``put`` is the backpressure point: when the queue is
        full this thread blocks, the socket buffer behind it fills, and
        the client's next ``send`` blocks in turn.
        """
        try:
            while not self._stopping.is_set():
                if not conn.poll(0.1):
                    continue
                message = conn.recv()
                kind, request_id = message[0], message[1]
                if kind == "metrics":
                    self._reply(conn, request_id, self.metrics_dump(), 0.0)
                    continue
                if kind == "info":
                    self._reply(conn, request_id, self._info(), 0.0)
                    continue
                if kind != "query":
                    self._reply(
                        conn, request_id,
                        [("error", f"unknown request kind {kind!r}")], 0.0,
                    )
                    continue
                texts, options = list(message[2]), dict(message[3])
                item = (conn, request_id, texts, options, time.perf_counter())
                while not self._stopping.is_set():
                    try:
                        self._intake.put(item, timeout=0.2)
                        break
                    except queue.Full:
                        continue
        except (EOFError, OSError):
            pass
        finally:
            self._conn_locks.pop(id(conn), None)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _info(self) -> dict:
        cfg = self.config
        return {
            "path": self.path,
            "workers": cfg.workers,
            "backend": cfg.backend,
            "window_ms": cfg.window_ms,
            "engine": cfg.engine,
            "worker_pids": self.worker_pids(),
        }

    def _reply(self, conn, request_id, payload, server_ms: float) -> None:
        lock = self._conn_locks.get(id(conn))
        try:
            if lock is None:
                conn.send(("result", request_id, payload, server_ms))
            else:
                with lock:
                    conn.send(("result", request_id, payload, server_ms))
        except (BrokenPipeError, OSError):  # client went away
            pass

    # -- dispatch ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        """Form batching windows from the intake queue."""
        cfg = self.config
        while not self._stopping.is_set():
            try:
                first = self._intake.get(timeout=0.05)
            except queue.Empty:
                continue
            window = [first]
            if cfg.window_ms > 0:
                deadline = time.monotonic() + cfg.window_ms / 1000.0
                while len(window) < cfg.max_batch_requests:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        window.append(self._intake.get(timeout=remaining))
                    except queue.Empty:
                        break
            self._dispatch_pool.submit(self._run_batch, window)

    def _run_batch(self, window: list) -> None:
        """Execute one window's requests as a single worker batch."""
        cfg = self.config
        texts: list[str] = []
        counts: list[int] = []
        delay_ms = None
        for _conn, _rid, request_texts, options, _start in window:
            texts.extend(request_texts)
            counts.append(len(request_texts))
            if cfg.test_hooks and options.get("delay_ms"):
                delay_ms = max(delay_ms or 0.0, float(options["delay_ms"]))
        entries = None
        exec_ms = 0.0
        error = None
        attempts = 0
        while attempts <= cfg.retries:
            attempts += 1
            try:
                worker = self.pool.acquire(timeout=cfg.request_timeout_s)
            except ServerError as exc:
                error = str(exc)
                break
            try:
                entries, exec_ms, dump = worker.run(
                    texts, delay_ms=delay_ms, timeout=cfg.request_timeout_s
                )
            except WorkerCrash as exc:
                with self._metrics_lock:
                    self.metrics.inc("server.worker_crashes")
                    if attempts <= cfg.retries:
                        self.metrics.inc("server.retries")
                error = f"worker died while serving the request: {exc}"
                try:
                    self.pool.replace(worker)
                except ServerError as spawn_exc:  # pragma: no cover
                    error = f"{error}; respawn failed: {spawn_exc}"
                    break
                continue
            except BatchFailed as exc:
                self.pool.release(worker)
                error = str(exc)
                break
            self.pool.release(worker)
            self.batch_log.append((worker.index, tuple(texts)))
            if dump is not None:
                with self._metrics_lock:
                    self.metrics.merge(dump)
            break
        if entries is None:
            message = error or "request failed"
            entries = [("error", message)] * len(texts)
        finished = time.perf_counter()
        with self._metrics_lock:
            self.metrics.inc("server.batches")
            self.metrics.inc("server.batch_requests", len(window))
            self.metrics.inc("server.batch_queries", len(texts))
            self.metrics.inc("server.requests", len(window))
            self.metrics.inc("server.queries", len(texts))
            if error is not None:
                self.metrics.inc("server.errors", len(window))
            self.metrics.observe("server.worker_exec_ms", exec_ms)
            for _conn, _rid, _texts, _options, started in window:
                self.metrics.observe(
                    "server.latency_ms", (finished - started) * 1000.0
                )
        offset = 0
        for (conn, request_id, _texts, _options, started), count in zip(
            window, counts
        ):
            payload = entries[offset:offset + count]
            offset += count
            self._reply(
                conn, request_id, payload, (finished - started) * 1000.0
            )
