"""Server mode: multi-process concurrent query serving over snapshots.

One :class:`Server` opens a single-file snapshot read-only, forks N
worker processes (each with its own backend connection and per-worker
prepared-plan cache), and serves concurrent clients over a local
socket, batching concurrently-arriving queries into shared
``run_query_batch`` windows so multi-query optimization applies across
clients. See ``docs/server.md`` for the architecture.

>>> from repro.server import Server, ServerConfig
>>> with Server("kb.snapshot", ServerConfig(workers=2)) as server:
...     with server.connect() as client:
...         answers = client.query(text).answers_or_raise()
"""

from repro.server.client import ServerClient
from repro.server.pool import BatchFailed, WorkerCrash, WorkerPool
from repro.server.protocol import ServeResult, ServerError
from repro.server.replay import ReplayReport, replay
from repro.server.server import Server, ServerConfig

__all__ = [
    "BatchFailed",
    "ReplayReport",
    "replay",
    "ServeResult",
    "Server",
    "ServerClient",
    "ServerConfig",
    "ServerError",
    "WorkerCrash",
    "WorkerPool",
]
