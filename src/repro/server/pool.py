"""The persistent worker pool behind server mode.

This is the evolution of :mod:`repro.engine.parallel`'s cached fork
pool into long-lived, *stateful* workers: where the join pool ships
self-contained functions over plain rows, a serve worker holds real
per-process state — its own backend connection to the shared snapshot
(opened read-only, so N processes serve one file with zero writes), its
own prepared-plan cache (per-store, warmed by the traffic it sees), and
its own parse cache — and answers batches of query texts over a
request/response pipe.

Fault tolerance is per worker, not per pool: a worker killed mid-batch
(OOM, operator error) is detected by liveness polling, the pool spawns
a replacement, and the caller gets :class:`WorkerCrash` to retry the
batch on another worker — one dead process never poisons the pool and
never hangs a request. Batches are pure reads on an immutable snapshot,
so retrying is always safe.

Every reply can carry a :mod:`repro.obs.metrics` dump recorded against
a fresh registry for exactly that batch (``metrics.collect``), so the
server's merged totals reconcile with what its workers measured.
"""

from __future__ import annotations

import os
import time
from typing import Sequence

from repro.engine import DEFAULT_BATCH_SIZE
from repro.engine.parallel import fork_context
from repro.engine.planner import _check_batch_size
from repro.obs import metrics
from repro.server.protocol import ServerError

#: Seconds a worker gets to open the snapshot and report ready.
START_TIMEOUT_S = 30.0

#: Poll interval of the reply/liveness loop, seconds.
_POLL_S = 0.05


class WorkerCrash(RuntimeError):
    """The worker process died (or was killed) before replying."""


class BatchFailed(RuntimeError):
    """The worker survived but the whole batch failed (e.g. the
    snapshot file vanished). Deterministic — not worth a retry."""


def _snapshot_identity(path: str) -> tuple[int, int]:
    """(device, inode) of the snapshot file — its on-disk identity.

    SQLite reads through the open file descriptor, so a snapshot
    deleted or replaced underneath a reader would keep silently serving
    the *old* data forever. Workers re-check the identity before every
    batch and fail with a clear error instead.
    """
    stat = os.stat(path)
    return (stat.st_dev, stat.st_ino)


def _answer_batch(texts, store, parse_cache, batch_size, engine):
    """Answer one batch of query texts on the worker's store.

    Parse failures become per-text error entries; the valid remainder
    runs through :func:`repro.engine.run_query_batch`, so cross-client
    sharing (MQO) applies to whatever arrived in the same window.
    """
    from repro.engine import run_query_batch
    from repro.query.parser import QuerySyntaxError, parse_query

    entries: list = [None] * len(texts)
    queries, positions = [], []
    for index, text in enumerate(texts):
        query = parse_cache.get(text)
        if query is None:
            try:
                query = parse_query(text)
            except (QuerySyntaxError, ValueError) as exc:
                entries[index] = ("error", f"parse error: {exc}")
                continue
            if len(parse_cache) >= 4096:  # bound worker memory
                parse_cache.clear()
            parse_cache[text] = query
        queries.append(query)
        positions.append(index)
    if queries:
        answers = run_query_batch(
            queries, store, engine=engine, batch_size=batch_size
        )
        if metrics.enabled:
            metrics.inc("serve.worker.queries", len(queries))
            metrics.inc("serve.worker.batches")
        for index, answer in zip(positions, answers):
            entries[index] = ("ok", answer)
    return entries


def worker_main(
    conn,
    path: str,
    backend: str,
    batch_size: int | None,
    engine: str,
    collect: bool,
    test_hooks: bool,
) -> None:
    """Body of one worker process: open the snapshot, serve batches.

    Runs in the child. The snapshot opens read-only on the SQLite
    backend (zero writes; N workers share the file) or is bulk-loaded
    into memory with ``backend="memory"``. Every failure mode reports
    back over the pipe — the parent never has to guess why a worker
    went quiet.
    """
    try:
        from repro.rdf.store import TripleStore

        read_only = True if backend == "sqlite" else None
        store = TripleStore.open(path, backend=backend, read_only=read_only)
        identity = _snapshot_identity(path)
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        try:
            conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("ready", os.getpid()))
    parse_cache: dict = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message[0] == "stop":
            break
        _, sequence, texts, delay_ms = message
        if test_hooks and delay_ms:
            time.sleep(delay_ms / 1000.0)
        try:
            current = _snapshot_identity(path)
            if current != identity:
                raise ServerError(
                    f"snapshot {path} was replaced underneath the server "
                    "(file identity changed); restart the server on the "
                    "new snapshot"
                )
            started = time.perf_counter()
            if collect:
                entries, dump = metrics.collect(
                    _answer_batch, texts, store, parse_cache, batch_size,
                    engine,
                )
            else:
                entries = _answer_batch(
                    texts, store, parse_cache, batch_size, engine
                )
                dump = None
            exec_ms = (time.perf_counter() - started) * 1000.0
            reply = ("ok", sequence, entries, exec_ms, dump)
        except FileNotFoundError:
            reply = (
                "error", sequence,
                f"snapshot {path} was deleted underneath the server",
            )
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            reply = ("error", sequence, f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class Worker:
    """Parent-side handle of one worker process (pipe + liveness)."""

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self._sequence = 0

    @property
    def pid(self) -> int:
        return self.process.pid

    def wait_ready(self, timeout: float = START_TIMEOUT_S) -> None:
        """Block until the worker reports ready; raise on failure."""
        deadline = time.monotonic() + timeout
        while True:
            if self.conn.poll(_POLL_S):
                try:
                    message = self.conn.recv()
                except (EOFError, OSError) as exc:
                    raise ServerError(
                        f"serve worker {self.index} died during start-up"
                    ) from exc
                if message[0] == "ready":
                    return
                self.kill()
                raise ServerError(
                    f"serve worker {self.index} could not open the "
                    f"snapshot: {message[1]}"
                )
            if not self.process.is_alive():
                raise ServerError(
                    f"serve worker {self.index} died during start-up"
                )
            if time.monotonic() > deadline:
                self.kill()
                raise ServerError(
                    f"serve worker {self.index} did not become ready "
                    f"within {timeout:.0f}s"
                )

    def run(
        self,
        texts: Sequence[str],
        delay_ms: float | None = None,
        timeout: float | None = None,
    ):
        """Execute one batch; returns ``(entries, exec_ms, dump)``.

        Raises :class:`WorkerCrash` when the process dies or exceeds
        ``timeout`` (it is then killed — a wedged worker must not hold
        its pool slot forever), :class:`BatchFailed` on a clean
        whole-batch error.
        """
        self._sequence += 1
        sequence = self._sequence
        crashed = (
            f"worker {self.index} (pid {self.pid}) died mid-request"
        )
        try:
            self.conn.send(("exec", sequence, list(texts), delay_ms))
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrash(crashed) from exc
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self.conn.poll(_POLL_S):
                try:
                    reply = self.conn.recv()
                except (EOFError, OSError) as exc:
                    raise WorkerCrash(crashed) from exc
                if reply[1] != sequence:  # pragma: no cover - safety net
                    continue
                if reply[0] == "ok":
                    return reply[2], reply[3], reply[4]
                raise BatchFailed(reply[2])
            if not self.process.is_alive():
                raise WorkerCrash(crashed)
            if deadline is not None and time.monotonic() > deadline:
                self.kill()
                raise WorkerCrash(
                    f"worker {self.index} exceeded the {timeout:.0f}s "
                    "request timeout and was killed"
                )

    def stop(self) -> None:
        """Ask the worker to exit; escalate to kill if it lingers."""
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.kill()
        else:
            self.conn.close()

    def kill(self) -> None:
        try:
            self.process.kill()
            self.process.join(timeout=1.0)
        finally:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover
                pass


class WorkerPool:
    """A fixed-size pool of serve workers with crash replacement.

    ``acquire``/``release`` hand out idle workers to the server's
    dispatch threads; ``replace`` swaps a crashed worker for a freshly
    spawned one, so the pool's capacity self-heals. All parent-side
    state lives in thread-safe queues — the pool is driven by as many
    dispatch threads as it has workers.
    """

    def __init__(
        self,
        path,
        *,
        workers: int = 2,
        backend: str = "sqlite",
        batch_size: int | None = DEFAULT_BATCH_SIZE,
        engine: str = "auto",
        collect_metrics: bool = True,
        test_hooks: bool = False,
    ) -> None:
        import queue

        if workers < 1:
            raise ValueError("a worker pool needs at least one worker")
        self.path = str(path)
        self.backend = backend
        # Normalize once, before any worker forks: the protocol and
        # replay() hand sizes through verbatim, and an invalid size
        # must fail here — loudly — rather than inside N workers, while
        # 0 must mean the tuple path exactly as it does on the CLI.
        self.batch_size = _check_batch_size(batch_size)
        self.engine = engine
        self.collect_metrics = collect_metrics
        self.test_hooks = test_hooks
        self._context = fork_context()
        self._idle: "queue.Queue[Worker]" = queue.Queue()
        self._empty = queue.Empty
        self.workers: list[Worker] = []
        try:
            for index in range(workers):
                worker = self._spawn(index)
                self.workers.append(worker)
                self._idle.put(worker)
        except BaseException:
            self.shutdown()
            raise

    def _spawn(self, index: int) -> Worker:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=worker_main,
            args=(
                child_conn, self.path, self.backend, self.batch_size,
                self.engine, self.collect_metrics, self.test_hooks,
            ),
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = Worker(index, process, parent_conn)
        worker.wait_ready()
        return worker

    def acquire(self, timeout: float | None = None) -> Worker:
        """Next idle worker; raises :class:`ServerError` on timeout
        (bounded wait — a drained pool must surface, not hang)."""
        try:
            return self._idle.get(timeout=timeout)
        except self._empty:
            raise ServerError(
                "no serve worker became available within "
                f"{timeout:.0f}s (pool exhausted)"
            ) from None

    def release(self, worker: Worker) -> None:
        self._idle.put(worker)

    def replace(self, worker: Worker) -> None:
        """Replace a crashed worker with a fresh one (same slot)."""
        worker.kill()
        replacement = self._spawn(worker.index)
        self.workers[worker.index] = replacement
        self._idle.put(replacement)

    def pids(self) -> list[int]:
        """Live worker pids (test and observability hook)."""
        return [worker.pid for worker in self.workers]

    def shutdown(self) -> None:
        for worker in self.workers:
            worker.stop()
        self.workers.clear()
