"""Synchronous client for a serve-mode server.

One :class:`ServerClient` wraps one socket connection. The protocol is
strictly request/response per connection, so a client instance is NOT
thread-safe — give each client thread its own instance (that is also
what makes concurrent load hit the server's batching window: separate
connections submit genuinely concurrent requests).

>>> client = ServerClient(server.address, server.authkey)
>>> result = client.query("SELECT ?s WHERE { ?s <p> <o> }")
>>> result.answers_or_raise()
"""

from __future__ import annotations

import time
from multiprocessing.connection import Client as _connect
from typing import Sequence

from repro.server.protocol import ServeResult, ServerError


class ServerClient:
    """Blocking client over one ``multiprocessing.connection`` socket."""

    def __init__(self, address, authkey: bytes) -> None:
        try:
            self._conn = _connect(address, authkey=authkey)
        except (OSError, EOFError) as exc:
            raise ServerError(
                f"could not connect to server at {address!r}: {exc}"
            ) from exc
        self._request_id = 0
        self._closed = False

    def _roundtrip(self, message, timeout: float | None):
        try:
            self._conn.send(message)
            if timeout is not None and not self._conn.poll(timeout):
                raise ServerError(
                    f"no reply from server within {timeout:.0f}s"
                )
            reply = self._conn.recv()
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise ServerError(f"server connection lost: {exc}") from exc
        if reply[0] != "result" or reply[1] != message[1]:
            raise ServerError(f"protocol violation: unexpected {reply[0]!r}")
        return reply[2], reply[3]

    def query_batch(
        self,
        texts: Sequence[str],
        *,
        timeout: float | None = 60.0,
        delay_ms: float | None = None,
    ) -> list[ServeResult]:
        """Submit query texts as one request; results in input order.

        ``delay_ms`` is a test hook (honored only by servers configured
        with ``test_hooks=True``): the worker sleeps before executing,
        holding the request in flight so fault tests can kill it
        mid-request deterministically.
        """
        if self._closed:
            raise ServerError("client is closed")
        self._request_id += 1
        options = {}
        if delay_ms is not None:
            options["delay_ms"] = delay_ms
        started = time.perf_counter()
        payload, server_ms = self._roundtrip(
            ("query", self._request_id, list(texts), options), timeout
        )
        latency_ms = (time.perf_counter() - started) * 1000.0
        results = []
        for entry in payload:
            if entry[0] == "ok":
                results.append(
                    ServeResult(entry[1], None, latency_ms, server_ms)
                )
            else:
                results.append(
                    ServeResult(None, entry[1], latency_ms, server_ms)
                )
        return results

    def query(self, text: str, **kwargs) -> ServeResult:
        """Submit one query text; see :meth:`query_batch`."""
        return self.query_batch([text], **kwargs)[0]

    def metrics(self, *, timeout: float | None = 60.0) -> dict:
        """The server's merged metrics registry, in mergeable dump form."""
        self._request_id += 1
        payload, _ = self._roundtrip(
            ("metrics", self._request_id), timeout
        )
        return payload

    def info(self, *, timeout: float | None = 60.0) -> dict:
        """Server configuration and live worker pids."""
        self._request_id += 1
        payload, _ = self._roundtrip(("info", self._request_id), timeout)
        return payload

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._conn.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
