"""Wire protocol and result types of server mode.

Everything crossing a process boundary — client socket or worker pipe —
is a plain picklable tuple whose first element is a string tag, so the
protocol survives pickling across forked *and* unrelated processes
(clients connect over a ``multiprocessing.connection`` socket and need
share no ancestry with the server).

Client → server messages::

    ("query",   request_id, [query_text, ...], options_dict)
    ("metrics", request_id)          # merged registry dump
    ("info",    request_id)          # server configuration + counters

Server → client::

    ("result", request_id, payload, server_ms)

where, for a query request, ``payload`` is one entry per submitted
text, in submission order: ``("ok", answers)`` with the decoded answer
set, or ``("error", message)``. ``server_ms`` is the server-side
latency from intake to reply.

Parent → worker (pipe)::

    ("exec", sequence, [query_text, ...], delay_ms)
    ("stop",)

Worker → parent::

    ("ready", pid) | ("fatal", message)          # start-up handshake
    ("ok", sequence, entries, exec_ms, metrics_dump | None)
    ("error", sequence, message)                 # whole-batch failure
"""

from __future__ import annotations

from dataclasses import dataclass


class ServerError(RuntimeError):
    """A request failed cleanly: the server answered with an error (or
    could not be reached) instead of an answer set."""


@dataclass(frozen=True, slots=True)
class ServeResult:
    """One served query's outcome, as the client API returns it.

    ``answers`` is the decoded answer set (exactly what
    :func:`repro.engine.run_query` returns) when ``ok``; ``error``
    carries the server's message otherwise. ``latency_ms`` is measured
    by the client around the whole round trip; ``server_ms`` is the
    server-side intake-to-reply latency of the carrying request.
    """

    answers: frozenset | set | None
    error: str | None
    latency_ms: float
    server_ms: float

    @property
    def ok(self) -> bool:
        return self.error is None

    def answers_or_raise(self) -> set:
        """The answer set, or a :class:`ServerError` on a failed query."""
        if self.error is not None:
            raise ServerError(self.error)
        return self.answers
