"""repro — a reproduction of "View Selection in Semantic Web Databases"
(Goasdoué, Karanasos, Leblay, Manolescu; PVLDB 5(2), 2011).

The library selects a set of materialized views over an RDF database
such that every workload query can be answered from the views alone,
minimizing a combination of query-evaluation, storage and maintenance
costs — with full support for the implicit triples entailed by an RDF
Schema, via saturation, pre-reformulation, or the paper's
post-reformulation technique.

Quick start::

    from repro import TripleStore, Triple, URI, parse_query, ViewSelector

    store = TripleStore()
    store.add(Triple(URI("ex:mona"), URI("ex:paintedBy"), URI("ex:leonardo")))
    q = parse_query("q(X) :- t(X, <ex:paintedBy>, <ex:leonardo>)")
    recommendation = ViewSelector(store).recommend([q])
    extents = recommendation.materialize()
    print(recommendation.answer("q", extents))
"""

from repro.storage import (
    BACKENDS,
    MemoryBackend,
    SqliteBackend,
    StorageBackend,
)
from repro.rdf import (
    BlankNode,
    Dictionary,
    Literal,
    RDFSchema,
    SchemaKind,
    SchemaStatement,
    Triple,
    TripleStore,
    URI,
    parse_ntriples,
    saturate,
    serialize_ntriples,
    vocabulary,
)
from repro.query import (
    Atom,
    ConjunctiveQuery,
    UnionQuery,
    Variable,
    evaluate,
    evaluate_union,
    parse_queries,
    parse_query,
    parse_sparql_bgp,
)
from repro.reformulation import reformulate
from repro.stats import (
    CardinalityEstimator,
    CatalogStatistics,
    StatisticsCatalog,
)
from repro.selection import (
    CostDelta,
    CostModel,
    CostWeights,
    Recommendation,
    SearchBudget,
    SearchStrategy,
    State,
    StoreStatistics,
    ReformulationAwareStatistics,
    TransitionEnumerator,
    ViewSelector,
    dfs_search,
    greedy_stratified_search,
    initial_state,
    materialize_views,
    run_search,
)

__version__ = "1.0.0"

__all__ = [
    "BACKENDS",
    "MemoryBackend",
    "SqliteBackend",
    "StorageBackend",
    "BlankNode",
    "Dictionary",
    "Literal",
    "RDFSchema",
    "SchemaKind",
    "SchemaStatement",
    "Triple",
    "TripleStore",
    "URI",
    "parse_ntriples",
    "saturate",
    "serialize_ntriples",
    "vocabulary",
    "Atom",
    "ConjunctiveQuery",
    "UnionQuery",
    "Variable",
    "evaluate",
    "evaluate_union",
    "parse_queries",
    "parse_query",
    "parse_sparql_bgp",
    "reformulate",
    "CardinalityEstimator",
    "CatalogStatistics",
    "StatisticsCatalog",
    "CostDelta",
    "CostModel",
    "CostWeights",
    "Recommendation",
    "SearchBudget",
    "SearchStrategy",
    "run_search",
    "State",
    "StoreStatistics",
    "ReformulationAwareStatistics",
    "TransitionEnumerator",
    "ViewSelector",
    "dfs_search",
    "greedy_stratified_search",
    "initial_state",
    "materialize_views",
]
