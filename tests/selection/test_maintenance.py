"""Unit tests for incremental view maintenance."""

import pytest

from repro.query.evaluation import evaluate
from repro.query.parser import parse_query
from repro.rdf.entailment import saturate
from repro.rdf.store import TripleStore
from repro.rdf.triples import Triple
from repro.selection.maintenance import MaterializedViewSet
from repro.selection.state import initial_state

from tests.conftest import ex


@pytest.fixture()
def fresh_store(museum_store):
    return museum_store.copy()


@pytest.fixture()
def workload():
    return [
        parse_query("q1(X, Y) :- t(X, hasPainted, Y)"),
        parse_query(
            "q2(X, Z) :- t(X, hasPainted, starryNight), t(X, isParentOf, Y), "
            "t(Y, hasPainted, Z)"
        ),
    ]


def check_consistency(maintained, state, store, workload):
    """Maintained extents and answers must equal full re-materialization."""
    for view in state.views:
        assert maintained.extent(view.name) == evaluate(view, store), view.name
    for query in workload:
        assert maintained.answer(query.name) == evaluate(query, store)


class TestInsertion:
    def test_insert_extends_single_atom_view(self, fresh_store, workload):
        state = initial_state(workload)
        maintained = MaterializedViewSet(state, fresh_store)
        added = maintained.insert(
            Triple(ex("monet"), ex("hasPainted"), ex("waterLilies"))
        )
        assert sum(added.values()) >= 1
        check_consistency(maintained, state, fresh_store, workload)

    def test_insert_completes_join_view(self, fresh_store, workload):
        state = initial_state(workload)
        maintained = MaterializedViewSet(state, fresh_store)
        before = maintained.answer("q2")
        # vincentW gains a second painting: a new q2 answer appears.
        maintained.insert(Triple(ex("vincentW"), ex("hasPainted"), ex("irises")))
        after = maintained.answer("q2")
        assert (ex("vanGogh"), ex("irises")) in after - before
        check_consistency(maintained, state, fresh_store, workload)

    def test_duplicate_insert_is_noop(self, fresh_store, workload):
        state = initial_state(workload)
        maintained = MaterializedViewSet(state, fresh_store)
        existing = Triple(ex("vanGogh"), ex("hasPainted"), ex("starryNight"))
        assert maintained.insert(existing) == {v.name: 0 for v in state.views}

    def test_irrelevant_insert_changes_nothing(self, fresh_store, workload):
        state = initial_state(workload)
        maintained = MaterializedViewSet(state, fresh_store)
        added = maintained.insert(Triple(ex("a"), ex("unrelated"), ex("b")))
        assert sum(added.values()) == 0
        check_consistency(maintained, state, fresh_store, workload)


class TestDeletion:
    def test_remove_drops_rows(self, fresh_store, workload):
        state = initial_state(workload)
        maintained = MaterializedViewSet(state, fresh_store)
        removed = maintained.remove(
            Triple(ex("vanGogh"), ex("hasPainted"), ex("starryNight"))
        )
        assert sum(removed.values()) >= 1
        check_consistency(maintained, state, fresh_store, workload)
        assert maintained.answer("q2") == set()

    def test_remove_keeps_alternatively_derived_rows(self):
        # Two derivations for the same projected row: removing one
        # derivation must keep the row.
        store = TripleStore()
        store.add(Triple(ex("a"), ex("p"), ex("b1")))
        store.add(Triple(ex("a"), ex("p"), ex("b2")))
        query = parse_query("q(X) :- t(X, p, Y)")
        state = initial_state([query])
        maintained = MaterializedViewSet(state, store)
        maintained.remove(Triple(ex("a"), ex("p"), ex("b1")))
        assert maintained.answer("q") == {(ex("a"),)}

    def test_remove_absent_triple_is_noop(self, fresh_store, workload):
        state = initial_state(workload)
        maintained = MaterializedViewSet(state, fresh_store)
        removed = maintained.remove(Triple(ex("ghost"), ex("hasPainted"), ex("x")))
        assert sum(removed.values()) == 0


class TestEntailmentAwareMaintenance:
    def test_insert_propagates_implicit_rows(self, museum_store, museum_schema):
        store = museum_store.copy()
        query = parse_query("q(X) :- t(X, rdf:type, picture)")
        state = initial_state([query])
        maintained = MaterializedViewSet(state, store, schema=museum_schema)
        before = maintained.answer("q")
        # A new hasPainted assertion entails its object is a picture
        # (range typing + subclassing), with no explicit type triple.
        maintained.insert(Triple(ex("monet"), ex("hasPainted"), ex("waterLilies")))
        after = maintained.answer("q")
        assert (ex("waterLilies"),) in after - before
        # Cross-check against saturation of the updated store.
        saturated = saturate(store, museum_schema)
        assert after == evaluate(query, saturated)

    def test_remove_retracts_implicit_rows(self, museum_store, museum_schema):
        store = museum_store.copy()
        query = parse_query("q(X) :- t(X, rdf:type, picture)")
        state = initial_state([query])
        maintained = MaterializedViewSet(state, store, schema=museum_schema)
        maintained.insert(Triple(ex("monet"), ex("hasPainted"), ex("waterLilies")))
        maintained.remove(Triple(ex("monet"), ex("hasPainted"), ex("waterLilies")))
        saturated = saturate(store, museum_schema)
        assert maintained.answer("q") == evaluate(query, saturated)


class TestAgainstRematerialization:
    def test_random_update_sequence(self, barton_store, workload):
        import random

        store = TripleStore()
        # A slice of the museum domain plus noise.
        rng = random.Random(5)
        triples = sorted(barton_store, key=lambda t: t.n3())[:300]
        store.add_all(triples)
        query = parse_query("q(X, P, Y) :- t(X, P, Y)")
        state = initial_state([query])
        maintained = MaterializedViewSet(state, store)
        pool = triples + [
            Triple(ex(f"s{i}"), ex(f"p{i % 3}"), ex(f"o{i}")) for i in range(20)
        ]
        for _ in range(60):
            victim = pool[rng.randrange(len(pool))]
            if rng.random() < 0.5:
                maintained.insert(victim)
            else:
                maintained.remove(victim)
        assert maintained.extent(state.views[0].name) == evaluate(
            state.views[0], store
        )
