"""Unit tests for states, rewritings and initial-state construction."""

import pytest

from repro.query.algebra import Scan
from repro.query.cq import Atom, ConjunctiveQuery, UnionQuery, Variable
from repro.query.parser import parse_query
from repro.selection.state import (
    RewritingDisjunct,
    State,
    ViewNamer,
    initial_state,
    initial_state_from_unions,
    normalize_view,
)
from repro.rdf.terms import URI

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
P, C = URI("http://p"), URI("http://c")


class TestViewNamer:
    def test_names_are_unique(self):
        namer = ViewNamer()
        assert len({namer.fresh() for _ in range(50)}) == 50

    def test_prefix(self):
        assert ViewNamer("w").fresh().startswith("w")


class TestNormalizeView:
    def test_plain_head_needs_no_template(self):
        query = parse_query("q(X, Y) :- t(X, p, Y)")
        view, template = normalize_view(query, "v0")
        assert view.head == query.head
        assert template is None

    def test_constant_head_gets_template(self):
        query = ConjunctiveQuery((X, C), (Atom(X, P, C),), name="q")
        view, template = normalize_view(query, "v0")
        assert view.head == (X,)
        assert template == (X, C)

    def test_duplicate_head_variable_gets_template(self):
        query = ConjunctiveQuery((X, X), (Atom(X, P, Y),), name="q")
        view, template = normalize_view(query, "v0")
        assert view.head == (X,)
        assert template == (X, X)


class TestInitialState:
    def test_one_view_per_query(self):
        queries = [
            parse_query("q1(X) :- t(X, p, c)"),
            parse_query("q2(X, Y) :- t(X, p, Y), t(Y, q, d)"),
        ]
        state = initial_state(queries)
        assert len(state.views) == 2
        assert set(state.rewritings) == {"q1", "q2"}
        for rewriting in state.rewritings.values():
            assert len(rewriting) == 1
            assert isinstance(rewriting[0].plan, Scan)

    def test_duplicate_query_names_rejected(self):
        queries = [parse_query("q(X) :- t(X, p, c)")] * 2
        with pytest.raises(ValueError):
            initial_state(queries)

    def test_key_identifies_view_sets_up_to_renaming(self):
        q1 = parse_query("q1(X) :- t(X, p, c)")
        q2 = parse_query("q1(W) :- t(W, p, c)")  # renamed variable
        state1 = initial_state([q1])
        state2 = initial_state([q2.with_name("q1")])
        assert state1.key == state2.key

    def test_key_distinguishes_different_views(self):
        state1 = initial_state([parse_query("q1(X) :- t(X, p, c)")])
        state2 = initial_state([parse_query("q1(X) :- t(X, p, d)")])
        assert state1.key != state2.key


class TestStateValidation:
    def test_views_must_be_referenced(self):
        view = parse_query("q(X) :- t(X, p, c)").with_name("v0")
        orphan = parse_query("q(X) :- t(X, q, c)").with_name("v1")
        scan = Scan("v0", ("X",))
        with pytest.raises(ValueError, match="participate in no rewriting"):
            State((view, orphan), {"q": (RewritingDisjunct(scan),)})

    def test_rewriting_must_reference_known_views(self):
        view = parse_query("q(X) :- t(X, p, c)").with_name("v0")
        scan = Scan("ghost", ("X",))
        with pytest.raises(ValueError, match="unknown views"):
            State((view,), {"q": (RewritingDisjunct(scan),)})

    def test_duplicate_view_names_rejected(self):
        view = parse_query("q(X) :- t(X, p, c)").with_name("v0")
        scan = Scan("v0", ("X",))
        with pytest.raises(ValueError, match="duplicate view names"):
            State((view, view), {"q": (RewritingDisjunct(scan),)})

    def test_constant_head_views_rejected(self):
        bad = ConjunctiveQuery((X, C), (Atom(X, P, C),), name="v0")
        scan = Scan("v0", ("X",))
        with pytest.raises(ValueError, match="variable-only"):
            State((bad,), {"q": (RewritingDisjunct(scan),)})

    def test_view_lookup(self):
        state = initial_state([parse_query("q(X) :- t(X, p, c)")])
        name = state.views[0].name
        assert state.view(name) is state.views[0]
        with pytest.raises(KeyError):
            state.view("nope")


class TestUnionInitialState:
    def test_one_view_per_disjunct(self):
        d1 = parse_query("q1(X) :- t(X, rdf:type, picture)")
        d2 = parse_query("q1(X) :- t(X, rdf:type, painting)")
        union = UnionQuery((d1, d2), name="q1")
        state = initial_state_from_unions([union])
        assert len(state.views) == 2
        assert len(state.rewritings["q1"]) == 2

    def test_constant_bound_disjunct_head(self):
        d1 = parse_query("q1(X, Y) :- t(X, Y, c)")
        d2 = ConjunctiveQuery((X, P), (Atom(X, P, C),), name="q1")
        union = UnionQuery((d1, d2), name="q1")
        state = initial_state_from_unions([union])
        # The second disjunct's view has a variable-only head + template.
        disjunct = state.rewritings["q1"][1]
        assert disjunct.head_template == (X, P)


class TestRewritingDisjunct:
    def test_answer_rows_without_template(self):
        disjunct = RewritingDisjunct(Scan("v", ("X", "Y")))
        assert disjunct.answer_rows([(1, 2)]) == [(1, 2)]

    def test_answer_rows_with_template(self):
        disjunct = RewritingDisjunct(Scan("v", ("X",)), head_template=(X, C, X))
        assert disjunct.answer_rows([(P,)]) == [(P, C, P)]


def test_total_atoms(q_painters):
    state = initial_state([q_painters])
    assert state.total_atoms() == 3


def test_describe_contains_views_and_rewritings(q_painters):
    state = initial_state([q_painters])
    text = state.describe()
    assert "views:" in text and "rewritings:" in text and "q1" in text
