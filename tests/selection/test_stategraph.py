"""Unit tests for the state graph of Definition 3.1."""

from repro.query.parser import parse_query
from repro.selection.state import initial_state
from repro.selection.stategraph import StateGraph


def test_nodes_one_per_atom(q_painters):
    graph = StateGraph(initial_state([q_painters]))
    assert len(graph.nodes) == 3


def test_join_edges_of_running_example(q_painters):
    graph = StateGraph(initial_state([q_painters]))
    # q1 joins: X between atoms 0-1 (s=s), Y between atoms 1-2 (o=s).
    labels = {str(edge) for edge in graph.join_edges}
    view = graph.nodes[0].view
    assert f"{view}:{view}.n0.s={view}.n1.s" in labels
    assert f"{view}:{view}.n1.o={view}.n2.s" in labels
    assert len(graph.join_edges) == 2


def test_selection_edges_one_per_constant(q_painters):
    graph = StateGraph(initial_state([q_painters]))
    # 3 property constants + starryNight.
    assert len(graph.selection_edges) == 4


def test_components_match_views():
    queries = [
        parse_query("q1(X) :- t(X, p, c)"),
        parse_query("q2(X, Z) :- t(X, p, Y), t(Y, q, Z)"),
    ]
    graph = StateGraph(initial_state(queries))
    components = graph.connected_components()
    assert sorted(len(c) for c in components) == [1, 2]


def test_view_component_lookup(q_painters):
    state = initial_state([q_painters])
    graph = StateGraph(state)
    assert len(graph.view_component(state.views[0].name)) == 3


def test_describe_mentions_edges(q_painters):
    graph = StateGraph(initial_state([q_painters]))
    text = graph.describe()
    assert "join edge" in text and "selection edge" in text


def test_clique_star_query():
    # Star queries produce clique graphs (Section 6.2).
    query = parse_query("q(X) :- t(X, p, c), t(X, q, d), t(X, r, e), t(X, s, f)")
    graph = StateGraph(initial_state([query]))
    # 4 atoms pairwise joined on X: C(4,2) = 6 join edges.
    assert len(graph.join_edges) == 6
