"""Unit tests for workload partitioning (the Section 8 extension)."""

import pytest

from repro.query.evaluation import evaluate
from repro.query.parser import parse_query
from repro.selection.costs import CostModel
from repro.selection.materialize import answer_query, materialize_views
from repro.selection.partition import (
    merge_states,
    partition_workload,
    partitioned_search,
)
from repro.selection.search import SearchBudget, dfs_search, descent_search
from repro.selection.state import initial_state
from repro.selection.statistics import StoreStatistics


@pytest.fixture()
def disjoint_workload():
    """Two query groups with no shared vocabulary."""
    return [
        parse_query("q1(X) :- t(X, hasPainted, starryNight)"),
        parse_query("q2(X, Y) :- t(X, hasPainted, Y)"),
        parse_query("q3(A) :- t(A, isLocatedIn, moma)"),
        parse_query("q4(A, B) :- t(A, isLocatedIn, B)"),
    ]


class TestPartitionWorkload:
    def test_groups_by_shared_constants(self, disjoint_workload):
        groups = partition_workload(disjoint_workload)
        assert len(groups) == 2
        names = sorted(tuple(sorted(q.name for q in g)) for g in groups)
        assert names == [("q1", "q2"), ("q3", "q4")]

    def test_fully_connected_workload_is_one_group(self):
        queries = [
            parse_query("q1(X) :- t(X, p, c)"),
            parse_query("q2(X) :- t(X, p, d)"),
            parse_query("q3(X) :- t(X, q, d)"),
        ]
        assert len(partition_workload(queries)) == 1

    def test_threshold_splits_weak_links(self):
        queries = [
            parse_query("q1(X) :- t(X, p, c1), t(X, r1, d1)"),
            parse_query("q2(X) :- t(X, p, c2), t(X, r2, d2)"),  # shares only p
        ]
        assert len(partition_workload(queries, min_shared_constants=1)) == 1
        assert len(partition_workload(queries, min_shared_constants=2)) == 2

    def test_singleton_queries(self):
        queries = [parse_query("q1(X) :- t(X, p, c)")]
        assert partition_workload(queries) == [queries]


class TestMergeStates:
    def test_merge_disjoint(self, disjoint_workload):
        state_a = initial_state(disjoint_workload[:2])
        state_b = initial_state(disjoint_workload[2:])
        # Rename views apart (initial_state numbering collides).
        from repro.selection.state import ViewNamer

        namer = ViewNamer()
        state_a = initial_state(disjoint_workload[:2], namer)
        state_b = initial_state(disjoint_workload[2:], namer)
        merged = merge_states([state_a, state_b])
        assert len(merged.views) == 4
        assert set(merged.rewritings) == {"q1", "q2", "q3", "q4"}

    def test_overlapping_coverage_rejected(self, disjoint_workload):
        from repro.selection.state import ViewNamer

        namer = ViewNamer()
        state_a = initial_state(disjoint_workload[:2], namer)
        state_b = initial_state(disjoint_workload[:2], namer)
        with pytest.raises(ValueError):
            merge_states([state_a, state_b])


class TestPartitionedSearch:
    @pytest.mark.parametrize("strategy", [dfs_search, descent_search])
    def test_covers_all_queries_and_answers(
        self, disjoint_workload, museum_store, strategy
    ):
        model = CostModel(StoreStatistics(museum_store))
        merged, results = partitioned_search(
            disjoint_workload,
            model,
            strategy=strategy,
            budget=SearchBudget(time_limit=4.0),
        )
        assert len(results) == 2
        assert set(merged.rewritings) == {q.name for q in disjoint_workload}
        extents = materialize_views(merged, museum_store)
        for query in disjoint_workload:
            assert answer_query(merged, query.name, extents) == evaluate(
                query, museum_store
            )

    def test_merged_cost_is_sum_of_groups(self, disjoint_workload, museum_store):
        model = CostModel(StoreStatistics(museum_store))
        merged, results = partitioned_search(
            disjoint_workload, model, budget=SearchBudget(time_limit=4.0)
        )
        assert model.total_cost(merged) == pytest.approx(
            sum(result.best_cost for result in results)
        )

    def test_empty_workload_rejected(self, museum_store):
        model = CostModel(StoreStatistics(museum_store))
        with pytest.raises(ValueError):
            partitioned_search([], model)

    def test_matches_joint_search_on_disjoint_groups(
        self, disjoint_workload, museum_store
    ):
        """With disjoint vocabulary, partitioned search finds a state at
        least as good as the joint search under the same total budget."""
        model = CostModel(StoreStatistics(museum_store))
        merged, _ = partitioned_search(
            disjoint_workload, model, budget=SearchBudget(time_limit=4.0)
        )
        from repro.selection.state import ViewNamer
        from repro.selection.transitions import TransitionEnumerator

        namer = ViewNamer()
        joint = dfs_search(
            initial_state(disjoint_workload, namer),
            model,
            TransitionEnumerator(namer),
            SearchBudget(time_limit=4.0),
        )
        assert model.total_cost(merged) <= joint.best_cost * 1.001
