"""Unit tests for the relational competitor strategies (Section 6.1)."""

import pytest

from repro.query.evaluation import evaluate
from repro.query.parser import parse_query
from repro.selection.competitors import (
    MemoryBudgetExceeded,
    greedy_relational_search,
    heuristic_relational_search,
    pruning_relational_search,
)
from repro.selection.costs import CostModel
from repro.selection.materialize import answer_query, materialize_views
from repro.selection.search import SearchBudget
from repro.selection.statistics import StoreStatistics

ALL_COMPETITORS = [
    pruning_relational_search,
    greedy_relational_search,
    heuristic_relational_search,
]


@pytest.fixture()
def small_workload():
    return [
        parse_query("q1(X) :- t(X, hasPainted, starryNight)"),
        parse_query("q2(X, Y) :- t(X, hasPainted, Y), t(X, rdf:type, painter)"),
    ]


@pytest.mark.parametrize("search", ALL_COMPETITORS)
class TestOnSmallWorkloads:
    def test_produces_full_candidate_view_set(self, search, small_workload, museum_store):
        model = CostModel(StoreStatistics(museum_store))
        result = search(
            small_workload, model, budget=SearchBudget(time_limit=10.0, max_states=50_000)
        )
        assert set(result.best_state.rewritings) == {"q1", "q2"}
        assert result.best_cost <= result.initial_cost

    def test_rewritings_are_sound(self, search, small_workload, museum_store):
        model = CostModel(StoreStatistics(museum_store))
        result = search(
            small_workload, model, budget=SearchBudget(time_limit=10.0, max_states=50_000)
        )
        extents = materialize_views(result.best_state, museum_store)
        for query in small_workload:
            assert answer_query(result.best_state, query.name, extents) == evaluate(
                query, museum_store
            )


@pytest.mark.parametrize("search", ALL_COMPETITORS)
def test_memory_budget_failure_mode(search, museum_store):
    """The paper's headline result for [21]: larger queries exhaust memory
    before any full candidate view set is produced."""
    model = CostModel(StoreStatistics(museum_store))
    big = [
        parse_query(
            "q1(X0) :- t(X0, p0, c0), t(X0, p1, c1), t(X0, p2, c2), "
            "t(X0, p3, c3), t(X0, p4, c4), t(X0, p5, c5), t(X0, p6, c6)"
        ),
        parse_query(
            "q2(Y0) :- t(Y0, p0, d0), t(Y0, p1, d1), t(Y0, p2, d2), "
            "t(Y0, p3, d3), t(Y0, p4, d4), t(Y0, p5, d5), t(Y0, p6, d6)"
        ),
    ]
    with pytest.raises(MemoryBudgetExceeded):
        search(big, model, budget=SearchBudget(max_states=2_000))


def test_greedy_keeps_single_combination(small_workload, museum_store):
    model = CostModel(StoreStatistics(museum_store))
    greedy = greedy_relational_search(
        small_workload, model, budget=SearchBudget(time_limit=10.0, max_states=50_000)
    )
    pruning = pruning_relational_search(
        small_workload, model, budget=SearchBudget(time_limit=10.0, max_states=50_000)
    )
    # Greedy creates no more states than Pruning on the same input.
    assert greedy.stats.created <= pruning.stats.created
