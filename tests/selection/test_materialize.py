"""Unit tests for view materialization and view-based query answering."""

import pytest

from repro.query.evaluation import evaluate
from repro.query.parser import parse_query
from repro.rdf.entailment import saturate
from repro.selection.materialize import (
    answer_all,
    answer_query,
    extent_size,
    materialize_views,
)
from repro.selection.state import ViewNamer, initial_state
from repro.selection.transitions import TransitionEnumerator


def test_initial_state_extents_are_query_answers(museum_store, q_painters):
    state = initial_state([q_painters])
    extents = materialize_views(state, museum_store)
    rows = extents[state.views[0].name]
    assert set(rows) == evaluate(q_painters, museum_store)


def test_extents_are_deterministically_ordered(museum_store):
    query = parse_query("q(X, Y) :- t(X, hasPainted, Y)")
    state = initial_state([query])
    first = materialize_views(state, museum_store)
    second = materialize_views(state, museum_store)
    assert first == second


def test_answer_unknown_query_raises(museum_store, q_painters):
    state = initial_state([q_painters])
    extents = materialize_views(state, museum_store)
    with pytest.raises(KeyError):
        answer_query(state, "nope", extents)


def test_answer_all(museum_store):
    queries = [
        parse_query("q1(X) :- t(X, hasPainted, starryNight)"),
        parse_query("q2(X) :- t(X, rdf:type, painter)"),
    ]
    state = initial_state(queries)
    extents = materialize_views(state, museum_store)
    answers = answer_all(state, extents)
    assert set(answers) == {"q1", "q2"}
    for query in queries:
        assert answers[query.name] == evaluate(query, museum_store)


def test_extent_size(museum_store, q_painters):
    state = initial_state([q_painters])
    extents = materialize_views(state, museum_store)
    assert extent_size(extents) == len(extents[state.views[0].name])


class TestPostReformulationMaterialization:
    def test_reformulated_views_equal_saturated_views(
        self, museum_store, museum_schema
    ):
        """Theorem 4.2 applied to views: materializing reformulated views
        on the plain store == plain views on the saturated store."""
        query = parse_query("q(X, Y) :- t(X, rdf:type, picture), t(X, isLocatedIn, Y)")
        state = initial_state([query])
        reformulated = materialize_views(state, museum_store, museum_schema)
        saturated = materialize_views(state, saturate(museum_store, museum_schema))
        assert reformulated == saturated

    def test_implicit_answers_are_found(self, museum_store, museum_schema):
        # No explicit picture instances exist; only entailed ones.
        query = parse_query("q(X) :- t(X, rdf:type, picture)")
        state = initial_state([query])
        plain = materialize_views(state, museum_store)
        aware = materialize_views(state, museum_store, museum_schema)
        name = state.views[0].name
        assert plain[name] == []
        assert len(aware[name]) > 0


def test_rewriting_after_transitions_still_answers(museum_store, q_painters):
    namer = ViewNamer()
    enum = TransitionEnumerator(namer, vb_mode="overlapping")
    state = initial_state([q_painters], namer)
    # Apply a little pipeline: SC then JC then VB on what remains.
    state = enum.apply_sc(state, state.views[0].name, 0, "o").result
    state = enum.apply_jc(state, state.views[0].name, 1, "o").result
    extents = materialize_views(state, museum_store)
    assert answer_query(state, "q1", extents) == evaluate(q_painters, museum_store)
