"""Unit tests for the descent strategy and the calibration helpers added
for the large-workload experiments."""

import pytest

from repro.query.evaluation import evaluate
from repro.query.parser import parse_query
from repro.selection.costs import CostModel, calibrate_maintenance_weight
from repro.selection.materialize import answer_query, materialize_views
from repro.selection.search import SearchBudget, descent_search
from repro.selection.state import ViewNamer, initial_state
from repro.selection.statistics import StoreStatistics, ZipfStatistics
from repro.selection.transitions import TransitionEnumerator, TransitionKind


@pytest.fixture()
def setup(museum_store):
    queries = [
        parse_query("q1(X) :- t(X, hasPainted, starryNight)"),
        parse_query(
            "q2(X, Y) :- t(X, hasPainted, Y), t(X, rdf:type, painter), "
            "t(X, isParentOf, Z)"
        ),
    ]
    namer = ViewNamer()
    enumerator = TransitionEnumerator(namer)
    model = CostModel(StoreStatistics(museum_store))
    state = initial_state(queries, namer)
    return queries, state, enumerator, model


class TestDescentSearch:
    def test_never_worse_than_initial(self, setup):
        queries, state, enumerator, model = setup
        result = descent_search(state, model, enumerator, SearchBudget(time_limit=3.0))
        assert result.best_cost <= result.initial_cost

    def test_rewritings_stay_sound(self, setup, museum_store):
        queries, state, enumerator, model = setup
        result = descent_search(state, model, enumerator, SearchBudget(time_limit=3.0))
        extents = materialize_views(result.best_state, museum_store)
        for query in queries:
            assert answer_query(result.best_state, query.name, extents) == evaluate(
                query, museum_store
            )

    def test_cost_history_strictly_decreasing(self, setup):
        queries, state, enumerator, model = setup
        result = descent_search(state, model, enumerator, SearchBudget(time_limit=3.0))
        costs = [cost for _, cost in result.cost_history]
        assert all(a > b for a, b in zip(costs, costs[1:]))

    def test_kind_restriction(self, setup):
        queries, state, enumerator, model = setup
        result = descent_search(
            state,
            model,
            enumerator,
            SearchBudget(time_limit=2.0),
            kinds=(TransitionKind.SC,),
        )
        # SC never improves the cost, so a pure-SC descent stays at S0
        # modulo fusions.
        assert result.best_cost <= result.initial_cost

    def test_scales_with_many_queries(self, museum_store):
        queries = [
            parse_query(f"q{i}(X) :- t(X, hasPainted, Y), t(X, p{i}, c{i})")
            for i in range(30)
        ]
        namer = ViewNamer()
        enumerator = TransitionEnumerator(namer)
        model = CostModel(ZipfStatistics(seed=3))
        state = initial_state(queries, namer)
        result = descent_search(state, model, enumerator, SearchBudget(time_limit=3.0))
        # The descent must at least examine candidates for every query's
        # view without timing out (S0 may legitimately be locally optimal).
        assert result.stats.created >= len(queries)
        assert result.best_cost <= result.initial_cost


class TestZipfStatistics:
    def test_deterministic(self):
        a, b = ZipfStatistics(seed=1), ZipfStatistics(seed=1)
        from repro.query.cq import Atom, Variable
        from repro.rdf.terms import URI

        atom = Atom(Variable("X"), URI("http://p"), Variable("Y"))
        assert a.atom_count(atom) == b.atom_count(atom)

    def test_skew_across_constants(self):
        from repro.query.cq import Atom, Variable
        from repro.rdf.terms import URI

        stats = ZipfStatistics(seed=1)
        counts = {
            stats.atom_count(Atom(Variable("X"), URI(f"http://p{i}"), Variable("Y")))
            for i in range(30)
        }
        assert max(counts) > min(counts) * 10

    def test_constants_reduce_counts(self):
        from repro.query.cq import Atom, Variable
        from repro.rdf.terms import URI

        stats = ZipfStatistics(seed=1)
        loose = stats.atom_count(Atom(Variable("X"), Variable("P"), Variable("Y")))
        bound = stats.atom_count(Atom(Variable("X"), URI("http://p"), Variable("Y")))
        assert bound < loose


class TestCalibration:
    def test_calibrated_vmc_is_comparable(self, museum_store, q_painters):
        statistics = StoreStatistics(museum_store)
        state = initial_state([q_painters])
        weights = calibrate_maintenance_weight(state, statistics, ratio=1.0)
        model = CostModel(statistics, weights)
        breakdown = model.cost(state)
        assert breakdown.vmc * weights.cm == pytest.approx(
            max(breakdown.vso, breakdown.rec), rel=1e-6
        )

    def test_preserves_other_weights(self, museum_store, q_painters):
        from repro.selection.costs import CostWeights

        statistics = StoreStatistics(museum_store)
        state = initial_state([q_painters])
        base = CostWeights(cs=3.0, cr=5.0, f=4.0)
        weights = calibrate_maintenance_weight(state, statistics, weights=base)
        assert (weights.cs, weights.cr, weights.f) == (3.0, 5.0, 4.0)
        assert weights.cm != base.cm
