"""Unit tests for the four transitions (Definitions 3.2–3.5).

Beyond structural checks, every transition is validated *semantically*:
materializing the new views and executing the new rewriting must yield
exactly the same answers as the original query on the test store.
"""

import pytest

from repro.query.evaluation import evaluate
from repro.query.parser import parse_query
from repro.selection.materialize import answer_query, materialize_views
from repro.selection.state import ViewNamer, initial_state
from repro.selection.transitions import TransitionEnumerator, TransitionKind


def check_rewriting_equivalence(state, queries, store):
    """Execute all rewritings over materialized views; compare to direct
    evaluation — the soundness contract of every transition."""
    extents = materialize_views(state, store)
    for query in queries:
        assert answer_query(state, query.name, extents) == evaluate(query, store), (
            f"rewriting of {query.name} is not equivalent\n{state.describe()}"
        )


@pytest.fixture()
def enum():
    return TransitionEnumerator(ViewNamer(), vb_mode="overlapping")


class TestSelectionCut:
    def test_constant_becomes_head_variable(self, q_painters, enum):
        state = initial_state([q_painters], enum.namer)
        view = state.views[0]
        transition = enum.apply_sc(state, view.name, 0, "o")
        new_view = transition.result.views[0]
        assert transition.kind is TransitionKind.SC
        assert len(new_view.head) == len(view.head) + 1
        assert len(new_view.constant_occurrences()) == len(view.constant_occurrences()) - 1

    def test_semantics_preserved(self, q_painters, museum_store, enum):
        state = initial_state([q_painters], enum.namer)
        view = state.views[0]
        for atom_index, attribute, _ in enum.sc_candidates(view):
            transition = enum.apply_sc(state, view.name, atom_index, attribute)
            check_rewriting_equivalence(transition.result, [q_painters], museum_store)

    def test_cut_on_variable_position_rejected(self, q_painters, enum):
        state = initial_state([q_painters], enum.namer)
        with pytest.raises(ValueError):
            enum.apply_sc(state, state.views[0].name, 0, "s")

    def test_candidates_enumerate_all_constants(self, q_painters, enum):
        # q1 has 3 property constants + 1 object constant.
        assert len(enum.sc_candidates(q_painters)) == 4

    def test_chained_cuts(self, q_painters, museum_store, enum):
        state = initial_state([q_painters], enum.namer)
        view_name = state.views[0].name
        state = enum.apply_sc(state, view_name, 0, "o").result
        view_name = state.views[0].name
        state = enum.apply_sc(state, view_name, 0, "p").result
        check_rewriting_equivalence(state, [q_painters], museum_store)


class TestJoinCut:
    def test_disconnecting_cut_splits_view(self, q_painters, enum):
        state = initial_state([q_painters], enum.namer)
        view = state.views[0]
        # Cutting Y at atom 1 (isParentOf object) separates atom 2's side?
        # Y links atoms 1 and 2 only; cutting its occurrence in atom 1
        # disconnects {0,1} from {2}.
        transition = enum.apply_jc(state, view.name, 1, "o")
        assert len(transition.result.views) == 2

    def test_non_disconnecting_cut_keeps_one_view(self, enum):
        # X occurs three times; cutting one occurrence keeps the rest joined.
        query = parse_query("q(X) :- t(X, p, Y), t(X, q, Z), t(X, r, W)")
        state = initial_state([query], enum.namer)
        transition = enum.apply_jc(state, state.views[0].name, 0, "s")
        assert len(transition.result.views) == 2  # star center: atom 0 detaches

    def test_triangle_cut_stays_connected(self, enum):
        query = parse_query("q(X) :- t(X, p, Y), t(Y, q, Z), t(Z, r, X)")
        state = initial_state([query], enum.namer)
        transition = enum.apply_jc(state, state.views[0].name, 0, "s")
        assert len(transition.result.views) == 1
        new_view = transition.result.views[0]
        assert len(new_view.head) == len(query.head) + 1  # X already in head, +fresh

    def test_semantics_preserved_all_cuts(self, q_painters, museum_store, enum):
        state = initial_state([q_painters], enum.namer)
        view = state.views[0]
        for atom_index, attribute in enum.jc_candidates(view):
            transition = enum.apply_jc(state, view.name, atom_index, attribute)
            check_rewriting_equivalence(transition.result, [q_painters], museum_store)

    def test_cut_on_constant_rejected(self, q_painters, enum):
        state = initial_state([q_painters], enum.namer)
        with pytest.raises(ValueError):
            enum.apply_jc(state, state.views[0].name, 0, "p")

    def test_cut_on_lone_variable_rejected(self, enum):
        query = parse_query("q(X) :- t(X, p, Y), t(X, q, Z)")
        state = initial_state([query], enum.namer)
        # Y occurs once: not a join variable.
        with pytest.raises(ValueError):
            enum.apply_jc(state, state.views[0].name, 0, "o")

    def test_candidates_only_join_occurrences(self, q_painters, enum):
        # Join variables of q1: X (atoms 0,1), Y (atoms 1,2); Z occurs once.
        candidates = enum.jc_candidates(q_painters)
        assert (0, "s") in candidates and (1, "s") in candidates
        assert (1, "o") in candidates and (2, "s") in candidates
        assert (2, "o") not in candidates
        assert len(candidates) == 4


class TestViewBreak:
    def test_two_atom_view_rejected(self, enum):
        query = parse_query("q(X, Z) :- t(X, p, Y), t(Y, q, Z)")
        state = initial_state([query], enum.namer)
        with pytest.raises(ValueError):
            enum.apply_vb(state, state.views[0].name, [0], [1])

    def test_disjoint_break(self, q_painters, museum_store, enum):
        state = initial_state([q_painters], enum.namer)
        transition = enum.apply_vb(state, state.views[0].name, [0, 1], [2])
        assert len(transition.result.views) == 2
        check_rewriting_equivalence(transition.result, [q_painters], museum_store)

    def test_overlapping_break_like_figure_1(self, q_painters, museum_store, enum):
        # Figure 1: Nv1 = {n1, n2}, Nv2 = {n2, n3}.
        state = initial_state([q_painters], enum.namer)
        transition = enum.apply_vb(state, state.views[0].name, [0, 1], [1, 2])
        v1, v2 = transition.result.views
        assert len(v1) == 2 and len(v2) == 2
        check_rewriting_equivalence(transition.result, [q_painters], museum_store)

    def test_included_parts_rejected(self, q_painters, enum):
        state = initial_state([q_painters], enum.namer)
        with pytest.raises(ValueError):
            enum.apply_vb(state, state.views[0].name, [0, 1, 2], [1])

    def test_non_covering_parts_rejected(self, q_painters, enum):
        state = initial_state([q_painters], enum.namer)
        with pytest.raises(ValueError):
            enum.apply_vb(state, state.views[0].name, [0], [1])

    def test_disconnected_part_rejected(self, q_painters, enum):
        # Atoms 0 and 2 of q1 share no variable.
        state = initial_state([q_painters], enum.namer)
        with pytest.raises(ValueError):
            enum.apply_vb(state, state.views[0].name, [0, 2], [1])

    def test_all_candidate_breaks_preserve_semantics(
        self, q_painters, museum_store, enum
    ):
        state = initial_state([q_painters], enum.namer)
        view = state.views[0]
        candidates = enum.vb_candidates(view)
        assert candidates, "expected at least one VB candidate"
        for part1, part2 in candidates:
            transition = enum.apply_vb(state, view.name, part1, part2)
            check_rewriting_equivalence(transition.result, [q_painters], museum_store)

    def test_disjoint_mode_yields_fewer_candidates(self, q_painters):
        disjoint = TransitionEnumerator(vb_mode="disjoint")
        overlapping = TransitionEnumerator(vb_mode="overlapping")
        assert len(disjoint.vb_candidates(q_painters)) <= len(
            overlapping.vb_candidates(q_painters)
        )


class TestViewFusion:
    def test_identical_views_fuse(self, museum_store, enum):
        q1 = parse_query("q1(X) :- t(X, hasPainted, Y)")
        q2 = parse_query("q2(Z) :- t(Z, hasPainted, W)")
        state = initial_state([q1, q2], enum.namer)
        pairs = enum.vf_candidates(state)
        assert len(pairs) == 1
        transition = enum.apply_vf(state, *pairs[0])
        assert len(transition.result.views) == 1
        check_rewriting_equivalence(transition.result, [q1, q2], museum_store)

    def test_fused_head_is_union(self, enum):
        q1 = parse_query("q1(X) :- t(X, hasPainted, Y)")
        q2 = parse_query("q2(W) :- t(Z, hasPainted, W)")  # projects the object
        state = initial_state([q1, q2], enum.namer)
        transition = enum.apply_vf(state, *enum.vf_candidates(state)[0])
        fused = transition.result.views[0]
        assert len(fused.head) == 2  # subject and object both exported

    def test_non_isomorphic_views_rejected(self, enum):
        q1 = parse_query("q1(X) :- t(X, hasPainted, Y)")
        q2 = parse_query("q2(X) :- t(X, isParentOf, Y)")
        state = initial_state([q1, q2], enum.namer)
        assert enum.vf_candidates(state) == []
        names = [v.name for v in state.views]
        with pytest.raises(ValueError):
            enum.apply_vf(state, *names)

    def test_fusion_after_cuts(self, museum_store, enum):
        # Two different selections over the same pattern: after SC both
        # relax to the same all-variable-object view and can fuse.
        q1 = parse_query("q1(X) :- t(X, hasPainted, starryNight)")
        q2 = parse_query("q2(X) :- t(X, hasPainted, babel)")
        state = initial_state([q1, q2], enum.namer)
        state = enum.apply_sc(state, state.views[0].name, 0, "o").result
        target = next(v for v in state.views if "q2" not in v.name and len(v.head) == 1)
        state = enum.apply_sc(state, target.name, 0, "o").result
        pairs = enum.vf_candidates(state)
        assert pairs
        fused = enum.apply_vf(state, *pairs[0]).result
        assert len(fused.views) == 1
        check_rewriting_equivalence(fused, [q1, q2], museum_store)


class TestEnumeration:
    def test_transitions_cover_all_kinds(self, q_painters, enum):
        q2 = parse_query("q2(A, B) :- t(A, hasPainted, B), t(A, hasPainted, C)")
        state = initial_state([q_painters, q2], enum.namer)
        kinds = {t.kind for t in enum.transitions(state)}
        assert TransitionKind.SC in kinds
        assert TransitionKind.JC in kinds
        assert TransitionKind.VB in kinds

    def test_transition_filter(self, q_painters, enum):
        state = initial_state([q_painters], enum.namer)
        only_sc = list(enum.transitions(state, [TransitionKind.SC]))
        assert only_sc and all(t.kind is TransitionKind.SC for t in only_sc)

    def test_every_enumerated_transition_is_sound(
        self, q_painters, museum_store, enum
    ):
        state = initial_state([q_painters], enum.namer)
        for transition in enum.transitions(state):
            check_rewriting_equivalence(transition.result, [q_painters], museum_store)
