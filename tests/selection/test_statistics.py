"""Unit tests for statistics providers (Sections 3.3 and 4.3)."""

from repro.query.cq import Atom, Variable
from repro.rdf.entailment import saturate
from repro.selection.statistics import (
    FixedStatistics,
    ReformulationAwareStatistics,
    StoreStatistics,
)

from tests.conftest import ex

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestStoreStatistics:
    def test_atom_count_is_exact(self, museum_store):
        stats = StoreStatistics(museum_store)
        assert stats.atom_count(Atom(X, ex("hasPainted"), Y)) == 6
        assert stats.atom_count(Atom(X, ex("hasPainted"), ex("starryNight"))) == 1
        assert stats.atom_count(Atom(X, Y, Z)) == len(museum_store)

    def test_unknown_constant_counts_zero(self, museum_store):
        stats = StoreStatistics(museum_store)
        assert stats.atom_count(Atom(X, ex("neverSeen"), Y)) == 0

    def test_caching_returns_same_values(self, museum_store):
        stats = StoreStatistics(museum_store)
        atom = Atom(X, ex("hasPainted"), Y)
        assert stats.atom_count(atom) == stats.atom_count(atom)

    def test_column_distincts_delegate_to_store(self, museum_store):
        stats = StoreStatistics(museum_store)
        for column in ("s", "p", "o"):
            assert stats.distinct_values(column) == museum_store.distinct_values(column)

    def test_totals(self, museum_store):
        stats = StoreStatistics(museum_store)
        assert stats.total_triples() == len(museum_store)
        assert stats.average_term_size() > 0


class TestReformulationAwareStatistics:
    def test_counts_match_saturated_store(self, museum_store, museum_schema):
        """The Section 4.3 claim: post-reformulation statistics equal the
        statistics of the saturated database."""
        saturated = StoreStatistics(saturate(museum_store, museum_schema))
        aware = ReformulationAwareStatistics(museum_store, museum_schema)
        atoms = [
            Atom(X, vocab_type(), ex("picture")),
            Atom(X, vocab_type(), ex("painting")),
            Atom(X, ex("isLocatedIn"), Y),
            Atom(X, ex("hasPainted"), Y),
            Atom(X, vocab_type(), Y),
            Atom(X, Y, Z),
        ]
        for atom in atoms:
            assert aware.atom_count(atom) == saturated.atom_count(atom), atom

    def test_implicit_triples_increase_counts(self, museum_store, museum_schema):
        plain = StoreStatistics(museum_store)
        aware = ReformulationAwareStatistics(museum_store, museum_schema)
        picture_atom = Atom(X, vocab_type(), ex("picture"))
        assert plain.atom_count(picture_atom) == 0  # only implicit
        assert aware.atom_count(picture_atom) > 0

    def test_cache_hit_path(self, museum_store, museum_schema):
        aware = ReformulationAwareStatistics(museum_store, museum_schema)
        atom = Atom(X, ex("isLocatedIn"), Y)
        assert aware.atom_count(atom) == aware.atom_count(atom)


class TestFixedStatistics:
    def test_more_constants_means_fewer_matches(self):
        stats = FixedStatistics(total=1000, selectivity=0.1)
        unconstrained = stats.atom_count(Atom(X, Y, Z))
        one = stats.atom_count(Atom(X, ex("p"), Z))
        two = stats.atom_count(Atom(X, ex("p"), ex("c")))
        assert unconstrained > one > two >= 1

    def test_configurable_distincts(self):
        stats = FixedStatistics(distinct={"s": 5, "p": 7, "o": 9})
        assert stats.distinct_values("p") == 7


def vocab_type():
    from repro.rdf.vocabulary import RDF_TYPE

    return RDF_TYPE
