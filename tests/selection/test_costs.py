"""Unit tests for the cost model (Section 3.3), including the paper's
claims about how each transition moves the cost."""

import pytest

from repro.query.parser import parse_query
from repro.selection.costs import CostModel, CostWeights
from repro.selection.state import ViewNamer, initial_state
from repro.selection.statistics import FixedStatistics, StoreStatistics
from repro.selection.transitions import TransitionEnumerator


@pytest.fixture()
def model(museum_store):
    return CostModel(StoreStatistics(museum_store))


@pytest.fixture()
def enum():
    return TransitionEnumerator(ViewNamer(), vb_mode="overlapping")


class TestCardinality:
    def test_single_atom_is_exact(self, model):
        query = parse_query("v(X, Y) :- t(X, hasPainted, Y)")
        assert model.view_cardinality(query) == pytest.approx(6.0)

    def test_join_reduces_product(self, model):
        join = parse_query("v(X, Z) :- t(X, hasPainted, Y), t(Y, rdf:type, Z)")
        left = parse_query("v1(X, Y) :- t(X, hasPainted, Y)")
        right = parse_query("v2(Y, Z) :- t(Y, rdf:type, Z)")
        product = model.view_cardinality(left) * model.view_cardinality(right)
        assert model.view_cardinality(join) < product

    def test_selection_shrinks_estimate(self, model):
        general = parse_query("v(X, Y) :- t(X, hasPainted, Y)")
        specific = parse_query("v(X) :- t(X, hasPainted, starryNight)")
        assert model.view_cardinality(specific) <= model.view_cardinality(general)

    def test_cache_consistency(self, model):
        query = parse_query("v(X, Y) :- t(X, hasPainted, Y)")
        assert model.view_cardinality(query) == model.view_cardinality(query)


class TestComponents:
    def test_initial_state_breakdown(self, model, q_painters):
        state = initial_state([q_painters])
        breakdown = model.cost(state)
        assert breakdown.vso > 0
        assert breakdown.rec > 0
        assert breakdown.vmc == pytest.approx(2.0 ** 3)
        assert breakdown.total == pytest.approx(
            breakdown.vso + breakdown.rec + 0.5 * breakdown.vmc
        )

    def test_weights_scale_components(self, museum_store, q_painters):
        state = initial_state([q_painters])
        light = CostModel(StoreStatistics(museum_store), CostWeights(cs=0.0, cm=0.0))
        heavy = CostModel(StoreStatistics(museum_store), CostWeights(cs=10.0, cm=10.0))
        assert light.total_cost(state) < heavy.total_cost(state)

    def test_vmc_counts_f_to_len(self, model):
        q1 = parse_query("q1(X) :- t(X, p, c)")
        q2 = parse_query("q2(X, Z) :- t(X, p, Y), t(Y, q, Z)")
        state = initial_state([q1, q2])
        assert model.vmc(state) == pytest.approx(2.0 + 4.0)

    def test_io_counts_each_scan(self, model, q_painters):
        state = initial_state([q_painters])
        assert model.rewriting_io(state) == pytest.approx(
            model.view_cardinality(state.views[0])
        )


class TestTransitionImpact:
    """'Impact of transitions on the cost' (end of Section 3.3)."""

    def test_sc_always_increases_cost(self, model, enum, q_painters):
        state = initial_state([q_painters], enum.namer)
        base = model.total_cost(state)
        view = state.views[0]
        for atom_index, attribute, _ in enum.sc_candidates(view):
            successor = enum.apply_sc(state, view.name, atom_index, attribute).result
            assert model.total_cost(successor) >= base

    def test_vf_never_increases_cost(self, model, enum):
        q1 = parse_query("q1(X) :- t(X, hasPainted, Y)")
        q2 = parse_query("q2(Z) :- t(Z, hasPainted, W)")
        state = initial_state([q1, q2], enum.namer)
        base = model.total_cost(state)
        fused = enum.apply_vf(state, *enum.vf_candidates(state)[0]).result
        assert model.total_cost(fused) <= base

    def test_jc_decreases_maintenance(self, model, enum, q_painters):
        state = initial_state([q_painters], enum.namer)
        base_vmc = model.vmc(state)
        successor = enum.apply_jc(state, state.views[0].name, 1, "o").result
        assert model.vmc(successor) < base_vmc


class TestPlanCardinality:
    def test_annotated_nodes_priced_via_views(self, model, enum, q_painters):
        state = initial_state([q_painters], enum.namer)
        view = state.views[0]
        successor = enum.apply_sc(state, view.name, 0, "o").result
        plan = successor.rewritings["q1"][0].plan
        # The outer projection computes the original view.
        assert model.plan_cardinality(plan) == pytest.approx(
            model.view_cardinality(view)
        )

    def test_unannotated_scan_raises(self, model):
        from repro.query.algebra import Scan

        with pytest.raises(ValueError):
            model.plan_cardinality(Scan("v", ("x",)))


def test_deterministic_with_fixed_statistics(q_painters):
    model1 = CostModel(FixedStatistics())
    model2 = CostModel(FixedStatistics())
    state = initial_state([q_painters])
    assert model1.total_cost(state) == model2.total_cost(state)


class TestEmptyStore:
    """Satellite regression: the cost model must price an empty or
    degenerate store finitely — ``1/max(distinct)`` and the average-term-
    size width must never divide by zero."""

    def test_empty_store_costs_are_finite(self, q_painters):
        import math

        from repro.rdf.store import TripleStore

        model = CostModel(StoreStatistics(TripleStore()))
        state = initial_state([q_painters])
        breakdown = model.cost(state)
        assert math.isfinite(breakdown.total)
        assert breakdown.vso > 0  # clamped cardinality times nominal width

    def test_empty_store_view_cardinality_clamped(self):
        from repro.rdf.store import TripleStore

        model = CostModel(StoreStatistics(TripleStore()))
        join = parse_query("v(X, Z) :- t(X, p, Y), t(Y, q, Z)")
        assert model.view_cardinality(join) == pytest.approx(1.0)

    def test_empty_store_calibration_keeps_defaults(self, q_painters):
        from repro.rdf.store import TripleStore
        from repro.selection.costs import calibrate_maintenance_weight

        statistics = StoreStatistics(TripleStore())
        state = initial_state([q_painters])
        weights = calibrate_maintenance_weight(state, statistics)
        assert weights.cm > 0
