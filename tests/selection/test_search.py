"""Unit tests for the search strategies (Section 5)."""

import pytest

from repro.query.evaluation import evaluate
from repro.query.parser import parse_query
from repro.selection.costs import CostModel
from repro.selection.materialize import answer_query, materialize_views
from repro.selection.search import (
    SearchBudget,
    avf_closure,
    dfs_search,
    exhaustive_naive_search,
    exhaustive_stratified_search,
    greedy_stratified_search,
    view_is_all_variables,
    view_is_triple_table,
)
from repro.selection.state import ViewNamer, initial_state
from repro.selection.statistics import StoreStatistics
from repro.selection.transitions import TransitionEnumerator


@pytest.fixture()
def setup(museum_store):
    queries = [
        parse_query("q1(X) :- t(X, hasPainted, starryNight)"),
        parse_query("q2(X, Y) :- t(X, hasPainted, Y), t(X, rdf:type, painter)"),
    ]
    namer = ViewNamer()
    enum = TransitionEnumerator(namer, vb_mode="overlapping")
    model = CostModel(StoreStatistics(museum_store))
    state = initial_state(queries, namer)
    return queries, state, enum, model


ALL_STRATEGIES = [
    dfs_search,
    greedy_stratified_search,
    exhaustive_naive_search,
    exhaustive_stratified_search,
]


class TestStopConditionPredicates:
    def test_triple_table_view(self):
        assert view_is_triple_table(parse_query("v(X, Y, Z) :- t(X, Y, Z)"))
        assert not view_is_triple_table(parse_query("v(X, Y) :- t(X, p, Y)"))
        assert not view_is_triple_table(parse_query("v(X) :- t(X, Y, X)"))

    def test_all_variable_view(self):
        assert view_is_all_variables(parse_query("v(X, Z) :- t(X, Y, Z)"))
        assert not view_is_all_variables(parse_query("v(X) :- t(X, p, Y)"))


@pytest.mark.parametrize("search", ALL_STRATEGIES)
class TestStrategyContracts:
    def test_best_never_worse_than_initial(self, setup, search):
        queries, state, enum, model = setup
        result = search(state, model, enum, SearchBudget(time_limit=3.0))
        assert result.best_cost <= result.initial_cost
        assert 0.0 <= result.rcr <= 1.0

    def test_best_state_rewritings_are_sound(self, setup, museum_store, search):
        queries, state, enum, model = setup
        result = search(state, model, enum, SearchBudget(time_limit=3.0))
        extents = materialize_views(result.best_state, museum_store)
        for query in queries:
            assert answer_query(result.best_state, query.name, extents) == evaluate(
                query, museum_store
            )

    def test_stats_are_populated(self, setup, search):
        queries, state, enum, model = setup
        result = search(state, model, enum, SearchBudget(time_limit=3.0))
        assert result.stats.created > 0
        assert result.stats.transitions >= result.stats.created

    def test_cost_history_is_decreasing(self, setup, search):
        queries, state, enum, model = setup
        result = search(state, model, enum, SearchBudget(time_limit=3.0))
        costs = [cost for _, cost in result.cost_history]
        assert costs == sorted(costs, reverse=True)
        assert costs[0] == result.initial_cost

    def test_state_budget_stops_search(self, setup, search):
        queries, state, enum, model = setup
        result = search(state, model, enum, SearchBudget(max_states=5))
        assert not result.completed
        assert result.stats.created <= 5 + 10  # small overshoot allowed


class TestAvfClosure:
    def test_fuses_all_isomorphic_views(self, museum_store):
        queries = [
            parse_query("q1(X) :- t(X, hasPainted, Y)"),
            parse_query("q2(Z) :- t(Z, hasPainted, W)"),
            parse_query("q3(A) :- t(A, hasPainted, B)"),
        ]
        namer = ViewNamer()
        enum = TransitionEnumerator(namer)
        state = initial_state(queries, namer)
        fused = avf_closure(state, enum)
        assert len(fused.views) == 1

    def test_noop_when_nothing_to_fuse(self, setup):
        queries, state, enum, model = setup
        assert avf_closure(state, enum) is state


class TestStratificationAblation:
    def test_exstr_no_more_transitions_than_exnaive(self, setup):
        """Theorem 5.3(ii), observed on a small instance."""
        queries, state, enum_a, model = setup
        namer_b = ViewNamer("w")
        enum_b = TransitionEnumerator(namer_b, vb_mode="overlapping")
        budget = SearchBudget(time_limit=10.0)
        naive = exhaustive_naive_search(state, model, enum_a, budget)
        stratified = exhaustive_stratified_search(state, model, enum_b, budget)
        if naive.completed and stratified.completed:
            assert stratified.stats.transitions <= naive.stats.transitions
            # Both exhaustive searches find the same best cost.
            assert stratified.best_cost == pytest.approx(naive.best_cost)


class TestDfsSpecifics:
    def test_avf_reduces_created_states(self, museum_store):
        queries = [
            parse_query("q1(X) :- t(X, hasPainted, starryNight)"),
            parse_query("q2(Z) :- t(Z, hasPainted, babel)"),
        ]
        model = CostModel(StoreStatistics(museum_store))

        def run(use_avf):
            namer = ViewNamer()
            enum = TransitionEnumerator(namer, vb_mode="overlapping")
            state = initial_state(queries, namer)
            return dfs_search(
                state, model, enum, SearchBudget(time_limit=10.0), use_avf=use_avf
            )

        with_avf = run(True)
        without_avf = run(False)
        assert with_avf.completed and without_avf.completed
        assert with_avf.stats.created <= without_avf.stats.created
        assert with_avf.best_cost <= without_avf.best_cost + 1e-9

    def test_stopvar_discards_states(self, setup):
        queries, state, enum, model = setup
        result = dfs_search(
            state, model, enum, SearchBudget(time_limit=5.0), use_stopvar=True
        )
        assert result.stats.discarded > 0
        for view in result.best_state.views:
            assert view.constants(), "stopvar must keep constants in views"

    def test_average_view_atoms(self, setup):
        queries, state, enum, model = setup
        result = dfs_search(state, model, enum, SearchBudget(time_limit=2.0))
        assert result.average_view_atoms() >= 1.0


class TestGstrSpecifics:
    def test_gstr_explores_fewer_states_than_dfs(self, setup, museum_store):
        queries, state, enum, model = setup
        dfs = dfs_search(state, model, enum, SearchBudget(time_limit=10.0))
        namer = ViewNamer("g")
        enum2 = TransitionEnumerator(namer, vb_mode="overlapping")
        state2 = initial_state(queries, namer)
        gstr = greedy_stratified_search(state2, model, enum2, SearchBudget(time_limit=10.0))
        if dfs.completed and gstr.completed:
            assert gstr.stats.created <= dfs.stats.created
