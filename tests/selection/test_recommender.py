"""Unit tests for the ViewSelector facade."""

import pytest

from repro.query.evaluation import evaluate
from repro.query.parser import parse_query
from repro.rdf.entailment import saturate
from repro.selection.recommender import ViewSelector
from repro.selection.search import SearchBudget


@pytest.fixture()
def workload():
    return [
        parse_query("q1(X) :- t(X, hasPainted, starryNight)"),
        parse_query("q2(X, Y) :- t(X, hasPainted, Y), t(X, rdf:type, painter)"),
    ]


class TestConfiguration:
    def test_unknown_strategy_rejected(self, museum_store):
        with pytest.raises(ValueError):
            ViewSelector(museum_store, strategy="magic")

    def test_unknown_entailment_rejected(self, museum_store):
        with pytest.raises(ValueError):
            ViewSelector(museum_store, entailment="psychic")

    def test_entailment_requires_schema(self, museum_store):
        with pytest.raises(ValueError):
            ViewSelector(museum_store, entailment="saturation")

    def test_empty_workload_rejected(self, museum_store):
        selector = ViewSelector(museum_store)
        with pytest.raises(ValueError):
            selector.recommend([])


class TestPlainRecommendation:
    def test_end_to_end(self, museum_store, workload):
        selector = ViewSelector(
            museum_store, budget=SearchBudget(time_limit=3.0), strategy="dfs"
        )
        recommendation = selector.recommend(workload)
        extents = recommendation.materialize()
        for query in workload:
            assert recommendation.answer(query.name, extents) == evaluate(
                query, museum_store
            )

    def test_gstr_strategy(self, museum_store, workload):
        selector = ViewSelector(
            museum_store, budget=SearchBudget(time_limit=3.0), strategy="gstr"
        )
        recommendation = selector.recommend(workload)
        assert recommendation.result.best_cost <= recommendation.result.initial_cost

    def test_views_property(self, museum_store, workload):
        selector = ViewSelector(museum_store, budget=SearchBudget(time_limit=2.0))
        recommendation = selector.recommend(workload)
        assert recommendation.views == recommendation.state.views


class TestEntailmentModes:
    @pytest.fixture()
    def entailed_workload(self):
        return [
            parse_query("q1(X, Y) :- t(X, rdf:type, picture), t(X, isLocatedIn, Y)"),
        ]

    def test_post_reformulation_answers_include_implicit(
        self, museum_store, museum_schema, entailed_workload
    ):
        selector = ViewSelector(
            museum_store,
            schema=museum_schema,
            entailment="post_reformulation",
            budget=SearchBudget(time_limit=3.0),
        )
        recommendation = selector.recommend(entailed_workload)
        extents = recommendation.materialize()
        answers = recommendation.answer("q1", extents)
        saturated = saturate(museum_store, museum_schema)
        assert answers == evaluate(entailed_workload[0], saturated)
        assert answers  # implicit triples make it non-empty

    def test_saturation_mode_matches_post_reformulation(
        self, museum_store, museum_schema, entailed_workload
    ):
        post = ViewSelector(
            museum_store,
            schema=museum_schema,
            entailment="post_reformulation",
            budget=SearchBudget(time_limit=3.0),
        ).recommend(entailed_workload)
        saturation = ViewSelector(
            museum_store,
            schema=museum_schema,
            entailment="saturation",
            budget=SearchBudget(time_limit=3.0),
        ).recommend(entailed_workload)
        # Section 6.5: saturation and post-reformulation coincide — same
        # statistics, same workload, hence the same best state.
        assert post.state.key == saturation.state.key
        post_answers = post.answer("q1", post.materialize())
        saturation_answers = saturation.answer("q1", saturation.materialize())
        assert post_answers == saturation_answers

    def test_pre_reformulation_mode(self, museum_store, museum_schema, entailed_workload):
        selector = ViewSelector(
            museum_store,
            schema=museum_schema,
            entailment="pre_reformulation",
            budget=SearchBudget(time_limit=3.0),
        )
        recommendation = selector.recommend(entailed_workload)
        extents = recommendation.materialize()
        answers = recommendation.answer("q1", extents)
        saturated = saturate(museum_store, museum_schema)
        assert answers == evaluate(entailed_workload[0], saturated)
