"""Unit tests for view-set persistence (the offline-client format)."""

import pytest

from repro.query.cq import Variable
from repro.query.evaluation import evaluate
from repro.query.parser import parse_query
from repro.rdf.terms import BlankNode, Literal, URI
from repro.selection import persist
from repro.selection.costs import CostModel
from repro.selection.materialize import answer_query, materialize_views
from repro.selection.search import SearchBudget, dfs_search
from repro.selection.state import ViewNamer, initial_state
from repro.selection.statistics import StoreStatistics
from repro.selection.transitions import TransitionEnumerator


class TestTermRoundtrip:
    @pytest.mark.parametrize(
        "term",
        [
            URI("http://a#x"),
            BlankNode("b7"),
            Literal("plain"),
            Literal("tagged", language="fr"),
            Literal("7", datatype=URI("http://int")),
            Variable("X"),
        ],
    )
    def test_roundtrip(self, term):
        assert persist.decode_term(persist.encode_term(term)) == term

    def test_malformed_rejected(self):
        with pytest.raises(persist.PersistenceError):
            persist.decode_term({"weird": 1})
        with pytest.raises(persist.PersistenceError):
            persist.decode_term("not-a-dict")


class TestQueryRoundtrip:
    def test_plain_query(self, q_painters):
        assert persist.decode_query(persist.encode_query(q_painters)) == q_painters

    def test_non_literal_restriction_preserved(self):
        query = parse_query("q(X) :- t(Y, p, X)").with_non_literal([Variable("X")])
        decoded = persist.decode_query(persist.encode_query(query))
        assert decoded.non_literal == frozenset({Variable("X")})


class TestStateRoundtrip:
    def make_searched_state(self, museum_store):
        queries = [
            parse_query("q1(X) :- t(X, hasPainted, starryNight)"),
            parse_query("q2(X, Y) :- t(X, hasPainted, Y), t(X, rdf:type, painter)"),
        ]
        namer = ViewNamer()
        enumerator = TransitionEnumerator(namer, vb_mode="overlapping")
        model = CostModel(StoreStatistics(museum_store))
        state = initial_state(queries, namer)
        result = dfs_search(state, model, enumerator, SearchBudget(time_limit=2.0))
        return queries, result.best_state

    def test_state_key_survives_roundtrip(self, museum_store):
        _, state = self.make_searched_state(museum_store)
        restored, _ = persist.loads(persist.dumps(state))
        assert restored.key == state.key
        assert {v.name for v in restored.views} == {v.name for v in state.views}

    def test_offline_answers_from_restored_document(self, museum_store):
        """The headline property: a restored state + extents answers the
        workload with no store access."""
        queries, state = self.make_searched_state(museum_store)
        extents = materialize_views(state, museum_store)
        text = persist.dumps(state, extents)
        restored_state, restored_extents = persist.loads(text)
        assert restored_extents is not None
        for query in queries:
            assert answer_query(
                restored_state, query.name, restored_extents
            ) == evaluate(query, museum_store)

    def test_file_roundtrip(self, museum_store, tmp_path):
        queries, state = self.make_searched_state(museum_store)
        extents = materialize_views(state, museum_store)
        path = tmp_path / "viewset.json"
        persist.save(path, state, extents, indent=2)
        restored_state, restored_extents = persist.load(path)
        assert restored_state.key == state.key
        assert restored_extents.keys() == extents.keys()


class TestFormatValidation:
    def test_not_json(self):
        with pytest.raises(persist.PersistenceError):
            persist.loads("definitely not json")

    def test_wrong_format_tag(self):
        with pytest.raises(persist.PersistenceError):
            persist.loads('{"format": "other", "version": 1}')

    def test_wrong_version(self):
        with pytest.raises(persist.PersistenceError):
            persist.loads('{"format": "repro-viewset", "version": 99}')

    def test_extents_optional(self, q_painters):
        state = initial_state([q_painters])
        restored, extents = persist.loads(persist.dumps(state))
        assert extents is None
        assert restored.key == state.key
