"""Unit tests for the unified search core: the strategy protocol and
registry, the Figure-5 accounting ownership, and the incremental
CostDelta contract."""

import pytest

from repro.query.parser import parse_query
from repro.selection.costs import CostDelta, CostModel
from repro.selection.search import (
    STRATEGY_FACTORIES,
    DfsStrategy,
    SearchBudget,
    SearchStrategy,
    run_search,
)
from repro.selection.state import StateDelta, ViewNamer, initial_state
from repro.selection.statistics import StoreStatistics
from repro.selection.transitions import TransitionEnumerator

#: Small workloads on which every strategy — greedy ones included —
#: reaches the global optimum, so their best states must coincide.
AGREEMENT_WORKLOADS = {
    "two-query": [
        "q1(X) :- t(X, hasPainted, starryNight)",
        "q2(X, Y) :- t(X, hasPainted, Y), t(X, rdf:type, painter)",
    ],
    "fusable": [
        "q1(X) :- t(X, hasPainted, Y)",
        "q2(Z) :- t(Z, hasPainted, W)",
    ],
    "three-atoms": [
        "q1(X, Y) :- t(X, hasPainted, Y), t(Y, rdf:type, painting), "
        "t(X, rdf:type, painter)",
    ],
}


def _run(museum_store, strategy, queries, **options):
    namer = ViewNamer()
    enumerator = TransitionEnumerator(namer, vb_mode="overlapping")
    model = CostModel(StoreStatistics(museum_store))
    state = initial_state([parse_query(q) for q in queries], namer)
    return run_search(
        state,
        model,
        strategy,
        enumerator,
        SearchBudget(time_limit=10.0),
        use_avf=True,
        use_stoptt=True,
        use_stopvar=True,
        **options,
    )


class TestStrategyRegistry:
    def test_factories_cover_the_paper_strategies(self):
        assert sorted(STRATEGY_FACTORIES) == [
            "descent", "dfs", "exnaive", "exstr", "gstr",
        ]

    def test_factories_satisfy_the_protocol(self):
        for factory in STRATEGY_FACTORIES.values():
            assert isinstance(factory(), SearchStrategy)

    def test_unknown_strategy_name_raises(self, museum_store):
        with pytest.raises(ValueError, match="unknown strategy"):
            _run(museum_store, "simulated-annealing",
                 AGREEMENT_WORKLOADS["fusable"])

    def test_strategy_objects_are_accepted(self, museum_store):
        result = _run(museum_store, DfsStrategy(),
                      AGREEMENT_WORKLOADS["fusable"])
        assert result.strategy == "dfs"
        assert result.best_cost <= result.initial_cost

    def test_result_records_the_strategy_name(self, museum_store):
        for name in STRATEGY_FACTORIES:
            result = _run(museum_store, name, AGREEMENT_WORKLOADS["fusable"])
            assert result.strategy == name


@pytest.mark.parametrize("label", sorted(AGREEMENT_WORKLOADS))
def test_all_strategies_agree_on_small_workloads(museum_store, label):
    """Satellite (b): on workloads small enough for the greedy
    strategies to reach the optimum, every strategy recommends the same
    canonical view set at the same cost."""
    queries = AGREEMENT_WORKLOADS[label]
    results = {
        name: _run(museum_store, name, queries) for name in STRATEGY_FACTORIES
    }
    assert all(result.completed for result in results.values())
    keys = {result.best_state.key for result in results.values()}
    assert len(keys) == 1, {n: r.best_state.key for n, r in results.items()}
    costs = {result.best_cost for result in results.values()}
    assert max(costs) == pytest.approx(min(costs))


def test_budget_states_stops_every_strategy(museum_store):
    for name in STRATEGY_FACTORIES:
        namer = ViewNamer()
        enumerator = TransitionEnumerator(namer, vb_mode="overlapping")
        model = CostModel(StoreStatistics(museum_store))
        state = initial_state(
            [parse_query(q) for q in AGREEMENT_WORKLOADS["two-query"]], namer
        )
        result = run_search(
            state, model, name, enumerator, SearchBudget(max_states=5)
        )
        assert not result.completed
        assert result.stats.created <= 5 + 10  # small overshoot allowed


class TestTransitionCost:
    @pytest.fixture()
    def setup(self, museum_store):
        namer = ViewNamer()
        enumerator = TransitionEnumerator(namer, vb_mode="overlapping")
        model = CostModel(StoreStatistics(museum_store))
        state = initial_state(
            [parse_query(q) for q in AGREEMENT_WORKLOADS["two-query"]], namer
        )
        return state, enumerator, model

    def test_breakdown_matches_full_recompute_exactly(self, setup, museum_store):
        state, enumerator, model = setup
        base = model.cost(state)
        for transition in enumerator.transitions(state):
            delta = model.transition_cost(base, transition)
            oracle = CostModel(
                StoreStatistics(museum_store), incremental=False
            ).cost(transition.result)
            assert delta.breakdown == oracle  # bitwise, not approx

    def test_delta_components_are_differences(self, setup):
        state, enumerator, model = setup
        base = model.cost(state)
        transition = next(iter(enumerator.transitions(state)))
        delta = model.transition_cost(base, transition)
        assert isinstance(delta, CostDelta)
        assert delta.total == delta.breakdown.total - base.total
        assert delta.vso == delta.breakdown.vso - base.vso
        assert delta.vmc == delta.breakdown.vmc - base.vmc

    def test_only_touched_views_are_repriced(self, setup):
        state, enumerator, model = setup
        base = model.cost(state)
        transition = next(iter(enumerator.transitions(state)))
        assert isinstance(transition.delta, StateDelta)
        delta = model.transition_cost(base, transition)
        assert delta.repriced_views <= len(transition.delta.added)
        assert delta.repriced_plans <= len(transition.delta.plan_changes)
        # Pricing the same successor again re-prices nothing at all.
        again = model.transition_cost(base, transition)
        assert again.repriced_views == 0
        assert again.repriced_plans == 0
        assert again.breakdown == delta.breakdown

    def test_state_delta_names_exactly_the_swapped_views(self, setup):
        state, enumerator, model = setup
        transition = next(iter(enumerator.transitions(state)))
        removed = {view.name for view in transition.delta.removed}
        added = {view.name for view in transition.delta.added}
        before = {view.name for view in state.views}
        after = {view.name for view in transition.result.views}
        assert removed == before - after
        assert added == after - before
        assert transition.delta.plan_changes  # the rewriting was rewritten

    def test_baseline_model_prices_identically(self, setup, museum_store):
        state, enumerator, model = setup
        baseline = CostModel(StoreStatistics(museum_store), incremental=False)
        assert baseline.cost(state) == model.cost(state)
