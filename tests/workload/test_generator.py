"""Unit tests for the workload generators."""

import pytest

from repro.query.evaluation import evaluate
from repro.workload import (
    QueryShape,
    SatisfiableWorkloadGenerator,
    WorkloadGenerator,
    WorkloadSpec,
)


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(0, 5)
        with pytest.raises(ValueError):
            WorkloadSpec(5, 0)
        with pytest.raises(ValueError):
            WorkloadSpec(5, 5, commonality="medium")


class TestSyntheticGenerator:
    @pytest.mark.parametrize(
        "shape",
        [
            QueryShape.STAR,
            QueryShape.CHAIN,
            QueryShape.CYCLE,
            QueryShape.RANDOM_SPARSE,
            QueryShape.RANDOM_DENSE,
            QueryShape.MIXED,
        ],
    )
    def test_every_shape_is_wellformed(self, shape):
        generator = WorkloadGenerator(seed=1)
        queries = generator.generate(WorkloadSpec(6, 6, shape, "high"))
        assert len(queries) == 6
        for query in queries:
            assert query.is_connected(), f"{shape}: {query}"
            assert 1 <= len(query) <= 6
            assert query.head  # non-empty head
            assert query.constants()  # never all-variable (stopvar-safe)

    def test_deterministic_for_seed(self):
        spec = WorkloadSpec(4, 5, QueryShape.CHAIN, "low")
        first = WorkloadGenerator(seed=9).generate(spec)
        second = WorkloadGenerator(seed=9).generate(spec)
        assert first == second

    def test_seed_changes_output(self):
        spec = WorkloadSpec(4, 5, QueryShape.CHAIN, "low")
        first = WorkloadGenerator(seed=1).generate(spec)
        second = WorkloadGenerator(seed=2).generate(spec)
        assert first != second

    def test_high_commonality_shares_vocabulary(self):
        spec = WorkloadSpec(6, 6, QueryShape.STAR, "high")
        queries = WorkloadGenerator(seed=3).generate(spec)
        vocabularies = [set(q.constants()) for q in queries]
        # Every pair of queries shares vocabulary, and the global
        # vocabulary stays small (one shared pool).
        for i in range(len(vocabularies)):
            for j in range(i + 1, len(vocabularies)):
                assert vocabularies[i] & vocabularies[j]
        union = set.union(*vocabularies)
        low = WorkloadGenerator(seed=3).generate(
            WorkloadSpec(6, 6, QueryShape.STAR, "low")
        )
        low_union = set.union(*(set(q.constants()) for q in low))
        assert len(union) < len(low_union)

    def test_low_commonality_disjoint_vocabulary(self):
        spec = WorkloadSpec(6, 6, QueryShape.STAR, "low")
        queries = WorkloadGenerator(seed=3).generate(spec)
        for i in range(len(queries)):
            for j in range(i + 1, len(queries)):
                assert queries[i].constants().isdisjoint(queries[j].constants())

    def test_star_atoms_share_center(self):
        queries = WorkloadGenerator(seed=5).generate(
            WorkloadSpec(3, 5, QueryShape.STAR, "low")
        )
        for query in queries:
            centers = {atom.s for atom in query.atoms}
            assert len(centers) == 1

    def test_chain_shape(self):
        queries = WorkloadGenerator(seed=5).generate(
            WorkloadSpec(3, 5, QueryShape.CHAIN, "low", constant_probability=0.0)
        )
        for query in queries:
            for first, second in zip(query.atoms, query.atoms[1:]):
                assert first.o == second.s

    def test_cycle_closes(self):
        queries = WorkloadGenerator(seed=5).generate(
            WorkloadSpec(3, 4, QueryShape.CYCLE, "low")
        )
        for query in queries:
            assert query.atoms[-1].o == query.atoms[0].s


class TestSatisfiableGenerator:
    @pytest.mark.parametrize("shape", [QueryShape.STAR, QueryShape.CHAIN])
    @pytest.mark.parametrize("commonality", ["high", "low"])
    def test_queries_have_answers(self, barton_store, shape, commonality):
        generator = SatisfiableWorkloadGenerator(barton_store, seed=2)
        queries = generator.generate(WorkloadSpec(4, 4, shape, commonality))
        for query in queries:
            assert evaluate(query, barton_store), f"unsatisfiable: {query}"

    def test_deterministic(self, barton_store):
        spec = WorkloadSpec(3, 4, QueryShape.CHAIN, "low")
        first = SatisfiableWorkloadGenerator(barton_store, seed=4).generate(spec)
        second = SatisfiableWorkloadGenerator(barton_store, seed=4).generate(spec)
        assert first == second

    def test_empty_store_rejected(self):
        from repro.rdf.store import TripleStore

        with pytest.raises(ValueError):
            SatisfiableWorkloadGenerator(TripleStore())

    def test_queries_are_connected_and_named(self, barton_store):
        generator = SatisfiableWorkloadGenerator(barton_store, seed=6)
        queries = generator.generate(WorkloadSpec(5, 4, QueryShape.CHAIN, "high"))
        assert [q.name for q in queries] == [f"q{i}" for i in range(1, 6)]
        for query in queries:
            assert query.is_connected()
