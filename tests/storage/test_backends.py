"""Contract tests for the storage backends (protocol level, codes only)."""

import pytest

from repro.storage import (
    BACKENDS,
    MemoryBackend,
    SqliteBackend,
    create_backend,
    permutation_key,
)

TRIPLES = [
    (0, 1, 2),
    (0, 1, 3),
    (0, 4, 2),
    (5, 1, 2),
    (5, 4, 6),
    (2, 1, 0),
]

PATTERNS = [
    (None, None, None),
    (0, None, None),
    (None, 1, None),
    (None, None, 2),
    (0, 1, None),
    (0, None, 2),
    (None, 1, 2),
    (0, 1, 2),
    (9, None, None),  # unknown code
]


@pytest.fixture(params=BACKENDS)
def backend(request):
    b = create_backend(request.param)
    for triple in TRIPLES:
        assert b.add(triple) is True
    return b


def reference_match(pattern):
    return {
        t
        for t in TRIPLES
        if all(code is None or t[i] == code for i, code in enumerate(pattern))
    }


class TestContract:
    def test_add_is_idempotent(self, backend):
        assert backend.add(TRIPLES[0]) is False
        assert len(backend) == len(TRIPLES)

    def test_iter_and_contains(self, backend):
        assert set(backend) == set(TRIPLES)
        assert TRIPLES[0] in backend
        assert (7, 7, 7) not in backend

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_match_against_reference(self, backend, pattern):
        assert set(backend.match(pattern)) == reference_match(pattern)

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_count_agrees_with_match(self, backend, pattern):
        assert backend.count(pattern) == len(reference_match(pattern))

    @pytest.mark.parametrize("order", ["spo", "sop", "pso", "pos", "osp", "ops"])
    def test_iter_sorted_every_permutation(self, backend, order):
        key = permutation_key(order)
        result = list(backend.iter_sorted(order))
        assert result == sorted(TRIPLES, key=key)

    @pytest.mark.parametrize("order", ["spo", "pos", "ops"])
    def test_match_sorted_restricted(self, backend, order):
        key = permutation_key(order)
        pattern = (None, 1, None)
        assert list(backend.match_sorted(pattern, order)) == sorted(
            reference_match(pattern), key=key
        )

    def test_unknown_order_rejected(self, backend):
        with pytest.raises(ValueError):
            list(backend.iter_sorted("zzz"))
        with pytest.raises(ValueError):
            list(backend.match_sorted((None, None, None), "pqr"))

    def test_remove(self, backend):
        assert backend.remove(TRIPLES[0]) is True
        assert backend.remove(TRIPLES[0]) is False
        assert len(backend) == len(TRIPLES) - 1
        assert TRIPLES[0] not in backend
        assert backend.count((0, 1, None)) == 1

    def test_remove_unknown_is_false(self, backend):
        assert backend.remove((9, 9, 9)) is False

    def test_add_bulk_counts_new_only(self, backend):
        inserted = backend.add_bulk([(8, 8, 8), (8, 8, 8), TRIPLES[0]])
        assert inserted == 1
        assert len(backend) == len(TRIPLES) + 1

    def test_distinct_values(self, backend):
        assert backend.distinct_values("s") == len({t[0] for t in TRIPLES})
        assert backend.distinct_values("p") == len({t[1] for t in TRIPLES})
        assert backend.distinct_values("o") == len({t[2] for t in TRIPLES})
        with pytest.raises(ValueError):
            backend.distinct_values("x")

    def test_column_value_counts(self, backend):
        counts = backend.column_value_counts("p")
        assert counts[1] == 4
        assert counts[4] == 2
        assert sum(counts.values()) == len(TRIPLES)

    def test_copy_is_deep(self, backend):
        clone = backend.copy()
        assert set(clone) == set(backend)
        clone.add((7, 7, 7))
        backend.remove(TRIPLES[0])
        assert (7, 7, 7) not in backend
        assert TRIPLES[0] in clone

    def test_empty_column_counts_after_full_removal(self, backend):
        # No stale zero-count entries may linger once all triples of a
        # value are gone (the stats catalog verifies against these).
        for triple in TRIPLES:
            backend.remove(triple)
        assert len(backend) == 0
        for column in ("s", "p", "o"):
            assert backend.column_value_counts(column) == {}
            assert backend.distinct_values(column) == 0


class TestFactory:
    def test_create_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown storage backend"):
            create_backend("postgres")

    def test_memory_rejects_path(self, tmp_path):
        with pytest.raises(ValueError, match="does not take a path"):
            create_backend("memory", path=tmp_path / "x.db")

    def test_sqlite_with_path_persists_triples(self, tmp_path):
        path = tmp_path / "triples.db"
        b = create_backend("sqlite", path=path)
        b.add_bulk(TRIPLES)
        b.close()
        reattached = SqliteBackend(path)
        assert set(reattached) == set(TRIPLES)
        assert len(reattached) == len(TRIPLES)
        reattached.close()


class TestSqliteSpecific:
    def test_flush_makes_writes_visible_to_second_connection(self, tmp_path):
        path = tmp_path / "t.db"
        writer = SqliteBackend(path)
        writer.add((1, 2, 3))
        writer.flush()
        reader = SqliteBackend(path)
        assert (1, 2, 3) in reader
        reader.close()
        writer.close()

    def test_copy_of_file_backed_is_anonymous(self, tmp_path):
        original = SqliteBackend(tmp_path / "orig.db")
        original.add((1, 2, 3))
        clone = original.copy()
        assert clone.path is None
        clone.add((4, 5, 6))
        assert (4, 5, 6) not in original
        original.close()

    def test_memory_backend_copy_type(self):
        assert isinstance(MemoryBackend().copy(), MemoryBackend)
