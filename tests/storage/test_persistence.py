"""Snapshot persistence: ``TripleStore.save`` / ``TripleStore.open``."""

import sqlite3

import pytest

from repro.query.evaluation import evaluate
from repro.query.parser import parse_query
from repro.rdf.store import TripleStore
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.storage import BACKENDS, is_snapshot
from repro.storage.snapshot import FORMAT_KEY, SnapshotError

NS = "http://t/"


def u(x: str) -> URI:
    return URI(NS + x)


@pytest.fixture()
def populated():
    store = TripleStore()
    store.add(Triple(u("a"), u("p"), u("b")))
    store.add(Triple(u("b"), u("p"), u("c")))
    store.add(Triple(u("a"), u("q"), Literal('tricky "v"\nline', language="en")))
    store.add(Triple(u("c"), u("q"), Literal("42", datatype=u("int"))))
    return store


QUERY = parse_query(f"q(X, Z) :- t(X, <{NS}p>, Y), t(Y, <{NS}p>, Z)")


@pytest.mark.parametrize("source", BACKENDS)
@pytest.mark.parametrize("target", BACKENDS)
def test_round_trip_across_backends(tmp_path, populated, source, target):
    """Any backend saves; any backend reopens; answers are identical."""
    store = populated.copy(backend=source)
    path = tmp_path / "store.db"
    store.save(path)
    assert is_snapshot(path)
    reopened = TripleStore.open(path, backend=target)
    assert reopened.backend_name == target
    assert set(reopened) == set(store)
    assert len(reopened) == len(store)
    # Dictionary codes survive byte-identically.
    for term in (u("a"), u("p"), Literal('tricky "v"\nline', language="en")):
        assert reopened.dictionary.lookup(term) == store.dictionary.lookup(term)
    # Statistics come back without recounting.
    for column in ("s", "p", "o"):
        assert reopened.distinct_values(column) == store.distinct_values(column)
        assert reopened.column_value_counts(column) == store.column_value_counts(
            column
        )
    assert reopened.average_term_size() == store.average_term_size()
    # Query results are identical.
    assert evaluate(QUERY, reopened, engine="auto") == evaluate(
        QUERY, populated, engine="auto"
    )
    reopened.close()


def test_round_trip_of_terms_no_parser_can_reread(tmp_path):
    """Structured term rows round-trip terms whose n3() rendering the
    N-Triples grammar cannot re-parse (dashed bnode labels, URIs with
    angle brackets) and URI-hostile snapshot paths ('#', '%')."""
    from repro.rdf.terms import BlankNode

    store = TripleStore()
    exotic = [
        Triple(BlankNode("a-b.c"), u("p"), u("o")),
        Triple(u("s"), u("p"), URI("http://t/weird>uri")),
        Triple(u("s"), u("p"), Literal("", language="en")),
    ]
    for triple in exotic:
        store.add(triple)
    path = tmp_path / "odd#name%20.db"
    store.save(path)
    for backend in BACKENDS:
        reopened = TripleStore.open(path, backend=backend)
        assert set(reopened) == set(store), backend
        reopened.close()


def test_save_overwrites_previous_snapshot(tmp_path, populated):
    path = tmp_path / "store.db"
    populated.save(path)
    smaller = TripleStore()
    smaller.add(Triple(u("only"), u("p"), u("one")))
    smaller.save(path)
    reopened = TripleStore.open(path, backend="memory")
    assert set(reopened) == set(smaller)


def test_sqlite_store_is_its_own_snapshot(tmp_path, populated):
    """A file-backed SQLite store saves in place: same file, no copies."""
    path = tmp_path / "live.db"
    populated.save(path)
    live = TripleStore.open(path, backend="sqlite")
    assert live.backend.path == str(path)
    live.add(Triple(u("new"), u("p"), u("a")))
    live.save(path)
    second = TripleStore.open(path, backend="memory")
    assert Triple(u("new"), u("p"), u("a")) in second
    assert len(second) == len(populated) + 1
    live.close()


def test_close_syncs_file_backed_sidecar(tmp_path, populated):
    """close() on a file-backed store leaves a reopenable snapshot."""
    path = tmp_path / "live.db"
    populated.save(path)
    live = TripleStore.open(path, backend="sqlite")
    live.add(Triple(u("fresh"), u("q"), Literal("x")))
    live.close()  # no explicit save
    reopened = TripleStore.open(path, backend="sqlite")
    assert Triple(u("fresh"), u("q"), Literal("x")) in reopened
    assert reopened.stats.predicate_count(u("q")) == 3
    reopened.close()


def test_mutations_after_open_keep_statistics_in_sync(tmp_path, populated):
    path = tmp_path / "store.db"
    populated.save(path)
    for backend in BACKENDS:
        reopened = TripleStore.open(path, backend=backend)
        reopened.add(Triple(u("z1"), u("p"), u("z2")))
        reopened.remove(Triple(u("a"), u("p"), u("b")))
        assert reopened.stats.predicate_count(u("p")) == 2
        assert reopened.count(p=u("p")) == 2
        for column in ("s", "p", "o"):
            assert reopened.backend.column_value_counts(
                column
            ) == reopened.column_value_counts(column), (backend, column)
        reopened.close()


def test_close_without_mutation_leaves_file_untouched(tmp_path, populated):
    """A pure-read session must not rewrite the sidecar on close —
    verified the hard way, against a read-only snapshot file."""
    path = tmp_path / "frozen.db"
    populated.save(path)
    path.chmod(0o444)
    try:
        reader = TripleStore.open(path, backend="sqlite")
        assert evaluate(QUERY, reader, engine="auto") == evaluate(
            QUERY, populated, engine="auto"
        )
        reader.close()  # must not attempt any write
    finally:
        path.chmod(0o644)
    assert is_snapshot(path)


def test_saturate_preserves_backend_kind(populated):
    from repro.rdf.entailment import saturate
    from repro.rdf.schema import RDFSchema

    sqlite_store = populated.copy(backend="sqlite")
    saturated = saturate(sqlite_store, RDFSchema())
    assert saturated.backend_name == "sqlite"
    assert set(saturated) == set(populated)
    assert saturate(populated, RDFSchema(), backend="memory").backend_name == "memory"


def test_subclass_override_of_read_methods_is_honored(populated):
    class CountingStore(TripleStore):
        calls = 0

        def match_encoded(self, pattern):
            CountingStore.calls += 1
            return super().match_encoded(pattern)

    store = CountingStore()
    store.add(Triple(u("a"), u("p"), u("b")))
    list(store.match(s=u("a")))
    assert CountingStore.calls == 1
    # Non-overridden methods still take the bound fast path.
    assert store.count_encoded.__self__ is store.backend


def test_flush_leaves_reopenable_snapshot(tmp_path, populated):
    """flush() must sync the sidecar too: a crash after flush (no
    close) may not leave committed triples next to a stale dictionary."""
    path = tmp_path / "live.db"
    populated.save(path)
    live = TripleStore.open(path, backend="sqlite")
    # Net-zero count churn introducing a brand-new term: the triple
    # count alone cannot reveal a stale sidecar afterwards.
    live.remove(Triple(u("a"), u("p"), u("b")))
    live.add(Triple(u("brandNew"), u("p"), u("b")))
    live.flush()
    # Simulated crash: live is never closed. The file must still open.
    recovered = TripleStore.open(path, backend="memory")
    assert Triple(u("brandNew"), u("p"), u("b")) in recovered
    assert Triple(u("a"), u("p"), u("b")) not in recovered
    live.close()


def test_open_detects_codes_beyond_dictionary(tmp_path, populated):
    # A triple whose codes the sidecar dictionary cannot decode (stale
    # sidecar with an unchanged triple count) must be rejected, not
    # crash later with KeyError mid-query.
    path = tmp_path / "store.db"
    populated.save(path)
    con = sqlite3.connect(path)
    con.execute("INSERT INTO triples (s, p, o) VALUES (9999, 9999, 9999)")
    (count,) = con.execute("SELECT COUNT(*) FROM triples").fetchone()
    con.execute("UPDATE meta SET value = ? WHERE key = 'triples'", (str(count),))
    con.commit()
    con.close()
    for backend in BACKENDS:
        with pytest.raises(SnapshotError, match="dictionary only holds"):
            TripleStore.open(path, backend=backend)


def test_save_is_atomic_no_staging_residue(tmp_path, populated):
    path = tmp_path / "store.db"
    populated.save(path)
    populated.save(path)  # overwrite goes through the staging file
    assert not (tmp_path / "store.db.tmp").exists()
    assert is_snapshot(path)


def test_fresh_file_backed_store_closed_unmutated_reopens(tmp_path):
    """Creating a persistent store and closing it untouched must still
    leave a valid (empty) snapshot, not a schema-only stub."""
    from repro.storage import SqliteBackend

    path = tmp_path / "fresh.db"
    store = TripleStore(backend=SqliteBackend(path))
    store.close()
    reopened = TripleStore.open(path, backend="sqlite")
    assert len(reopened) == 0
    reopened.add(Triple(u("a"), u("p"), u("b")))
    reopened.close()
    assert len(TripleStore.open(path, backend="memory")) == 1


def test_flush_skips_sidecar_when_unchanged(tmp_path, populated):
    path = tmp_path / "live.db"
    populated.save(path)
    live = TripleStore.open(path, backend="sqlite")
    live.add(Triple(u("x"), u("p"), u("y")))
    live.flush()
    first_sync = live._saved_version
    live.flush()  # no mutation in between: must not rewrite the sidecar
    assert live._saved_version == first_sync == live.version
    live.close()


def test_failed_open_releases_the_file(tmp_path, populated):
    # After an integrity-check rejection the connection must be closed:
    # the file stays deletable/replaceable (the fix the error suggests).
    path = tmp_path / "store.db"
    populated.save(path)
    con = sqlite3.connect(path)
    con.execute("INSERT INTO triples (s, p, o) VALUES (9999, 9999, 9999)")
    con.commit()
    con.close()
    with pytest.raises(SnapshotError, match="out of sync"):
        TripleStore.open(path, backend="sqlite")
    populated.save(path)  # would fail if a stale handle held a write lock
    assert len(TripleStore.open(path, backend="memory")) == len(populated)


def test_open_missing_file(tmp_path):
    with pytest.raises(SnapshotError, match="does not exist"):
        TripleStore.open(tmp_path / "nope.db")


def test_open_non_snapshot_sqlite_file(tmp_path):
    path = tmp_path / "other.db"
    con = sqlite3.connect(path)
    con.execute("CREATE TABLE unrelated (x)")
    con.commit()
    con.close()
    with pytest.raises(SnapshotError, match="not a repro store snapshot"):
        TripleStore.open(path)
    assert not is_snapshot(path)


def test_open_non_sqlite_file(tmp_path):
    path = tmp_path / "garbage.db"
    path.write_bytes(b"this is not a database, not even close padding padding")
    with pytest.raises(SnapshotError):
        TripleStore.open(path)


def test_open_unsupported_format_version(tmp_path, populated):
    path = tmp_path / "store.db"
    populated.save(path)
    con = sqlite3.connect(path)
    con.execute("UPDATE meta SET value = '999' WHERE key = ?", (FORMAT_KEY,))
    con.commit()
    con.close()
    with pytest.raises(SnapshotError, match="unsupported snapshot format"):
        TripleStore.open(path)


def test_open_detects_out_of_sync_sidecar(tmp_path, populated):
    # Simulate a crashed writer: triples changed underneath the sidecar.
    path = tmp_path / "store.db"
    populated.save(path)
    con = sqlite3.connect(path)
    con.execute(
        "DELETE FROM triples WHERE (s, p, o) IN (SELECT s, p, o FROM triples LIMIT 1)"
    )
    con.commit()
    con.close()
    with pytest.raises(SnapshotError, match="out of sync"):
        TripleStore.open(path)


def test_open_rejects_unknown_backend(tmp_path, populated):
    path = tmp_path / "store.db"
    populated.save(path)
    with pytest.raises(ValueError, match="unknown backend"):
        TripleStore.open(path, backend="postgres")


def test_empty_store_round_trip(tmp_path):
    path = tmp_path / "empty.db"
    TripleStore().save(path)
    for backend in BACKENDS:
        reopened = TripleStore.open(path, backend=backend)
        assert len(reopened) == 0
        assert reopened.distinct_values("p") == 0
        reopened.add(Triple(u("a"), u("p"), u("b")))
        assert len(reopened) == 1
        reopened.close()
