"""Read-only snapshot serving: zero writes, enforced and verified.

The server-mode workers open one shared snapshot from N processes; a
single stray write (WAL conversion, schema script, ANALYZE, dictionary
sync on close) would corrupt concurrent readers or fail outright on a
read-only filesystem. These tests pin the contract at every layer:
the connection is ``mode=ro``, mutations raise, and a full
open-query-close cycle leaves the file byte-identical."""

import hashlib
import os

import pytest

from repro.query.evaluation import evaluate
from repro.query.parser import parse_query
from repro.rdf.store import TripleStore
from repro.rdf.terms import URI
from repro.rdf.triples import Triple
from repro.storage import ReadOnlyBackendError, SqliteBackend

NS = "http://t/"
QUERY = parse_query(f"q(X, Y) :- t(X, <{NS}p>, Y)")


def _triple(a: str, p: str, b: str) -> Triple:
    return Triple(URI(NS + a), URI(NS + p), URI(NS + b))


@pytest.fixture()
def saved(tmp_path):
    store = TripleStore()
    store.add(_triple("a", "p", "b"))
    store.add(_triple("b", "p", "c"))
    store.add(_triple("a", "q", "c"))
    path = tmp_path / "kb.snapshot"
    store.save(path)
    store.close()
    return path, evaluate(QUERY, TripleStore.open(path, backend="memory"))


def _fingerprint(path):
    stat = os.stat(path)
    return (
        hashlib.sha256(path.read_bytes()).hexdigest(),
        stat.st_mtime_ns,
        stat.st_size,
    )


def test_read_only_open_query_close_writes_nothing(saved):
    """The headline regression: a chmod-0444 snapshot goes through a
    full open / query / close cycle byte-identical — no WAL conversion,
    no schema script, no ANALYZE, no dictionary sync, no commit."""
    path, expected = saved
    path.chmod(0o444)
    try:
        before = _fingerprint(path)
        reader = TripleStore.open(path, backend="sqlite", read_only=True)
        assert reader.backend.read_only is True
        assert evaluate(QUERY, reader, engine="auto") == expected
        reader.close()
        assert _fingerprint(path) == before
        # Zero sidecar files either: WAL mode would have created them.
        parent = path.parent
        assert not (parent / (path.name + "-wal")).exists()
        assert not (parent / (path.name + "-journal")).exists()
        assert not (parent / (path.name + "-shm")).exists()
    finally:
        path.chmod(0o644)


def test_read_only_backend_rejects_mutations(saved):
    path, _ = saved
    reader = TripleStore.open(path, backend="sqlite", read_only=True)
    try:
        with pytest.raises(ReadOnlyBackendError):
            reader.add(_triple("x", "p", "y"))
        with pytest.raises(ReadOnlyBackendError):
            reader.remove(_triple("a", "p", "b"))
        with pytest.raises(ReadOnlyBackendError):
            reader.backend.add_bulk([(1, 2, 3)])
    finally:
        reader.close()


def test_read_only_analyze_is_a_no_op(saved):
    """The staleness-triggered ANALYZE must never fire on a read-only
    connection (it writes sqlite_stat tables)."""
    path, _ = saved
    backend = SqliteBackend(path, read_only=True)
    try:
        backend._stale_rows = 10**9  # force the threshold
        backend._analyze()
        assert backend._stale_rows == 0
    finally:
        backend.close()


def test_auto_detect_unwritable_snapshot(saved):
    """``read_only=None`` detects files the process cannot write.

    ``os.access`` reports writability for the *real* uid — as root
    every file is writable, so the auto-detect branch only engages for
    unprivileged users (the CI case); assert accordingly.
    """
    path, expected = saved
    path.chmod(0o444)
    try:
        expect_detected = not os.access(path, os.W_OK)
        reader = TripleStore.open(path, backend="sqlite")
        assert reader.backend.read_only is expect_detected
        assert evaluate(QUERY, reader, engine="auto") == expected
        reader.close()
    finally:
        path.chmod(0o644)


def test_read_only_requires_a_path():
    with pytest.raises(ValueError):
        SqliteBackend(None, read_only=True)


def test_many_read_only_readers_share_one_snapshot(saved):
    """The server-mode shape: several read-only connections answer the
    same query on one file, concurrently open."""
    path, expected = saved
    readers = [
        TripleStore.open(path, backend="sqlite", read_only=True)
        for _ in range(4)
    ]
    try:
        for reader in readers:
            assert evaluate(QUERY, reader, engine="auto") == expected
    finally:
        for reader in readers:
            reader.close()


def test_writable_open_still_works(saved):
    """``read_only=False`` (and the default on writable files as root)
    keeps the read-write path intact: mutations persist."""
    path, expected = saved
    writer = TripleStore.open(path, backend="sqlite", read_only=False)
    assert writer.backend.read_only is False
    writer.add(_triple("c", "p", "d"))
    writer.save(path)
    writer.close()
    reader = TripleStore.open(path, backend="sqlite", read_only=True)
    try:
        assert len(evaluate(QUERY, reader, engine="auto")) == len(expected) + 1
    finally:
        reader.close()
