"""Contract tests for the storage layer's batched fetch paths.

``match_batches`` / ``match_sorted_batches`` must chunk exactly what
``match`` / ``match_sorted`` produce, and ``match_many`` must answer a
batch of patterns exactly as per-pattern ``match`` calls would — on
every backend, for every pattern shape (the SQLite backend routes each
bound-column mask through a different index prefix and folds probe
batches into single ``IN (VALUES ...)`` statements, including chunking
past its per-statement probe limit).
"""

import random

import pytest

from repro.rdf.store import TripleStore
from repro.rdf.terms import URI
from repro.rdf.triples import Triple
from repro.storage import BACKENDS
from repro.storage.base import PERMUTATIONS
from repro.storage.sqlite import _PROBE_PARAM_BUDGET

backends = pytest.mark.parametrize("backend", BACKENDS)


def _populated_store(backend, triples=600, entities=40, properties=5, seed=11):
    rng = random.Random(seed)
    store = TripleStore(backend=backend)
    for _ in range(triples):
        store.add(
            Triple(
                URI(f"http://u/e{rng.randrange(entities)}"),
                URI(f"http://u/p{rng.randrange(properties)}"),
                URI(f"http://u/e{rng.randrange(entities)}"),
            )
        )
    return store


def _all_shapes(store):
    """One encoded pattern per bound-column mask, plus misses."""
    s = store.encode_term(URI("http://u/e1"))
    p = store.encode_term(URI("http://u/p1"))
    o = store.encode_term(URI("http://u/e2"))
    some = next(iter(store.backend))
    return [
        (None, None, None),
        (s, None, None),
        (None, p, None),
        (None, None, o),
        (s, p, None),
        (s, None, o),
        (None, p, o),
        some,
        (s, p, o),
    ]


@backends
@pytest.mark.parametrize("size", [1, 7, 1024])
def test_match_batches_chunk_match_exactly(backend, size):
    store = _populated_store(backend)
    for pattern in _all_shapes(store):
        expected = sorted(store.match_encoded(pattern))
        flattened = []
        for batch in store.match_encoded_batches(pattern, size):
            assert 0 < len(batch) <= size
            flattened.extend(batch)
        assert sorted(flattened) == expected, pattern


@backends
@pytest.mark.parametrize("size", [1, 7, 1024])
def test_match_columns_transpose_match_exactly(backend, size):
    """``match_columns`` is ``match_batches`` transposed: same triples,
    same chunking bound, one equal-length sequence per column."""
    store = _populated_store(backend)
    for pattern in _all_shapes(store):
        expected = sorted(store.match_encoded(pattern))
        flattened = []
        for columns in store.match_encoded_columns(pattern, size):
            assert len(columns) == 3
            s_col, p_col, o_col = columns
            assert len(s_col) == len(p_col) == len(o_col)
            assert 0 < len(s_col) <= size
            flattened.extend(zip(s_col, p_col, o_col))
        assert sorted(flattened) == expected, pattern


@backends
@pytest.mark.parametrize("size", [1, 13])
def test_match_sorted_batches_preserve_order(backend, size):
    store = _populated_store(backend)
    for order in PERMUTATIONS:
        for pattern in [(None, None, None), (None, store.encode_term(URI("http://u/p0")), None)]:
            expected = list(store.match_sorted(pattern, order))
            flattened = [
                triple
                for batch in store.match_sorted_batches(pattern, order, size)
                for triple in batch
            ]
            assert flattened == expected, (order, pattern)


@backends
def test_match_many_matches_per_pattern_match(backend):
    store = _populated_store(backend)
    rng = random.Random(3)
    shapes = _all_shapes(store)
    patterns = [shapes[rng.randrange(len(shapes))] for _ in range(200)]
    results = store.match_many_encoded(patterns)
    assert len(results) == len(patterns)
    for pattern, result in zip(patterns, results):
        assert sorted(result) == sorted(store.match_encoded(pattern)), pattern


@backends
def test_match_many_empty_and_missing(backend):
    store = _populated_store(backend, triples=20)
    assert store.match_many_encoded([]) == []
    missing = (10**6, 10**6 + 1, None)
    results = store.match_many_encoded([missing, (None, None, None)])
    assert list(results[0]) == []
    assert sorted(results[1]) == sorted(store.match_encoded((None, None, None)))


def test_sqlite_match_many_chunks_past_probe_limit():
    """More distinct probes than fit one statement still answer exactly."""
    store = _populated_store("sqlite", triples=900, entities=800)
    codes = [
        store.encode_term(URI(f"http://u/e{i}"))
        for i in range(800)
    ]
    p = store.encode_term(URI("http://u/p2"))
    patterns = [(code, p, None) for code in codes if code is not None]
    # Two bound columns per probe: more distinct keys than one
    # statement's parameter budget allows, forcing the chunked path.
    assert len(patterns) > _PROBE_PARAM_BUDGET // 2
    results = store.match_many_encoded(patterns)
    for pattern, result in zip(patterns, results):
        assert sorted(result) == sorted(store.match_encoded(pattern)), pattern
