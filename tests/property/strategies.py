"""Hypothesis strategies over small RDF universes.

The universes are deliberately tiny (a handful of entities, classes and
properties) so random queries join, random schemas entail, and shrunk
counterexamples stay readable.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.query.cq import Atom, ConjunctiveQuery, Variable
from repro.rdf.schema import RDFSchema
from repro.rdf.store import TripleStore
from repro.rdf.terms import Literal, URI
from repro.rdf.triples import Triple
from repro.rdf.vocabulary import RDF_TYPE

NS = "http://u/"

ENTITIES = [URI(f"{NS}e{i}") for i in range(5)]
CLASSES = [URI(f"{NS}c{i}") for i in range(4)]
PROPERTIES = [URI(f"{NS}p{i}") for i in range(3)]
LITERALS = [Literal("alpha"), Literal("beta")]
VARIABLES = [Variable(f"V{i}") for i in range(5)]

entity = st.sampled_from(ENTITIES)
klass = st.sampled_from(CLASSES)
prop = st.sampled_from(PROPERTIES)
literal = st.sampled_from(LITERALS)
variable = st.sampled_from(VARIABLES)


@st.composite
def data_triples(draw, min_size=1, max_size=25):
    """A list of well-formed data triples over the small universe.

    Property assertions may have literal objects — entailment rule 4
    must skip them while reformulation rule 4 must not over-answer on
    them, which only shows up when literals are present.
    """
    size = draw(st.integers(min_size, max_size))
    triples = []
    for _ in range(size):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            triples.append(Triple(draw(entity), RDF_TYPE, draw(klass)))
        elif choice == 1:
            triples.append(Triple(draw(entity), draw(prop), draw(literal)))
        else:
            triples.append(Triple(draw(entity), draw(prop), draw(entity)))
    return triples


@st.composite
def stores(draw, backend="memory", **kwargs):
    """A store populated with random data triples.

    ``backend`` selects the storage backend; the engine-parity tests
    run their matrix over every backend in ``repro.storage.BACKENDS``.
    """
    store = TripleStore(backend=backend)
    store.add_all(draw(data_triples(**kwargs)))
    return store


@st.composite
def schemas(draw, max_statements=6):
    """A random RDFS over the small universe (all four statement kinds)."""
    schema = RDFSchema()
    size = draw(st.integers(0, max_statements))
    for _ in range(size):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            schema.add_subclass(draw(klass), draw(klass))
        elif kind == 1:
            schema.add_subproperty(draw(prop), draw(prop))
        elif kind == 2:
            schema.add_domain(draw(prop), draw(klass))
        else:
            schema.add_range(draw(prop), draw(klass))
    return schema


@st.composite
def atoms(draw, allow_property_variable=True, allow_type=True):
    """One triple atom mixing variables and universe constants."""
    subject = draw(st.one_of(variable, entity))
    choices = [prop]
    if allow_property_variable:
        choices.append(variable)
    predicate = draw(st.one_of(*choices))
    if allow_type and draw(st.booleans()):
        predicate = RDF_TYPE
        obj = draw(st.one_of(variable, klass))
    else:
        obj = draw(st.one_of(variable, entity))
    return Atom(subject, predicate, obj)


@st.composite
def queries(draw, max_atoms=3, allow_property_variable=True):
    """A safe conjunctive query over the universe (possibly disconnected —
    callers that need connectivity should filter)."""
    size = draw(st.integers(1, max_atoms))
    body = tuple(
        draw(atoms(allow_property_variable=allow_property_variable))
        for _ in range(size)
    )
    query = ConjunctiveQuery((), body, name="q")
    body_vars = sorted(query.variables(), key=lambda v: v.name)
    if body_vars:
        head_size = draw(st.integers(1, len(body_vars)))
        head = tuple(body_vars[:head_size])
    else:
        head = ()
    return ConjunctiveQuery(head, body, name="q")


@st.composite
def connected_queries(draw, max_atoms=3, **kwargs):
    """Queries whose join graph is connected (the paper's assumption)."""
    query = draw(
        queries(max_atoms=max_atoms, **kwargs).filter(
            lambda q: q.is_connected()
        )
    )
    return query
