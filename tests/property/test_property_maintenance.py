"""Property-based check: incremental view maintenance always agrees with
re-materialization from scratch, with and without entailment."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.query.evaluation import evaluate, evaluate_union
from repro.reformulation.reformulate import reformulate
from repro.rdf.store import TripleStore
from repro.selection.maintenance import MaterializedViewSet
from repro.selection.state import initial_state

from tests.property import strategies as us

COMMON = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON
@given(
    initial=us.data_triples(max_size=12),
    updates=us.data_triples(min_size=1, max_size=8),
    removal_flags=st.lists(st.booleans(), min_size=8, max_size=8),
    query=us.connected_queries(max_atoms=2, allow_property_variable=False),
)
def test_maintenance_equals_rematerialization(
    initial, updates, removal_flags, query
):
    store = TripleStore()
    store.add_all(initial)
    state = initial_state([query.with_name("q")])
    maintained = MaterializedViewSet(state, store)
    for triple, remove in zip(updates, removal_flags):
        if remove:
            maintained.remove(triple)
        else:
            maintained.insert(triple)
    view = state.views[0]
    assert maintained.extent(view.name) == evaluate(view, store)
    assert maintained.answer("q") == evaluate(query, store)


@COMMON
@given(
    initial=us.data_triples(max_size=10),
    updates=us.data_triples(min_size=1, max_size=6),
    removal_flags=st.lists(st.booleans(), min_size=6, max_size=6),
    schema=us.schemas(max_statements=4),
    query=us.connected_queries(max_atoms=2, allow_property_variable=False),
)
def test_entailment_aware_maintenance(
    initial, updates, removal_flags, schema, query
):
    store = TripleStore()
    store.add_all(initial)
    state = initial_state([query.with_name("q")])
    maintained = MaterializedViewSet(state, store, schema=schema)
    for triple, remove in zip(updates, removal_flags):
        if remove:
            maintained.remove(triple)
        else:
            maintained.insert(triple)
    view = state.views[0]
    expected = evaluate_union(reformulate(view, schema), store)
    assert maintained.extent(view.name) == expected
